//! # orcodcs-repro
//!
//! Umbrella crate for the OrcoDCS reproduction. Re-exports the public API of
//! every workspace crate so examples and downstream users can depend on a
//! single crate:
//!
//! * [`tensor`] — dense linear algebra ([`orco_tensor`]).
//! * [`nn`] — the neural-network library ([`orco_nn`]).
//! * [`wsn`] — the wireless-sensor-network simulator ([`orco_wsn`]).
//! * [`sim`] — the discrete-event deployment backend ([`orco_sim`]).
//! * [`datasets`] — synthetic MNIST-like / GTSRB-like data ([`orco_datasets`]).
//! * [`core`] — OrcoDCS itself ([`orcodcs`]).
//! * [`baselines`] — DCSNet and traditional CS ([`orco_baselines`]).
//! * [`classifier`] — the follow-up CNN application ([`orco_classifier`]).
//! * [`serve`] — the sharded edge-ingestion gateway ([`orco_serve`]).
//! * [`fleet`] — the cluster directory service and gateway fleet ([`orco_fleet`]).
//! * [`rollout`] — drift-aware live model rollout ([`orco_rollout`]).

#![forbid(unsafe_code)]

pub use orco_baselines as baselines;
pub use orco_classifier as classifier;
pub use orco_datasets as datasets;
pub use orco_fleet as fleet;
pub use orco_nn as nn;
pub use orco_rollout as rollout;
pub use orco_serve as serve;
pub use orco_sim as sim;
pub use orco_tensor as tensor;
pub use orco_wsn as wsn;
pub use orcodcs as core;
