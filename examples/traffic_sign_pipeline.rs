//! Traffic-sign pipeline: compressed sensing feeding a downstream
//! classifier (paper §IV-E / Figure 5).
//!
//! A roadside camera cluster streams 32×32 colour sign images through
//! OrcoDCS; the edge reconstructs them and trains the follow-up CNN
//! classifier on the reconstructions. The same pipeline — literally the
//! same `ExperimentBuilder` chain with a different codec — is run with the
//! DCSNet baseline (offline, 50% data) for comparison: the paper's claim
//! is that OrcoDCS reconstructions make *better training data*.
//!
//! Run with: `cargo run --release --example traffic_sign_pipeline`

use orcodcs_repro::baselines::Dcsnet;
use orcodcs_repro::classifier::{Cnn, TrainConfig};
use orcodcs_repro::core::{
    AsymmetricAutoencoder, Codec, Experiment, ExperimentBuilder, OrcoConfig, TrainingMode,
};
use orcodcs_repro::datasets::gtsrb_like;
use orcodcs_repro::datasets::Dataset;
use orcodcs_repro::nn::Loss;
use orcodcs_repro::tensor::OrcoRng;

/// One builder chain serves every backend of the comparison.
fn train_codec(train: &Dataset, codec: impl Codec + 'static, data_fraction: f32) -> Experiment {
    let mut experiment = ExperimentBuilder::new()
        .dataset(train)
        .codec(codec)
        .training(TrainingMode::Local)
        .epochs(6)
        .batch_size(32)
        .data_fraction(data_fraction)
        .build()
        .expect("consistent experiment");
    let _report = experiment.run().expect("training runs");
    experiment
}

fn train_classifier(label: &str, train: &Dataset, test: &Dataset) -> f32 {
    let mut rng = OrcoRng::from_label("sign-clf", 0);
    let mut cnn = Cnn::new(train.kind(), &mut rng);
    let curve = cnn.train_epochs(
        train,
        test,
        &TrainConfig { epochs: 8, batch_size: 32, learning_rate: 2e-3 },
        &mut rng,
    );
    let last = curve.last().expect("at least one epoch");
    println!(
        "  {label:<22} test accuracy {:.3}  test loss {:.4}",
        last.test_accuracy, last.test_loss
    );
    last.test_accuracy
}

fn main() {
    let train = gtsrb_like::generate(258, 1);
    let test = gtsrb_like::generate(86, 2);
    println!(
        "traffic-sign corpus: {} train / {} test images, {} classes",
        train.len(),
        test.len(),
        train.kind().classes()
    );

    // --- OrcoDCS: online training on the full stream, M = 512. ---
    let cfg = OrcoConfig::for_dataset(train.kind());
    let mut orco =
        train_codec(&train, AsymmetricAutoencoder::new(&cfg).expect("valid config"), 1.0);
    let orco_l2 = {
        let recon = orco.codec_mut().reconstruct(test.x()).expect("codec reconstructs");
        Loss::L2.value(&recon, test.x())
    };

    // --- DCSNet: offline, 50% of the data, fixed structure. ---
    let mut dcs = train_codec(&train, Dcsnet::new(train.kind(), 0), 0.5);
    let dcs_l2 = {
        let recon = dcs.codec_mut().reconstruct(test.x()).expect("codec reconstructs");
        Loss::L2.value(&recon, test.x())
    };

    println!("\nreconstruction quality on held-out signs (L2, lower is better):");
    println!("  OrcoDCS (M=512)        {orco_l2:.5}");
    println!("  DCSNet-50% (M=1024)    {dcs_l2:.5}");

    // --- Follow-up application: classifier on reconstructed data. ---
    println!("\nfollow-up classifier on reconstructed data:");
    let orco_train =
        train.with_x(orco.codec_mut().reconstruct(train.x()).expect("codec reconstructs"));
    let orco_test =
        test.with_x(orco.codec_mut().reconstruct(test.x()).expect("codec reconstructs"));
    let acc_orco = train_classifier("OrcoDCS recon", &orco_train, &orco_test);

    let dcs_train =
        train.with_x(dcs.codec_mut().reconstruct(train.x()).expect("codec reconstructs"));
    let dcs_test = test.with_x(dcs.codec_mut().reconstruct(test.x()).expect("codec reconstructs"));
    let acc_dcs = train_classifier("DCSNet-50% recon", &dcs_train, &dcs_test);

    let acc_raw = train_classifier("raw images (oracle)", &train, &test);

    println!(
        "\nsummary: OrcoDCS {acc_orco:.3} vs DCSNet {acc_dcs:.3} (oracle on raw: {acc_raw:.3})"
    );
    println!(
        "note: 43-way classification from a few hundred reconstructed images is\n\
         data-starved (see EXPERIMENTS.md, Figure 5); the paper's corpus is 51k\n\
         images. The reconstruction-quality gap above is the scale-robust signal."
    );
}
