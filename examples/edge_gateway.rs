//! A TCP edge-ingestion gateway serving a trained OrcoDCS codec.
//!
//! The serving-layer quickstart: trains a small asymmetric autoencoder on
//! synthetic sensing data, then exposes its batched data plane
//! (`encode_batch`/`decode_batch`) as a network service — a sharded
//! gateway that micro-batches client pushes into single `encode_batch`
//! calls and serves decoded reconstructions and stats over the
//! length-prefixed wire protocol.
//!
//! Run it, then fire a load burst from the second terminal:
//!
//! ```sh
//! cargo run --release --example edge_gateway
//! cargo run --release -p orco-fleet --bin loadgen -- --clients 2 --frames 64 --shutdown
//! ```
//!
//! The gateway also samples decoded reconstructions through a drift
//! monitor (`drift_sample_every`), so a drifting load — `loadgen
//! --drift 32` Bias-shifts every frame from index 32 on — trips the
//! `drift` flag in the stats snapshot, the cue for an `orco-rollout`
//! cutover.
//!
//! The gateway serves until a client sends `Shutdown` (the loadgen
//! `--shutdown` flag). Bind address comes from `ORCO_SERVE_ADDR`
//! (default `127.0.0.1:7117`).

use std::sync::Arc;
use std::time::Duration;

use orcodcs_repro::core::{AsymmetricAutoencoder, Codec, OrcoConfig, TrainSpec};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::serve::{Clock, Gateway, GatewayConfig, TcpServer};

fn main() {
    let addr = std::env::var("ORCO_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7117".into());

    // Train the codec the gateway will serve. Each shard builds its own
    // codec from the same config and seed — training is deterministic,
    // so every shard serves bit-identical weights.
    let dataset = mnist_like::generate(64, 17);
    let config = OrcoConfig::for_dataset(dataset.kind()).with_latent_dim(64).with_seed(17);
    let spec = TrainSpec { epochs: 2, batch_size: 16, seed: 17, data_fraction: 1.0 };
    let trained_codec = move || {
        let mut codec = AsymmetricAutoencoder::new(&config).expect("valid config");
        let history = codec.train(dataset.x(), &spec).expect("training converges");
        (codec, history.final_loss().unwrap_or(f32::NAN))
    };

    let gateway = Arc::new(
        Gateway::new(
            GatewayConfig {
                shards: 2,
                batch_max_frames: 32,
                batch_deadline: Duration::from_millis(5),
                queue_capacity: 4096,
                auth_secret: None,
                trace_capacity: 4096,
                // Sample every other decoded row through a drift
                // monitor: a `loadgen --drift 32` run trips the stats
                // `drift` flag, signalling that a rollout is due. The
                // threshold sits between this codec's error on loadgen's
                // uniform frames (~0.28) and their Bias-shifted tail
                // (~0.69); the window must fill with shifted samples
                // inside one drifted run (64 frames/client, half
                // shifted, every 2nd sampled -> 16 shifted samples).
                drift_sample_every: 2,
                drift_threshold: 0.4,
                drift_window: 16,
                ..GatewayConfig::default()
            },
            Clock::real(),
            |shard| {
                let (codec, loss) = trained_codec();
                println!("shard {shard}: codec trained (final loss {loss:.5})");
                Box::new(codec) as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    );

    let dims = gateway.frame_dims();
    let server = TcpServer::spawn(Arc::clone(&gateway), addr.as_str()).expect("bind succeeds");
    println!(
        "edge gateway listening on {} ({} shards, frame {} -> code {} f32s)",
        server.local_addr(),
        gateway.config().shards,
        dims.input,
        dims.code
    );
    println!("serving until a client sends Shutdown (loadgen --shutdown) ...");
    server.join();

    let stats = gateway.stats();
    println!(
        "served {} frames in / {} out over {} micro-batches (max batch {}, \
         {} deadline flushes, {} busy rejections, batch latency p50 {:.4}s p99 {:.4}s)",
        stats.frames_in,
        stats.frames_out,
        stats.batches,
        stats.max_batch_rows,
        stats.deadline_flushes,
        stats.busy_rejections,
        stats.batch_latency_p50_s,
        stats.batch_latency_p99_s
    );
}
