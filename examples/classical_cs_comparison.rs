//! Classical compressed sensing vs learned decoding — the comparison the
//! paper's introduction uses to motivate deep CDA.
//!
//! Traditional CDA measures with a random Gaussian matrix and reconstructs
//! by convex optimization (ISTA) or greedy pursuit (OMP) in a DCT basis.
//! This example reconstructs the same digit images three ways and reports
//! quality and computational cost, demonstrating the paper's two claims:
//! classical reconstruction is (i) computationally intensive and (ii)
//! limited by the measurement dimension.
//!
//! Run with: `cargo run --release --example classical_cs_comparison`

use std::time::Instant;

use orcodcs_repro::baselines::cs::{
    ista_reconstruct, omp_reconstruct, Dct2, GaussianMeasurement, IstaConfig,
};
use orcodcs_repro::core::{AsymmetricAutoencoder, OrcoConfig};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::tensor::{stats, Matrix, OrcoRng};

fn main() {
    let dataset = mnist_like::generate(120, 3);
    let side = 28;
    let n = side * side;

    // --- Learned pipeline: train a small OrcoDCS autoencoder. ---
    let cfg = OrcoConfig::for_dataset(dataset.kind()).with_epochs(6).with_batch_size(32);
    let mut ae = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let loss = cfg.loss();
    let mut batch_rng = OrcoRng::from_label("classical-cs-batching", 0);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    for _ in 0..cfg.epochs {
        batch_rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch_size) {
            let xb = dataset.x().select_rows(chunk);
            let _ = ae.train_batch_local(&xb, &loss);
        }
    }

    // --- Classical pipeline: Gaussian Φ + DCT basis Ψ. ---
    let dct = Dct2::new(side);
    let psi = dct.synthesis_matrix();
    let mut rng = OrcoRng::from_label("classical-cs", 0);

    println!("reconstructing 8 held-out digits with m measurements (n = {n}):\n");
    println!(
        "{:>6} {:>18} {:>18} {:>18}",
        "m", "ISTA PSNR (dB)", "OMP PSNR (dB)", "learned PSNR (dB)"
    );

    for m in [64usize, 128, 256] {
        let phi = GaussianMeasurement::new(m, n, &mut rng);
        let a = phi.sensing_matrix(&psi);
        let mut ista_psnr = Vec::new();
        let mut omp_psnr = Vec::new();
        let mut learned_psnr = Vec::new();
        let mut ista_time = 0.0f64;
        let mut learned_time = 0.0f64;

        for i in 0..8 {
            let x = dataset.sample(i);
            let y = phi.measure(x);

            let t0 = Instant::now();
            let ista =
                ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.01, max_iters: 300, tol: 1e-6 });
            ista_time += t0.elapsed().as_secs_f64();
            let x_ista = dct.inverse(&ista.coefficients);
            ista_psnr.push(stats::psnr(x, &x_ista, 1.0));

            let omp = omp_reconstruct(&a, &y, (m / 4).max(8));
            let x_omp = dct.inverse(&omp.coefficients);
            omp_psnr.push(stats::psnr(x, &x_omp, 1.0));

            let xm = Matrix::from_vec(1, n, x.to_vec()).expect("length checked");
            let t0 = Instant::now();
            let x_learned = ae.reconstruct(&xm);
            learned_time += t0.elapsed().as_secs_f64();
            learned_psnr.push(stats::psnr(x, x_learned.row(0), 1.0));
        }

        println!(
            "{:>6} {:>18.2} {:>18.2} {:>18.2}",
            m,
            stats::mean(&ista_psnr),
            stats::mean(&omp_psnr),
            stats::mean(&learned_psnr),
        );
        if m == 128 {
            println!(
                "        (decode wall-time at m=128: ISTA {:.1} ms/image vs learned {:.3} ms/image)",
                ista_time / 8.0 * 1e3,
                learned_time / 8.0 * 1e3
            );
        }
    }

    println!(
        "\nThe classical decoders improve with m (dimension-limited) and cost\n\
         orders of magnitude more compute per image than one decoder forward\n\
         pass — exactly the two drawbacks the OrcoDCS paper cites for\n\
         traditional CDA."
    );
}
