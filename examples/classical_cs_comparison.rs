//! Classical compressed sensing vs learned decoding — the comparison the
//! paper's introduction uses to motivate deep CDA.
//!
//! Traditional CDA measures with a random Gaussian matrix and reconstructs
//! by convex optimization (ISTA) or greedy pursuit (OMP) in a DCT basis.
//! All three decoders run behind the same `Codec` interface here: the
//! learned backend trains through an `ExperimentBuilder`, the classical
//! stacks are training-free `ClassicalCodec`s at sweeping measurement
//! dimensions. The table demonstrates the paper's two claims: classical
//! reconstruction is (i) computationally intensive and (ii) limited by
//! the measurement dimension.
//!
//! Run with: `cargo run --release --example classical_cs_comparison`

use std::time::Instant;

use orcodcs_repro::baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orcodcs_repro::core::{
    AsymmetricAutoencoder, Codec, ExperimentBuilder, OrcoConfig, TrainingMode,
};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::tensor::{stats, Matrix};

fn main() {
    let dataset = mnist_like::generate(120, 3);

    // --- Learned pipeline: train a small OrcoDCS codec locally. ---
    let cfg = OrcoConfig::for_dataset(dataset.kind());
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(AsymmetricAutoencoder::new(&cfg).expect("valid config"))
        .training(TrainingMode::Local)
        .epochs(6)
        .batch_size(32)
        .build()
        .expect("consistent experiment");
    let _report = experiment.run().expect("training runs");
    let learned = experiment.codec_mut();

    println!(
        "reconstructing 8 held-out digits with m measurements per image (n = {}):\n",
        Codec::input_dim(learned)
    );
    println!(
        "{:>6} {:>18} {:>18} {:>18}",
        "m", "ISTA PSNR (dB)", "OMP PSNR (dB)", "learned PSNR (dB)"
    );

    // The whole probe round moves through each backend as ONE batched
    // encode + decode over borrowed memory; the codes/recon buffers are
    // reused across every backend and measurement dimension.
    let probe_idx: Vec<usize> = (0..8).collect();
    let probe = dataset.x().select_rows(&probe_idx);
    let mut codes = Matrix::zeros(0, 0);
    let mut recon = Matrix::zeros(0, 0);
    let mean_psnr = |codec: &mut dyn Codec, codes: &mut Matrix, recon: &mut Matrix| -> (f32, f64) {
        codec.encode_batch(probe.as_view(), codes).expect("probe frames fit the codec");
        #[allow(clippy::disallowed_methods)]
        // orco-lint: allow(wall-clock, reason = "example measures real decode latency of classical solvers; no DES involved")
        let t0 = Instant::now();
        codec.decode_batch(codes.as_view(), recon).expect("codes fit the codec");
        let decode_s = t0.elapsed().as_secs_f64();
        let psnrs = stats::psnr_rows(&probe, recon, 1.0);
        (stats::mean(&psnrs), decode_s)
    };

    for m in [64usize, 128, 256] {
        let mut ista = ClassicalCodec::new(
            dataset.kind(),
            m,
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 300, tol: 1e-6 }),
            0,
        );
        let mut omp =
            ClassicalCodec::new(dataset.kind(), m, CsSolver::Omp { sparsity: (m / 4).max(8) }, 0);

        let (ista_psnr, ista_time) = mean_psnr(&mut ista, &mut codes, &mut recon);
        let (omp_psnr, _) = mean_psnr(&mut omp, &mut codes, &mut recon);
        let (learned_psnr, learned_time) = mean_psnr(learned, &mut codes, &mut recon);

        println!("{m:>6} {ista_psnr:>18.2} {omp_psnr:>18.2} {learned_psnr:>18.2}");
        if m == 128 {
            println!(
                "        (decode wall-time at m=128: ISTA {:.1} ms/image vs learned {:.3} ms/image)",
                ista_time / 8.0 * 1e3,
                learned_time / 8.0 * 1e3
            );
        }
    }

    println!(
        "\nThe classical decoders improve with m (dimension-limited) and cost\n\
         orders of magnitude more compute per image than one decoder forward\n\
         pass — exactly the two drawbacks the OrcoDCS paper cites for\n\
         traditional CDA."
    );
}
