//! Classical compressed sensing vs learned decoding — the comparison the
//! paper's introduction uses to motivate deep CDA.
//!
//! Traditional CDA measures with a random Gaussian matrix and reconstructs
//! by convex optimization (ISTA) or greedy pursuit (OMP) in a DCT basis.
//! All three decoders run behind the same `Codec` interface here: the
//! learned backend trains through an `ExperimentBuilder`, the classical
//! stacks are training-free `ClassicalCodec`s at sweeping measurement
//! dimensions. The table demonstrates the paper's two claims: classical
//! reconstruction is (i) computationally intensive and (ii) limited by
//! the measurement dimension.
//!
//! Run with: `cargo run --release --example classical_cs_comparison`

use std::time::Instant;

use orcodcs_repro::baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orcodcs_repro::core::{
    AsymmetricAutoencoder, Codec, ExperimentBuilder, OrcoConfig, TrainingMode,
};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::tensor::stats;

fn main() {
    let dataset = mnist_like::generate(120, 3);

    // --- Learned pipeline: train a small OrcoDCS codec locally. ---
    let cfg = OrcoConfig::for_dataset(dataset.kind());
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(AsymmetricAutoencoder::new(&cfg).expect("valid config"))
        .training(TrainingMode::Local)
        .epochs(6)
        .batch_size(32)
        .build()
        .expect("consistent experiment");
    let _report = experiment.run().expect("training runs");
    let learned = experiment.codec_mut();

    println!(
        "reconstructing 8 held-out digits with m measurements per image (n = {}):\n",
        Codec::input_dim(learned)
    );
    println!(
        "{:>6} {:>18} {:>18} {:>18}",
        "m", "ISTA PSNR (dB)", "OMP PSNR (dB)", "learned PSNR (dB)"
    );

    for m in [64usize, 128, 256] {
        let mut ista = ClassicalCodec::new(
            dataset.kind(),
            m,
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 300, tol: 1e-6 }),
            0,
        );
        let mut omp =
            ClassicalCodec::new(dataset.kind(), m, CsSolver::Omp { sparsity: (m / 4).max(8) }, 0);

        let mut ista_psnr = Vec::new();
        let mut omp_psnr = Vec::new();
        let mut learned_psnr = Vec::new();
        let mut ista_time = 0.0f64;
        let mut learned_time = 0.0f64;

        for i in 0..8 {
            let x = dataset.sample(i);

            // Every backend goes through the same encode/decode interface.
            let code = ista.encode_frame(x);
            let t0 = Instant::now();
            let x_ista = ista.decode_frame(&code);
            ista_time += t0.elapsed().as_secs_f64();
            ista_psnr.push(stats::psnr(x, &x_ista, 1.0));

            let code = omp.encode_frame(x);
            let x_omp = omp.decode_frame(&code);
            omp_psnr.push(stats::psnr(x, &x_omp, 1.0));

            let code = learned.encode_frame(x);
            let t0 = Instant::now();
            let x_learned = learned.decode_frame(&code);
            learned_time += t0.elapsed().as_secs_f64();
            learned_psnr.push(stats::psnr(x, &x_learned, 1.0));
        }

        println!(
            "{:>6} {:>18.2} {:>18.2} {:>18.2}",
            m,
            stats::mean(&ista_psnr),
            stats::mean(&omp_psnr),
            stats::mean(&learned_psnr),
        );
        if m == 128 {
            println!(
                "        (decode wall-time at m=128: ISTA {:.1} ms/image vs learned {:.3} ms/image)",
                ista_time / 8.0 * 1e3,
                learned_time / 8.0 * 1e3
            );
        }
    }

    println!(
        "\nThe classical decoders improve with m (dimension-limited) and cost\n\
         orders of magnitude more compute per image than one decoder forward\n\
         pass — exactly the two drawbacks the OrcoDCS paper cites for\n\
         traditional CDA."
    );
}
