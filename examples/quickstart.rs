//! Quickstart: the complete OrcoDCS lifecycle in ~30 lines.
//!
//! Generates a synthetic MNIST-like sensing workload, runs the full
//! pipeline — intra-cluster raw aggregation, IoT-Edge orchestrated online
//! training, encoder distribution, compressed data aggregation — and prints
//! what the paper cares about: reconstruction quality, simulated training
//! time, and steady-state transmission cost.
//!
//! Run with: `cargo run --release --example quickstart`

use orcodcs_repro::core::{experiment, OrcoConfig};
use orcodcs_repro::datasets::mnist_like;

fn main() {
    // A stream of 200 frames from a simulated 784-device cluster.
    let dataset = mnist_like::generate(200, 42);
    println!("dataset: {} samples of {} readings", dataset.len(), dataset.x().cols());

    // The paper's MNIST configuration: M = 128 latent, 1-layer decoder,
    // Gaussian latent noise, Huber loss.
    let config =
        OrcoConfig::for_dataset(dataset.kind()).with_epochs(5).with_batch_size(32).with_seed(42);
    println!(
        "OrcoDCS: N={} -> M={} ({}x compression), {} decoder layer(s)",
        config.input_dim,
        config.latent_dim,
        config.compression_ratio(),
        config.decoder_layers
    );

    let outcome = experiment::run_orcodcs(&dataset, &config).expect("simulation runs");

    println!("\n--- results ---");
    println!("final reconstruction loss : {:.6}", outcome.final_loss);
    println!("mean reconstruction PSNR  : {:.2} dB", outcome.mean_psnr_db);
    println!("simulated time to train   : {:.1} s", outcome.sim_time_s);
    println!(
        "steady-state data plane   : {:.1} KB per {} frames ({:.0} bytes/frame)",
        outcome.data_plane.total_kb(),
        outcome.data_plane.frames,
        outcome.data_plane.total_bytes as f64 / outcome.data_plane.frames as f64
    );
    println!(
        "training-loss trajectory  : {:.4} -> {:.4} over {} rounds",
        outcome.history.rounds.first().map_or(f32::NAN, |r| r.loss),
        outcome.history.final_loss().unwrap_or(f32::NAN),
        outcome.history.rounds.len()
    );
}
