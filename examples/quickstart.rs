//! Quickstart: the complete OrcoDCS lifecycle in ~30 lines.
//!
//! Generates a synthetic MNIST-like sensing workload and runs the full
//! pipeline through the one experiment API — intra-cluster raw
//! aggregation, IoT-Edge orchestrated online training, encoder
//! distribution, compressed data aggregation — then prints what the paper
//! cares about: reconstruction quality, simulated training time, and
//! steady-state transmission cost. Swap the codec for a baseline
//! (`Dcsnet`, `ClassicalCodec`) and everything else stays the same.
//!
//! Run with: `cargo run --release --example quickstart`

use orcodcs_repro::core::{AsymmetricAutoencoder, ExperimentBuilder, OrcoConfig};
use orcodcs_repro::datasets::mnist_like;

fn main() {
    // A stream of 200 frames from a simulated 784-device cluster.
    let dataset = mnist_like::generate(200, 42);
    println!("dataset: {} samples of {} readings", dataset.len(), dataset.x().cols());

    // The paper's MNIST configuration: M = 128 latent, 1-layer decoder,
    // Gaussian latent noise, Huber loss.
    let config = OrcoConfig::for_dataset(dataset.kind()).with_seed(42);
    println!(
        "OrcoDCS: N={} -> M={} ({}x compression), {} decoder layer(s)",
        config.input_dim,
        config.latent_dim,
        config.compression_ratio(),
        config.decoder_layers
    );

    let codec = AsymmetricAutoencoder::new(&config).expect("valid config");
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .epochs(5)
        .batch_size(32)
        .seed(42)
        .build()
        .expect("consistent experiment");
    let report = experiment.run().expect("simulation runs");

    let data_plane = report.data_plane.expect("data plane measured");
    println!("\n--- results ({}) ---", report.codec);
    println!("final reconstruction loss : {:.6}", report.final_loss);
    println!("mean reconstruction PSNR  : {:.2} dB", report.mean_psnr_db);
    println!("simulated time to train   : {:.1} s", report.sim_time_s);
    println!(
        "training radio             : {} KB on air, {:.3} J",
        report.training_radio.total_tx_bytes / 1024,
        report.training_radio.energy_j
    );
    println!(
        "steady-state data plane   : {:.1} KB per {} frames ({:.0} bytes/frame)",
        data_plane.total_kb(),
        data_plane.frames,
        data_plane.total_bytes as f64 / data_plane.frames as f64
    );
    println!(
        "training-loss trajectory  : {:.4} -> {:.4} over {} rounds",
        report.rounds.first().map_or(f32::NAN, |r| r.loss),
        report.final_round_loss().unwrap_or(f32::NAN),
        report.rounds.len()
    );
}
