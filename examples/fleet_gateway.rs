//! A three-gateway fleet behind a directory, in one process.
//!
//! The fleet quickstart: spawns the cluster directory, three TCP
//! gateways serving the same trained codec, and one heartbeating
//! [`GatewayAgent`](orcodcs_repro::fleet::GatewayAgent) per gateway.
//! Clusters are rendezvous-assigned across the fleet; a push sent to the
//! wrong gateway draws a `Redirect` naming the owner, never a silent
//! misroute. Drive it from a second terminal:
//!
//! ```sh
//! cargo run --release --example fleet_gateway
//! cargo run --release -p orco-fleet --bin loadgen -- \
//!     --fleet 127.0.0.1:7300 --clients 3 --frames 64 --shutdown
//! ```
//!
//! The fleet serves until a client shuts every member down (the loadgen
//! `--shutdown` flag stops each gateway, then the directory). The
//! directory bind address comes from `ORCO_FLEET_ADDR` (default
//! `127.0.0.1:7300`); gateways bind ephemeral ports and advertise them
//! through the directory, so clients only ever need the one address.

use std::sync::Arc;
use std::time::Duration;

use orcodcs_repro::core::{AsymmetricAutoencoder, Codec, OrcoConfig, TrainSpec};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::fleet::{AgentConfig, Directory, DirectoryConfig, GatewayAgent};
use orcodcs_repro::serve::{Clock, Gateway, GatewayConfig, Service, TcpServer};

fn main() {
    let dir_addr = std::env::var("ORCO_FLEET_ADDR").unwrap_or_else(|_| "127.0.0.1:7300".into());

    // The directory: the fleet's single well-known address.
    let directory = Arc::new(
        Directory::new(DirectoryConfig::default(), Clock::real()).expect("valid directory"),
    );
    let dir_server =
        TcpServer::spawn_service(Arc::clone(&directory) as Arc<dyn Service>, dir_addr.as_str())
            .expect("directory binds");
    println!("directory listening on {}", dir_server.local_addr());

    // One trained codec config shared by every gateway: training is
    // deterministic, so all members serve bit-identical weights and a
    // redirected client loses nothing by switching owners.
    let dataset = mnist_like::generate(64, 17);
    let config = OrcoConfig::for_dataset(dataset.kind()).with_latent_dim(64).with_seed(17);
    let spec = TrainSpec { epochs: 2, batch_size: 16, seed: 17, data_fraction: 1.0 };

    let mut servers = Vec::new();
    let mut agents = Vec::new();
    let mut gateways = Vec::new();
    for id in 1..=3u64 {
        let dataset = dataset.clone();
        let config = config.clone();
        let gateway = Arc::new(
            Gateway::new(GatewayConfig::default(), Clock::real(), move |shard| {
                let mut codec = AsymmetricAutoencoder::new(&config).expect("valid config");
                codec.train(dataset.x(), &spec).expect("training converges");
                println!("gateway {id} shard {shard}: codec trained");
                Box::new(codec) as Box<dyn Codec>
            })
            .expect("valid gateway"),
        );
        let server = TcpServer::spawn(Arc::clone(&gateway), "127.0.0.1:0").expect("binds");
        let advertise = server.local_addr().to_string();
        let agent = GatewayAgent::spawn(
            Arc::clone(&gateway),
            AgentConfig {
                gateway_id: id,
                advertise_addr: advertise.clone(),
                directory_addr: dir_addr.clone(),
                auth_secret: None,
                heartbeat_interval: Duration::from_millis(100),
            },
        )
        .expect("agent registers");
        println!("gateway {id} serving on {advertise}");
        servers.push(server);
        agents.push(agent);
        gateways.push(gateway);
    }

    println!(
        "fleet of 3 up; serving until a client shuts it down (loadgen --fleet --shutdown) ..."
    );
    for server in servers {
        server.join();
    }
    for agent in agents {
        agent.join();
    }
    dir_server.join();

    for (i, gateway) in gateways.iter().enumerate() {
        let stats = gateway.stats();
        println!(
            "gateway {}: {} frames in / {} out over {} micro-batches, {} redirects issued",
            i + 1,
            stats.frames_in,
            stats.frames_out,
            stats.batches,
            stats.redirects,
        );
    }
}
