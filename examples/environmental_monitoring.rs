//! Environmental monitoring with online adaptation (paper §III-D).
//!
//! The scenario the paper's introduction motivates: a long-lived sensor
//! deployment whose environment *changes*. An offline-trained model cannot
//! adapt; OrcoDCS's fine-tuning monitor watches the reconstruction error on
//! the edge and relaunches the orchestrated training procedure when a
//! drift pushes it over threshold.
//!
//! This example deploys a cluster, trains online, then hits the deployment
//! with three escalating environmental drifts (dimming — e.g. fog or dusk —
//! then a sensor bias, then a noise burst) and shows the monitor catching
//! each and recovering reconstruction quality.
//!
//! Run with: `cargo run --release --example environmental_monitoring`

use orcodcs_repro::core::{OnlineTrainer, Orchestrator, OrcoConfig};
use orcodcs_repro::datasets::{drift, mnist_like};
use orcodcs_repro::tensor::OrcoRng;
use orcodcs_repro::wsn::NetworkConfig;

fn main() {
    let baseline = mnist_like::generate(160, 7);
    let config = OrcoConfig::for_dataset(baseline.kind())
        .with_epochs(4)
        .with_batch_size(32)
        .with_finetune_threshold(0.03) // above the trained baseline error (~0.01 on the Huber scale)
        .with_seed(7);
    let net = NetworkConfig { num_devices: 64, seed: 7, ..Default::default() };

    let orchestrator = Orchestrator::new(config, net).expect("valid config");
    let mut online = OnlineTrainer::new(orchestrator);

    println!("== initial online training ==");
    let history = online.initial_training(baseline.x()).expect("simulation runs");
    println!(
        "trained {} rounds; loss {:.4} -> {:.4}; simulated time {:.1}s",
        history.rounds.len(),
        history.rounds.first().map_or(f32::NAN, |r| r.loss),
        history.final_loss().unwrap_or(f32::NAN),
        online.orchestrator().network().now_s()
    );

    let mut rng = OrcoRng::from_label("monitoring-drift", 0);
    let scenarios = [
        ("clear morning (no drift)", None),
        ("fog rolls in (dimming 60%)", Some((drift::Drift::Dimming, 0.6))),
        ("sensor bias after maintenance", Some((drift::Drift::Bias, 0.7))),
        ("electrical noise burst", Some((drift::Drift::NoiseBurst, 0.8))),
    ];

    for (label, d) in scenarios {
        println!("\n== {label} ==");
        let frames = match d {
            None => baseline.clone(),
            Some((kind, severity)) => drift::apply(&baseline, kind, severity, &mut rng),
        };
        // Stream several batches of the new conditions through the monitor.
        let mut retrained = false;
        for step in 0..6 {
            let outcome = online.process_batch(frames.x()).expect("simulation runs");
            print!("  step {step}: reconstruction error {:.4}", outcome.reconstruction_loss);
            if let Some(h) = outcome.retraining {
                retrained = true;
                println!(
                    "  -> monitor TRIGGERED, retrained {} rounds, error now {:.4}",
                    h.rounds.len(),
                    h.final_loss().unwrap_or(f32::NAN)
                );
                break;
            }
            println!();
        }
        if !retrained {
            println!("  monitor quiet (reconstructions still healthy)");
        }
    }

    println!(
        "\ntotal retrains: {}; total simulated time {:.1}s; total bytes on air {} KB",
        online.retrain_count(),
        online.orchestrator().network().now_s(),
        online.orchestrator().network().accounting().total_tx_bytes() / 1024
    );
}
