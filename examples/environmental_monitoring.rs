//! Environmental monitoring with online adaptation (paper §III-D).
//!
//! The scenario the paper's introduction motivates: a long-lived sensor
//! deployment whose environment *changes*. An offline-trained model cannot
//! adapt; OrcoDCS's fine-tuning monitor watches the reconstruction error on
//! the edge and relaunches the orchestrated training procedure when a
//! drift pushes it over threshold.
//!
//! This example builds the deployment with the pipeline's `.monitor(..)`
//! and `.checkpoints(..)` hooks, trains online, then hits the deployment
//! with three escalating environmental drifts (dimming — e.g. fog or dusk
//! — then a sensor bias, then a noise burst) and streams the new
//! conditions through `Experiment::observe`, showing the monitor catching
//! each drift, retraining, and checkpointing the adapted encoder.
//!
//! Run with: `cargo run --release --example environmental_monitoring`

use orcodcs_repro::core::{
    AsymmetricAutoencoder, ClusterScale, ExperimentBuilder, FineTuneMonitor, OrcoConfig,
};
use orcodcs_repro::datasets::{drift, mnist_like};
use orcodcs_repro::tensor::OrcoRng;

fn main() {
    let baseline = mnist_like::generate(160, 7);
    let config = OrcoConfig::for_dataset(baseline.kind()).with_seed(7);
    let checkpoint_dir = std::env::temp_dir().join("orcodcs-monitoring-example");

    let mut experiment = ExperimentBuilder::new()
        .dataset(&baseline)
        .codec(AsymmetricAutoencoder::new(&config).expect("valid config"))
        .scale(ClusterScale::Devices(64))
        .epochs(4)
        .batch_size(32)
        .seed(7)
        // Threshold sits above the trained baseline error (~0.01 on the
        // Huber scale); a 4-batch window smooths transient spikes.
        .monitor(FineTuneMonitor::new(0.03, 4))
        .checkpoints(&checkpoint_dir, 4)
        .build()
        .expect("consistent experiment");

    println!("== initial online training ==");
    let report = experiment.run().expect("simulation runs");
    println!(
        "trained {} rounds; loss {:.4} -> {:.4}; simulated time {:.1}s",
        report.rounds.len(),
        report.rounds.first().map_or(f32::NAN, |r| r.loss),
        report.final_round_loss().unwrap_or(f32::NAN),
        report.sim_time_s
    );

    let mut rng = OrcoRng::from_label("monitoring-drift", 0);
    let scenarios = [
        ("clear morning (no drift)", None),
        ("fog rolls in (dimming 60%)", Some((drift::Drift::Dimming, 0.6))),
        ("sensor bias after maintenance", Some((drift::Drift::Bias, 0.7))),
        ("electrical noise burst", Some((drift::Drift::NoiseBurst, 0.8))),
    ];

    for (label, d) in scenarios {
        println!("\n== {label} ==");
        let frames = match d {
            None => baseline.clone(),
            Some((kind, severity)) => drift::apply(&baseline, kind, severity, &mut rng),
        };
        // Stream several batches of the new conditions through the monitor.
        let mut retrained = false;
        for step in 0..6 {
            let outcome = experiment.observe(frames.x()).expect("simulation runs");
            print!("  step {step}: reconstruction error {:.4}", outcome.reconstruction_error);
            if let Some(h) = outcome.retraining {
                retrained = true;
                println!(
                    "  -> monitor TRIGGERED, retrained {} rounds, error now {:.4}",
                    h.rounds.len(),
                    h.final_loss().unwrap_or(f32::NAN)
                );
                break;
            }
            println!();
        }
        if !retrained {
            println!("  monitor quiet (reconstructions still healthy)");
        }
    }

    let network = experiment.network().expect("orchestrated deployment");
    println!(
        "\ntotal retrains: {}; encoder checkpoints kept: {}; total simulated time {:.1}s",
        experiment.retrain_count(),
        experiment.checkpoint_store().map_or(0, |s| s.len()),
        network.now_s(),
    );
    std::fs::remove_dir_all(&checkpoint_dir).ok();
}
