//! Fault-tolerant deployment: scenario scripting on the event-driven
//! backend, end to end.
//!
//! The same OrcoDCS pipeline as `quickstart`, but executed over the
//! `orco-sim` discrete-event simulator with a scripted fault timeline:
//!
//! * a TDMA-slotted intra-cluster radio (so the cluster actually contends
//!   for the medium instead of the analytic model's free sequential
//!   channel);
//! * two devices die mid-run and one recovers with a fresh battery;
//! * the sensor link degrades to 20% frame loss for a window (ARQ pays
//!   retransmissions);
//! * one device turns straggler (4× compute time) for a stretch;
//! * a background traffic burst contends with the protocol.
//!
//! The run must *survive* all of it — and the report shows what it cost:
//! delivered/dropped/retransmitted packets, radio airtime, and the
//! delivery-latency distribution (p50/p99), none of which the analytic
//! backend can express.
//!
//! Run with: `cargo run --release --example fault_tolerant_deployment`

use orcodcs_repro::core::aggregation::measure_encoded_frames;
use orcodcs_repro::core::{
    AsymmetricAutoencoder, ClusterScale, DeploymentSpec, ExperimentBuilder, OrcoConfig,
};
use orcodcs_repro::datasets::mnist_like;
use orcodcs_repro::sim::{DesNetwork, MacMode, Scenario, SimParams, SimSpec};
use orcodcs_repro::tensor::Matrix;
use orcodcs_repro::wsn::NetworkConfig;

fn main() {
    let dataset = mnist_like::generate(64, 7);
    let config = OrcoConfig::for_dataset(dataset.kind()).with_latent_dim(64).with_seed(7);
    let codec = AsymmetricAutoencoder::new(&config).expect("valid config");

    // The fault timeline, in simulated seconds from deployment start.
    let scenario = Scenario::new()
        .kill_at(2.0, 3) // device 3 dies early…
        .revive_at(30.0, 3, 2.0) // …and comes back with a fresh battery
        .kill_at(10.0, 7) // device 7 is gone for good
        .degrade_sensor_link(5.0..25.0, 0.2) // 20% frame loss window
        .straggler(0.0..40.0, 5, 4.0) // device 5 computes 4x slower
        .burst_at(8.0, 1, 256, 16); // background burst mid-window
    let spec = SimSpec {
        params: SimParams { mac: MacMode::Tdma { slot_s: 0.01 }, ..SimParams::ideal() },
        scenario,
    };

    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .deployment(DeploymentSpec::EventDriven(spec))
        .scale(ClusterScale::Devices(16))
        .epochs(3)
        .batch_size(16)
        .seed(7)
        .build()
        .expect("consistent experiment");
    let report = experiment.run().expect("the deployment degrades gracefully, never dies");

    println!("--- fault-tolerant run ({} backend) ---", report.backend);
    println!("codec                     : {}", report.codec);
    println!("final reconstruction loss : {:.6}", report.final_loss);
    println!("mean reconstruction PSNR  : {:.2} dB", report.mean_psnr_db);
    println!("simulated time            : {:.1} s", report.sim_time_s);

    let link = &report.training_radio.link;
    println!("\n--- what the faults cost ---");
    println!("packets delivered         : {}", link.delivered_packets);
    println!("packets dropped           : {}", link.dropped_packets);
    println!("frames retransmitted      : {}", link.retransmitted_frames);
    println!("radio airtime             : {:.2} s", link.airtime_s);
    println!(
        "delivery latency          : p50 {:.1} ms, p99 {:.1} ms",
        link.latency_p50_s * 1e3,
        link.latency_p99_s * 1e3
    );
    println!(
        "training radio            : {} KB on air, {:.3} J",
        report.training_radio.total_tx_bytes / 1024,
        report.training_radio.energy_j
    );

    let survivors = experiment.network().expect("orchestrated").alive_devices().len();
    println!("\nalive devices at the end  : {survivors}/16 (one scripted death was permanent)");

    assert!(link.retransmitted_frames > 0, "the lossy window must have cost retries");
    assert!(report.final_loss.is_finite());

    // Steady state after the faults: stream a round of fresh frames
    // through the trained codec as ONE batched encode, and pay the DES
    // data plane (still 10% lossy) per encoded frame.
    let fresh = mnist_like::generate(8, 8);
    let mut steady_cfg = NetworkConfig { num_devices: 16, seed: 7, ..Default::default() };
    steady_cfg.sensor_link = steady_cfg.sensor_link.with_loss(0.1);
    let mut des = DesNetwork::new(
        steady_cfg,
        SimSpec {
            params: SimParams { mac: MacMode::Tdma { slot_s: 0.01 }, ..SimParams::ideal() },
            ..Default::default()
        },
    );
    let mut codes = Matrix::zeros(0, 0);
    let plane = measure_encoded_frames(
        &mut des,
        experiment.codec_mut(),
        fresh.x().as_view(),
        &mut codes,
        8,
    )
    .expect("steady-state data plane runs");
    println!("\n--- steady-state batched data plane (8 fresh frames, 10% loss) ---");
    println!(
        "encoded round             : {}x{} codes in one encode_batch",
        codes.rows(),
        codes.cols()
    );
    println!("bytes on air              : {} ({} uplink)", plane.total_bytes, plane.uplink_bytes);
    println!(
        "radio energy              : {:.4} J over {:.2} simulated s",
        plane.energy_j, plane.sim_time_s
    );

    println!("\nSurvived the whole timeline. ✔");
}
