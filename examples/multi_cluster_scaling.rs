//! Multi-cluster scaling — the paper's future-work scenario, implemented.
//!
//! "Our approach has the potential to scale up to wireless sensor networks
//! consisting of millions of IoT devices and task-specific autoencoders by
//! exploring IoT-Edge-Cloud orchestration for scalability." This example
//! runs a fleet of clusters — with *task-specific latent dimensions* —
//! against a single shared edge server and compares the edge-scheduling
//! policies on makespan, mean wait, and worst-cluster loss.
//!
//! Run with: `cargo run --release --example multi_cluster_scaling`

use orcodcs_repro::core::multi_cluster::{EdgeSchedule, MultiClusterCoordinator};
use orcodcs_repro::core::{AsymmetricAutoencoder, ClusterScale, ExperimentBuilder, OrcoConfig};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::wsn::NetworkConfig;

fn main() {
    // Six clusters with heterogeneous tasks: some need fine reconstructions
    // (large M), others are coarse telemetry (small M).
    let latent_dims = [32usize, 32, 64, 64, 128, 128];
    let configs: Vec<OrcoConfig> = latent_dims
        .iter()
        .map(|&m| {
            OrcoConfig::for_dataset(DatasetKind::MnistLike)
                .with_latent_dim(m)
                .with_epochs(1)
                .with_batch_size(16)
        })
        .collect();
    let datasets: Vec<_> = (0..configs.len()).map(|i| mnist_like::generate(32, i as u64)).collect();
    let net = NetworkConfig { num_devices: 16, seed: 0, ..Default::default() };
    let sweeps = 12;

    // Reference point: one cluster alone on an uncontended edge, through
    // the standard experiment pipeline. The fleet numbers below show what
    // edge contention adds on top of this.
    let mut reference = ExperimentBuilder::new()
        .dataset(&datasets[0])
        .codec(AsymmetricAutoencoder::new(&configs[0]).expect("valid config"))
        .network(net.clone())
        .scale(ClusterScale::Devices(16))
        .epochs(sweeps)
        .batch_size(16)
        .raw_frames(0)
        .data_plane_frames(0)
        .build()
        .expect("consistent experiment");
    let reference_report = reference.run().expect("simulation runs");
    println!(
        "single uncontended cluster (M={}): {:.2}s simulated for {} sweeps, final probe L2 {:.6}\n",
        latent_dims[0],
        reference_report.sim_time_s,
        sweeps,
        reference_report.final_probe_l2()
    );

    println!(
        "fleet: {} clusters (latent dims {latent_dims:?}), one shared edge, {sweeps} sweeps\n",
        configs.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "schedule", "makespan(s)", "mean wait(s)", "worst loss", "edge busy(s)"
    );

    for (name, schedule) in [
        ("FIFO", EdgeSchedule::Fifo),
        ("round-robin", EdgeSchedule::RoundRobin),
        ("loss-priority", EdgeSchedule::LossPriority),
    ] {
        let mut coordinator =
            MultiClusterCoordinator::new(&configs, &net, schedule).expect("valid configs");
        let outcome = coordinator.train(&datasets, sweeps).expect("simulation runs");
        println!(
            "{:<14} {:>12.2} {:>12.3} {:>14.6} {:>14.3}",
            name,
            outcome.makespan_s,
            outcome.mean_wait_s(),
            outcome.worst_loss(),
            outcome.edge_busy_s
        );
    }

    println!(
        "\nEvery schedule does the same total work; they differ in who waits\n\
         for the contended edge and which cluster's loss lags — the exact\n\
         trade-off the paper flags as future work on edge training overhead."
    );
}
