//! Serving under fire: run one chaos-gauntlet scenario against the
//! gateway over DES-impaired links, then replay it bit-identically from
//! its recorded impairment tape.
//!
//! The scenario drives real `Client` traffic (hello → push → pull →
//! stats) through the stop-and-wait ARQ transport while the simulated
//! network drops, delays, and reorders frames under virtual time. Every
//! impairment verdict is recorded; feeding the tape back through
//! `replay_scenario` reproduces the run exactly — same wire-level stats
//! frame, same decoded bytes — which is how a failing CI run is debugged
//! locally.
//!
//! ```sh
//! cargo run --release --example serving_under_fire
//! ```
//!
//! For the full five-scenario gauntlet and `--replay FILE`, use the CLI:
//! `cargo run --release -p orco-serve --bin chaos -- --quick`.

use orcodcs_repro::serve::{replay_scenario, run_scenario, RunLog, GAUNTLET};

fn main() {
    let name = "lossy_links";
    let seed = 0xF12E_5EED;
    println!("gauntlet scenarios: {GAUNTLET:?}");
    println!("running `{name}` with seed {seed:#x} (15% loss, jittered delays)...\n");

    let live = run_scenario(name, seed, true).unwrap_or_else(|e| {
        eprintln!("scenario failed: {e}");
        eprintln!("replay tape:\n{}", e.log.to_text());
        std::process::exit(1);
    });
    println!(
        "live run: {} clients x {} frames -> acked {} / delivered {} rows \
         (busy retries {}, ARQ give-ups {}, reconnects {})",
        live.clients,
        live.frames_per_client,
        live.acked_rows,
        live.delivered_rows,
        live.busy_retries,
        live.gave_ups,
        live.reconnects,
    );
    println!(
        "  impairment tape: {} sends recorded; decoded digest {:#018x}",
        live.trace.len(),
        live.decoded_fnv
    );

    // Replay from the tape: no randomness is drawn; every send consumes
    // its recorded verdict instead.
    let log = RunLog { name: name.into(), seed, quick: true, trace: live.trace.clone() };
    let replayed = replay_scenario(&log).expect("replay upholds the same contracts");

    assert_eq!(replayed.stats_frame, live.stats_frame, "stats frame must be bit-identical");
    assert_eq!(replayed.decoded_fnv, live.decoded_fnv, "decoded bytes must be bit-identical");
    assert_eq!(replayed.trace, live.trace, "replay must not rewrite the tape");
    println!("\nreplay: bit-identical (stats frame, decoded digest, and tape all match)");
}
