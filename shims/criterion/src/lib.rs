//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of criterion's API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness. Each benchmark warms up, then runs timed
//! batches until the measurement budget is spent, and prints
//! mean/min/max per iteration to stdout.

// A benchmark harness is exactly the place wall-clock reads belong.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement, warm_up) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(&name.into(), sample_size, measurement, warm_up, f);
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the expected throughput (accepted, unused by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark, optionally with a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self { label: label.to_string() }
    }
}

/// Throughput hint (accepted for API compatibility; unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: find an iteration count that fills roughly one sample slot.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up_time {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        b.iters = b.iters.saturating_mul(2);
    }
    let slot = measurement_time / sample_size as u32;
    let iters_per_sample =
        (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, c| a.partial_cmp(c).expect("finite times"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        format_time(mean),
        format_time(samples[0]),
        format_time(*samples.last().expect("non-empty")),
        sample_size,
        iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
