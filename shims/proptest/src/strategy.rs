//! Value-generation strategies for the proptest shim.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Strategy for [`Arbitrary`] types; built by [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Self { _marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_ranges!(usize, u8, u16, u32, u64);

macro_rules! signed_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_ranges!(i8, i16, i32, i64);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_ranges!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi > self.size.lo + 1 {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        } else {
            self.size.lo
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors with the given element strategy and size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
