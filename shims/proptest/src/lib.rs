//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this reproduction has no access to crates.io,
//! so this shim provides the subset of proptest's API the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, [`Just`], [`any`], [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a deterministic per-test stream (seeded by the test's module
//! path and name, so runs are reproducible without a persistence file), and
//! there is no shrinking — a failing case panics with the sampled values
//! embedded in the assertion message instead.

mod rng;
mod strategy;

pub use rng::TestRng;
pub use strategy::{
    vec as collection_vec, Any, Arbitrary, BoxedStrategy, FlatMap, Just, Map, Strategy, Union,
};

/// Runner configuration: how many random cases each property test draws.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Generates a value of `T` from its entire natural range.
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> Any<T> {
    Any::new()
}

/// The namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. (The shim simply ends the case; real proptest re-draws.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as $crate::BoxedStrategy<_>),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let mut run_case = || $body;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        &mut run_case,
                    ));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}
