//! Deterministic random stream for the proptest shim.

/// SplitMix64-based generator; seeded from the test's fully qualified name
/// so every test owns an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: hash }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
