//! End-to-end integration tests spanning every crate: dataset synthesis →
//! WSN deployment → orchestrated online training → encoder distribution →
//! compressed aggregation → follow-up classification → drift → fine-tuning.

use orcodcs_repro::baselines::offline_trainer::train_dcsnet_offline;
use orcodcs_repro::classifier::{Cnn, TrainConfig};
use orcodcs_repro::core::{experiment, OnlineTrainer, Orchestrator, OrcoConfig, SplitModel};
use orcodcs_repro::datasets::{drift, mnist_like, DatasetKind};
use orcodcs_repro::nn::Loss;
use orcodcs_repro::tensor::OrcoRng;
use orcodcs_repro::wsn::NetworkConfig;

fn small_cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(32)
        .with_epochs(3)
        .with_batch_size(16)
}

#[test]
fn full_lifecycle_produces_consistent_outcome() {
    let dataset = mnist_like::generate(48, 0);
    let outcome = experiment::run_orcodcs(&dataset, &small_cfg()).expect("lifecycle runs");

    // Training happened and the clock moved.
    assert!(outcome.history.rounds.len() >= 9);
    assert!(outcome.sim_time_s > 0.0);
    // Quality metrics are sane.
    assert!(outcome.final_loss.is_finite() && outcome.final_loss > 0.0);
    assert!(outcome.mean_psnr_db > 5.0, "PSNR {} too low", outcome.mean_psnr_db);
    // Data plane measured on live simulation.
    assert!(outcome.data_plane.total_bytes > 0);
    assert!(outcome.data_plane.uplink_bytes > 0);
    // Time monotone across rounds.
    for w in outcome.history.rounds.windows(2) {
        assert!(w[1].sim_time_s >= w[0].sim_time_s);
    }
}

#[test]
fn training_is_deterministic_across_runs() {
    let dataset = mnist_like::generate(32, 1);
    let a = experiment::run_orcodcs(&dataset, &small_cfg()).expect("run a");
    let b = experiment::run_orcodcs(&dataset, &small_cfg()).expect("run b");
    assert_eq!(a.final_loss, b.final_loss);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    assert_eq!(a.data_plane.total_bytes, b.data_plane.total_bytes);
    let ra: Vec<f32> = a.history.rounds.iter().map(|r| r.loss).collect();
    let rb: Vec<f32> = b.history.rounds.iter().map(|r| r.loss).collect();
    assert_eq!(ra, rb);
}

#[test]
fn drift_triggers_finetuning_and_recovery_improves_error() {
    let dataset = mnist_like::generate(48, 2);
    let cfg = small_cfg().with_finetune_threshold(0.05);
    let orch =
        Orchestrator::new(cfg, NetworkConfig { num_devices: 16, seed: 2, ..Default::default() })
            .expect("valid config");
    let mut online = OnlineTrainer::new(orch);
    let _ = online.initial_training(dataset.x()).expect("initial training");

    let mut rng = OrcoRng::from_label("e2e-drift", 0);
    let drifted = drift::apply(&dataset, drift::Drift::Bias, 0.8, &mut rng);

    let mut first_error = None;
    let mut recovered_error = None;
    for _ in 0..8 {
        let out = online.process_batch(drifted.x()).expect("process");
        if first_error.is_none() {
            first_error = Some(out.reconstruction_loss);
        }
        if let Some(h) = out.retraining {
            recovered_error = h.final_loss();
            break;
        }
    }
    let first = first_error.expect("at least one batch processed");
    let recovered = recovered_error.expect("monitor must trigger under severe bias");
    assert!(recovered < first, "retraining should reduce error: {first} -> {recovered}");
}

#[test]
fn classifier_on_orcodcs_reconstructions_beats_chance() {
    let train = mnist_like::generate(160, 3);
    let test = mnist_like::generate(40, 4);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_epochs(20).with_batch_size(32);
    let outcome = experiment::run_orcodcs(&train, &cfg).expect("lifecycle runs");
    let mut orch = outcome.orchestrator;

    let recon_train = train.with_x(orch.model_mut().reconstruct_inference(train.x()));
    let recon_test = test.with_x(orch.model_mut().reconstruct_inference(test.x()));

    let mut rng = OrcoRng::from_label("e2e-clf", 0);
    let mut cnn = Cnn::new(DatasetKind::MnistLike, &mut rng);
    let curve = cnn.train_epochs(
        &recon_train,
        &recon_test,
        &TrainConfig { epochs: 8, batch_size: 16, learning_rate: 2e-3 },
        &mut rng,
    );
    let acc = curve.last().unwrap().test_accuracy;
    // Chance on 10 balanced classes is 10%; reconstructions of a compact
    // 128-dim latent at this tiny training size support well above that.
    assert!(acc > 0.2, "accuracy on reconstructions {acc} should clearly beat 10% chance");
}

#[test]
fn orcodcs_reconstruction_beats_data_starved_dcsnet() {
    // The Figure-2/5 ordering: online full-stream OrcoDCS reconstructs
    // better (on common L2) than offline DCSNet that saw 30% of the data.
    let dataset = mnist_like::generate(96, 5);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_epochs(6).with_batch_size(32);
    let outcome = experiment::run_orcodcs(&dataset, &cfg).expect("lifecycle runs");
    let mut orch = outcome.orchestrator;
    let orco_recon = orch.model_mut().reconstruct_inference(dataset.x());
    let orco_l2 = Loss::L2.value(&orco_recon, dataset.x());

    let mut dcs = train_dcsnet_offline(&dataset, 0.3, 6, 32, 0);
    let dcs_l2 = dcs.model.evaluate(dataset.x(), &Loss::L2);

    assert!(orco_l2 < dcs_l2, "OrcoDCS L2 {orco_l2} should beat DCSNet-30% {dcs_l2}");
}
