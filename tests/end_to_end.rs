//! End-to-end integration tests spanning every crate: dataset synthesis →
//! WSN deployment → orchestrated online training → encoder distribution →
//! compressed aggregation → follow-up classification → drift → fine-tuning.

use orcodcs_repro::baselines::Dcsnet;
use orcodcs_repro::classifier::{Cnn, TrainConfig};
use orcodcs_repro::core::{
    AsymmetricAutoencoder, ExperimentBuilder, OnlineTrainer, Orchestrator, OrcoConfig, TrainingMode,
};
use orcodcs_repro::datasets::{drift, mnist_like, DatasetKind};
use orcodcs_repro::nn::Loss;
use orcodcs_repro::tensor::OrcoRng;
use orcodcs_repro::wsn::NetworkConfig;

fn small_cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(32)
        .with_epochs(3)
        .with_batch_size(16)
}

fn run_pipeline(
    dataset: &orcodcs_repro::datasets::Dataset,
    cfg: &OrcoConfig,
) -> (orcodcs_repro::core::Experiment, orcodcs_repro::core::Report) {
    let codec = AsymmetricAutoencoder::new(cfg).expect("valid config");
    let mut exp = ExperimentBuilder::new()
        .dataset(dataset)
        .codec(codec)
        .epochs(cfg.epochs)
        .batch_size(cfg.batch_size)
        .seed(cfg.seed)
        .build()
        .expect("consistent experiment");
    let report = exp.run().expect("lifecycle runs");
    (exp, report)
}

#[test]
fn full_lifecycle_produces_consistent_outcome() {
    let dataset = mnist_like::generate(48, 0);
    let (_exp, report) = run_pipeline(&dataset, &small_cfg());

    // Training happened and the clock moved.
    assert!(report.rounds.len() >= 9);
    assert!(report.sim_time_s > 0.0);
    // Quality metrics are sane.
    assert!(report.final_loss.is_finite() && report.final_loss > 0.0);
    assert!(report.mean_psnr_db > 5.0, "PSNR {} too low", report.mean_psnr_db);
    // Data plane measured on live simulation.
    let data_plane = report.data_plane.expect("measured");
    assert!(data_plane.total_bytes > 0);
    assert!(data_plane.uplink_bytes > 0);
    // Time monotone across rounds.
    for w in report.rounds.windows(2) {
        assert!(w[1].sim_time_s >= w[0].sim_time_s);
    }
}

#[test]
fn training_is_deterministic_across_runs() {
    let dataset = mnist_like::generate(32, 1);
    let (_ea, a) = run_pipeline(&dataset, &small_cfg());
    let (_eb, b) = run_pipeline(&dataset, &small_cfg());
    assert_eq!(a.final_loss, b.final_loss);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    assert_eq!(a.data_plane.unwrap().total_bytes, b.data_plane.unwrap().total_bytes);
    let ra: Vec<f32> = a.rounds.iter().map(|r| r.loss).collect();
    let rb: Vec<f32> = b.rounds.iter().map(|r| r.loss).collect();
    assert_eq!(ra, rb);
}

#[test]
fn drift_triggers_finetuning_and_recovery_improves_error() {
    let dataset = mnist_like::generate(48, 2);
    let cfg = small_cfg().with_finetune_threshold(0.05);
    let orch =
        Orchestrator::new(cfg, NetworkConfig { num_devices: 16, seed: 2, ..Default::default() })
            .expect("valid config");
    let mut online = OnlineTrainer::new(orch);
    let _ = online.initial_training(dataset.x()).expect("initial training");

    let mut rng = OrcoRng::from_label("e2e-drift", 0);
    let drifted = drift::apply(&dataset, drift::Drift::Bias, 0.8, &mut rng);

    let mut first_error = None;
    let mut recovered_error = None;
    for _ in 0..8 {
        let out = online.process_batch(drifted.x()).expect("process");
        if first_error.is_none() {
            first_error = Some(out.reconstruction_loss);
        }
        if let Some(h) = out.retraining {
            recovered_error = h.final_loss();
            break;
        }
    }
    let first = first_error.expect("at least one batch processed");
    let recovered = recovered_error.expect("monitor must trigger under severe bias");
    assert!(recovered < first, "retraining should reduce error: {first} -> {recovered}");
}

#[test]
fn classifier_on_orcodcs_reconstructions_beats_chance() {
    let train = mnist_like::generate(160, 3);
    let test = mnist_like::generate(40, 4);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_epochs(20).with_batch_size(32);
    let (mut exp, _report) = run_pipeline(&train, &cfg);

    let recon_train =
        train.with_x(exp.codec_mut().reconstruct(train.x()).expect("codec reconstructs"));
    let recon_test =
        test.with_x(exp.codec_mut().reconstruct(test.x()).expect("codec reconstructs"));

    let mut rng = OrcoRng::from_label("e2e-clf", 0);
    let mut cnn = Cnn::new(DatasetKind::MnistLike, &mut rng);
    let curve = cnn.train_epochs(
        &recon_train,
        &recon_test,
        &TrainConfig { epochs: 8, batch_size: 16, learning_rate: 2e-3 },
        &mut rng,
    );
    let acc = curve.last().unwrap().test_accuracy;
    // Chance on 10 balanced classes is 10%; reconstructions of a compact
    // 128-dim latent at this tiny training size support well above that.
    assert!(acc > 0.2, "accuracy on reconstructions {acc} should clearly beat 10% chance");
}

#[test]
fn orcodcs_reconstruction_beats_data_starved_dcsnet() {
    // The Figure-2/5 ordering: online full-stream OrcoDCS reconstructs
    // better (on common L2) than offline DCSNet that saw 30% of the data.
    let dataset = mnist_like::generate(96, 5);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_epochs(6).with_batch_size(32);
    let (mut exp, _report) = run_pipeline(&dataset, &cfg);
    let orco_recon = exp.codec_mut().reconstruct(dataset.x()).expect("codec reconstructs");
    let orco_l2 = Loss::L2.value(&orco_recon, dataset.x());

    // DCSNet's native offline scheme, through the same builder.
    let mut dcs = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(Dcsnet::new(DatasetKind::MnistLike, 0))
        .training(TrainingMode::Local)
        .epochs(6)
        .batch_size(32)
        .data_fraction(0.3)
        .build()
        .expect("consistent experiment");
    let _ = dcs.run().expect("offline training runs");
    let dcs_recon = dcs.codec_mut().reconstruct(dataset.x()).expect("codec reconstructs");
    let dcs_l2 = Loss::L2.value(&dcs_recon, dataset.x());

    assert!(orco_l2 < dcs_l2, "OrcoDCS L2 {orco_l2} should beat DCSNet-30% {dcs_l2}");
}
