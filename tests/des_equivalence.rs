//! The analytic ↔ event-driven equivalence contract, and the scenario
//! statistics the event-driven backend adds beyond it.
//!
//! Contract (regression-pinned here): running the experiment pipeline over
//! the `orco-sim` discrete-event backend with [`SimSpec::ideal`] — the
//! contention-free sequential schedule, zero loss, zero jitter, no
//! scenario — reproduces the analytic backend's traffic-ledger byte
//! counts, radio energy totals, **and** simulated-clock readings exactly
//! (bitwise, not approximately): both backends execute the same cost
//! formulas in the same floating-point operation order. Everything the
//! event-driven backend does beyond that mode (contention, ARQ, duty
//! cycles, scripted faults) is additive expressiveness.

use orcodcs_repro::core::{
    AsymmetricAutoencoder, DeploymentSpec, ExperimentBuilder, OrcoConfig, Report, TrainingMode,
};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::sim::{MacMode, Scenario, SimParams, SimSpec};

fn report_with(deployment: DeploymentSpec, seed: u64) -> Report {
    let dataset = mnist_like::generate(16, seed);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_batch_size(8)
        .with_learning_rate(0.1);
    let codec = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .deployment(deployment)
        .seed(seed)
        .epochs(2)
        .batch_size(8)
        .data_plane_frames(3)
        .build()
        .expect("consistent experiment");
    experiment.run().expect("pipeline runs")
}

#[test]
fn ideal_des_reproduces_analytic_totals_exactly() {
    let analytic = report_with(DeploymentSpec::Analytic, 0);
    let des = report_with(DeploymentSpec::EventDriven(SimSpec::ideal()), 0);

    assert_eq!(analytic.backend, "analytic");
    assert_eq!(des.backend, "event-driven");

    // Byte totals: exact.
    assert_eq!(analytic.training_radio.total_tx_bytes, des.training_radio.total_tx_bytes);
    assert_eq!(analytic.training_radio.uplink_bytes, des.training_radio.uplink_bytes);
    assert_eq!(analytic.training_radio.feedback_bytes, des.training_radio.feedback_bytes);

    // Energy totals: exact, down to the last bit of the f64 sums.
    assert_eq!(
        analytic.training_radio.energy_j.to_bits(),
        des.training_radio.energy_j.to_bits(),
        "energy must be reproduced bitwise: {} vs {}",
        analytic.training_radio.energy_j,
        des.training_radio.energy_j
    );

    // Simulated clock: exact.
    assert_eq!(
        analytic.sim_time_s.to_bits(),
        des.sim_time_s.to_bits(),
        "sim time must be reproduced bitwise: {} vs {}",
        analytic.sim_time_s,
        des.sim_time_s
    );

    // Packet outcomes and airtime: exact.
    assert_eq!(
        analytic.training_radio.link.delivered_packets,
        des.training_radio.link.delivered_packets
    );
    assert_eq!(analytic.training_radio.link.dropped_packets, 0);
    assert_eq!(des.training_radio.link.dropped_packets, 0);
    assert_eq!(analytic.training_radio.link.retransmitted_frames, 0);
    assert_eq!(des.training_radio.link.retransmitted_frames, 0);
    assert_eq!(
        analytic.training_radio.link.airtime_s.to_bits(),
        des.training_radio.link.airtime_s.to_bits()
    );

    // Per-round records: clock, uplink bytes, and energy all exact.
    assert_eq!(analytic.rounds.len(), des.rounds.len());
    for (a, d) in analytic.rounds.iter().zip(&des.rounds) {
        assert_eq!(a.loss.to_bits(), d.loss.to_bits(), "round {} loss", a.round);
        assert_eq!(a.uplink_bytes, d.uplink_bytes, "round {} uplink", a.round);
        assert_eq!(a.sim_time_s.to_bits(), d.sim_time_s.to_bits(), "round {} clock", a.round);
        assert_eq!(a.energy_j.to_bits(), d.energy_j.to_bits(), "round {} energy", a.round);
    }

    // The model side never touches the backend: identical quality numbers.
    assert_eq!(analytic.final_loss.to_bits(), des.final_loss.to_bits());
    assert_eq!(analytic.mean_psnr_db.to_bits(), des.mean_psnr_db.to_bits());

    // Steady-state data plane: exact.
    let ap = analytic.data_plane.expect("measured");
    let dp = des.data_plane.expect("measured");
    assert_eq!(ap.total_bytes, dp.total_bytes);
    assert_eq!(ap.chain_bytes, dp.chain_bytes);
    assert_eq!(ap.uplink_bytes, dp.uplink_bytes);
    assert_eq!(ap.energy_j.to_bits(), dp.energy_j.to_bits());
    assert_eq!(ap.sim_time_s.to_bits(), dp.sim_time_s.to_bits());
}

#[test]
fn ideal_equivalence_holds_across_seeds() {
    for seed in [1, 7] {
        let analytic = report_with(DeploymentSpec::Analytic, seed);
        let des = report_with(DeploymentSpec::EventDriven(SimSpec::ideal()), seed);
        assert_eq!(analytic.training_radio.total_tx_bytes, des.training_radio.total_tx_bytes);
        assert_eq!(
            analytic.training_radio.energy_j.to_bits(),
            des.training_radio.energy_j.to_bits(),
            "seed {seed}"
        );
        assert_eq!(analytic.sim_time_s.to_bits(), des.sim_time_s.to_bits(), "seed {seed}");
    }
}

#[test]
fn lossy_scripted_scenario_produces_retransmission_and_latency_stats() {
    // Degrade the sensor link to 30% frame loss from the very start: raw
    // aggregation and the data plane must pay visible ARQ retries.
    let spec = SimSpec {
        params: SimParams { mac: MacMode::Fifo, ..SimParams::ideal() },
        scenario: Scenario::new().degrade_sensor_link(0.0..1e9, 0.3),
    };
    let report = report_with(DeploymentSpec::EventDriven(spec), 3);
    let link = &report.training_radio.link;
    assert!(link.delivered_packets > 0, "traffic still flows");
    assert!(link.retransmitted_frames > 0, "30% loss must force retransmissions, got {link:?}");
    assert!(link.latency_p50_s > 0.0 && link.latency_p99_s >= link.latency_p50_s);
    assert!(link.airtime_s > 0.0);

    // The lossy run pays more bytes than a clean one for the same work.
    let clean = report_with(DeploymentSpec::EventDriven(SimSpec::ideal()), 3);
    assert!(
        report.training_radio.total_tx_bytes > clean.training_radio.total_tx_bytes,
        "retransmissions cost bytes: lossy {} vs clean {}",
        report.training_radio.total_tx_bytes,
        clean.training_radio.total_tx_bytes
    );

    // Per-round records carry the cumulative link statistics.
    let last = report.rounds.last().expect("rounds ran");
    assert!(last.link.delivered_packets > 0);
    assert_eq!(report.mode, TrainingMode::Orchestrated);
}

#[test]
fn replaying_a_scenario_yields_bit_identical_reports() {
    let spec = || SimSpec {
        params: SimParams { mac: MacMode::Tdma { slot_s: 0.02 }, ..SimParams::ideal() },
        scenario: Scenario::new()
            .kill_at(0.5, 2)
            .degrade_sensor_link(0.2..2.0, 0.2)
            .burst_at(0.3, 1, 128, 4),
    };
    let a = report_with(DeploymentSpec::EventDriven(spec()), 5);
    let b = report_with(DeploymentSpec::EventDriven(spec()), 5);
    assert_eq!(a, b, "same scenario + seed must replay bit-identically");
}
