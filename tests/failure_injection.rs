//! Failure-injection integration tests: dead devices, lossy links, and
//! divergence guards must degrade the system gracefully, never corrupt it.

use orcodcs_repro::core::{Orchestrator, OrcoConfig};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::wsn::{LinkModel, Network, NetworkConfig, PacketKind, WsnError};

fn cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_epochs(1)
        .with_batch_size(8)
}

#[test]
fn training_survives_device_deaths() {
    let dataset = mnist_like::generate(16, 0);
    let mut orch =
        Orchestrator::new(cfg(), NetworkConfig { num_devices: 12, seed: 0, ..Default::default() })
            .expect("valid config");

    // Kill a third of the cluster.
    let victims: Vec<_> = orch.network().devices().iter().copied().step_by(3).collect();
    for v in &victims {
        orch.network_mut().kill_device(*v).expect("device exists");
    }
    assert!(orch.network().tree().check_invariants());

    // Raw aggregation, training, distribution, compressed frames all still run.
    let t = orch.aggregate_raw_frames(3).expect("raw aggregation");
    assert!(t > 0.0);
    let history = orch.train(dataset.x()).expect("training");
    assert!(!history.rounds.is_empty());
    let (_cols, _t) = orch.distribute_encoder().expect("distribution");
    let t = orch.compressed_frame().expect("compressed frame");
    assert!(t > 0.0);

    // Dead devices sent nothing after their death.
    for v in &victims {
        assert_eq!(orch.network().accounting().node(*v).tx_bytes, 0);
    }
}

#[test]
fn killing_every_chain_member_but_one_still_aggregates() {
    let mut net = Network::new(NetworkConfig { num_devices: 6, seed: 1, ..Default::default() });
    let all: Vec<_> = net.devices().to_vec();
    for v in &all[1..] {
        net.kill_device(*v).expect("device exists");
    }
    assert_eq!(net.alive_devices().len(), 1);
    let t = net.compressed_aggregation_round(64, 10).expect("single survivor chain");
    assert!(t > 0.0);
    // The survivor talked to the aggregator.
    assert!(net.accounting().node(all[0]).tx_bytes > 0);
}

#[test]
fn lossy_links_retry_and_eventually_deliver() {
    let mut config = NetworkConfig { num_devices: 4, seed: 2, ..Default::default() };
    config.sensor_link = LinkModel::sensor_radio().with_loss(0.3);
    let mut net = Network::new(config);
    let d = net.devices()[0];
    // With 30% loss and 7 retries, 30 sends virtually always succeed.
    let mut delivered = 0;
    for _ in 0..30 {
        if net.transmit(d, net.aggregator(), 64, PacketKind::RawData).is_ok() {
            delivered += 1;
        }
    }
    assert!(delivered >= 29, "only {delivered}/30 delivered");
    // Retransmissions show up as extra bytes relative to a clean network.
    let lossy_bytes = net.accounting().node(d).tx_bytes;
    let mut clean = Network::new(NetworkConfig { num_devices: 4, seed: 2, ..Default::default() });
    let dc = clean.devices()[0];
    for _ in 0..30 {
        clean.transmit(dc, clean.aggregator(), 64, PacketKind::RawData).expect("clean link");
    }
    assert!(lossy_bytes > clean.accounting().node(dc).tx_bytes);
}

#[test]
fn hopeless_link_reports_transmission_failed() {
    let mut config =
        NetworkConfig { num_devices: 2, seed: 3, max_retries: 2, ..Default::default() };
    config.sensor_link = LinkModel::sensor_radio().with_loss(0.99);
    let mut net = Network::new(config);
    let d = net.devices()[0];
    let mut saw_failure = false;
    for _ in 0..20 {
        match net.transmit(d, net.aggregator(), 32, PacketKind::RawData) {
            Err(WsnError::TransmissionFailed { attempts, .. }) => {
                assert!(attempts > 2);
                saw_failure = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(saw_failure, "99% loss with 2 retries must eventually fail");
}

#[test]
fn battery_exhaustion_kills_senders_mid_protocol() {
    let mut net = Network::new(NetworkConfig { num_devices: 3, seed: 4, ..Default::default() });
    let d = net.devices()[0];
    // Drain the battery almost completely.
    let mut exhausted = false;
    for _ in 0..1_000_000 {
        match net.transmit(d, net.aggregator(), 4096, PacketKind::RawData) {
            Ok(_) => continue,
            Err(WsnError::EnergyExhausted { id }) => {
                assert_eq!(id, d);
                exhausted = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(exhausted, "finite battery must run out");
    assert!(!net.node(d).expect("node exists").is_alive());
    // Subsequent sends from the dead node fail cleanly.
    assert!(matches!(
        net.transmit(d, net.aggregator(), 4, PacketKind::RawData),
        Err(WsnError::NodeDead { .. })
    ));
}

#[test]
fn non_device_kill_is_rejected() {
    let mut net = Network::new(NetworkConfig { num_devices: 3, seed: 5, ..Default::default() });
    let agg = net.aggregator();
    assert!(matches!(net.kill_device(agg), Err(WsnError::UnknownNode { .. })));
}
