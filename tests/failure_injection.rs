//! Failure-injection integration tests: dead devices, lossy links, and
//! divergence guards must degrade the system gracefully, never corrupt it.
//!
//! Deterministic fault drills run through the **scenario-scripted
//! event-driven backend** (`orco_sim::Scenario`): device deaths,
//! recoveries, and link-degradation windows are declared once, on a
//! timeline, instead of hand-mutating the deployment mid-test. Failures
//! that emerge organically from the physics (battery exhaustion) or that
//! pin analytic-backend error contracts keep exercising the analytic
//! [`Network`] directly.

use orcodcs_repro::core::{
    AsymmetricAutoencoder, DeploymentSpec, ExperimentBuilder, OrcoConfig, Report,
};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::sim::{DesNetwork, Scenario, SimSpec};
use orcodcs_repro::wsn::{
    DeploymentBackend, LinkModel, Network, NetworkConfig, PacketKind, WsnError,
};

/// Runs the full pipeline over the event-driven backend with a scripted
/// scenario on a 12-device cluster.
fn run_scripted(scenario: Scenario, seed: u64) -> (Report, Vec<orcodcs_repro::wsn::NodeId>) {
    let dataset = mnist_like::generate(16, seed);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_batch_size(8)
        .with_learning_rate(0.1);
    let codec = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .deployment(DeploymentSpec::EventDriven(SimSpec::with_scenario(scenario)))
        .scale(orcodcs_repro::core::ClusterScale::Devices(12))
        .seed(seed)
        .epochs(1)
        .batch_size(8)
        .build()
        .expect("consistent experiment");
    let report = experiment.run().expect("scripted faults must not corrupt the run");
    let devices = experiment.network().expect("orchestrated").devices().to_vec();
    (report, devices)
}

#[test]
fn training_survives_scripted_device_deaths() {
    // A third of the cluster dies at t = 0, before any traffic.
    let scenario = Scenario::new().kill_at(0.0, 0).kill_at(0.0, 3).kill_at(0.0, 6).kill_at(0.0, 9);
    let (report, devices) = run_scripted(scenario, 0);

    // Raw aggregation, training, distribution, compressed frames all ran.
    assert!(!report.rounds.is_empty());
    assert!(report.final_loss.is_finite());
    assert!(report.sim_time_s > 0.0);
    assert!(report.data_plane.expect("measured").total_bytes > 0);
    assert!(report.training_radio.link.delivered_packets > 0);

    // Scripted victims sent nothing — they were dead for the whole run.
    let (_, devices_again) = run_scripted(
        Scenario::new().kill_at(0.0, 0).kill_at(0.0, 3).kill_at(0.0, 6).kill_at(0.0, 9),
        0,
    );
    assert_eq!(devices, devices_again);
}

#[test]
fn scripted_victims_send_nothing_after_death() {
    let dataset = mnist_like::generate(8, 1);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_batch_size(8)
        .with_learning_rate(0.1);
    let codec = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let scenario = Scenario::new().kill_at(0.0, 2).kill_at(0.0, 5);
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .deployment(DeploymentSpec::EventDriven(SimSpec::with_scenario(scenario)))
        .scale(orcodcs_repro::core::ClusterScale::Devices(8))
        .seed(1)
        .epochs(1)
        .batch_size(8)
        .build()
        .expect("consistent experiment");
    let _ = experiment.run().expect("run survives");
    let net = experiment.network().expect("orchestrated");
    for victim_index in [2usize, 5] {
        let victim = net.devices()[victim_index];
        assert_eq!(
            net.accounting().node(victim).tx_bytes,
            0,
            "device {victim_index} was scripted dead from t = 0"
        );
    }
    // Survivors did transmit.
    let survivor = net.devices()[0];
    assert!(net.accounting().node(survivor).tx_bytes > 0);
}

#[test]
fn death_and_recovery_window_stops_and_resumes_traffic() {
    // Device 1 dies during a window and is revived with a fresh battery;
    // the script runs against the backend directly, round by round.
    let scenario = Scenario::new().kill_at(0.4, 1).revive_at(0.9, 1, 2.0);
    let mut des = DesNetwork::new(
        NetworkConfig { num_devices: 6, seed: 2, ..Default::default() },
        SimSpec::with_scenario(scenario),
    );
    let victim = des.devices()[1];

    let mut tx_checkpoints = Vec::new();
    while des.now_s() < 1.6 {
        des.raw_aggregation_round(4).expect("round survives scripted faults");
        tx_checkpoints.push((des.now_s(), des.accounting().node(victim).tx_bytes));
    }
    let during = tx_checkpoints
        .iter()
        .filter(|(t, _)| (0.45..0.9).contains(t))
        .map(|(_, b)| *b)
        .collect::<Vec<_>>();
    let after: Vec<u64> =
        tx_checkpoints.iter().filter(|(t, _)| *t >= 1.0).map(|(_, b)| *b).collect();
    assert!(!during.is_empty() && !after.is_empty(), "drill covers both windows");
    // Flat while dead…
    assert_eq!(during.first(), during.last(), "no traffic while dead: {during:?}");
    // …and growing again after recovery.
    assert!(
        after.last().unwrap() > during.last().unwrap(),
        "revived device transmits again: {tx_checkpoints:?}"
    );
}

#[test]
fn killing_every_chain_member_but_one_still_aggregates() {
    let scenario = (1..6).fold(Scenario::new(), |s, device| s.kill_at(0.0, device));
    let mut des = DesNetwork::new(
        NetworkConfig { num_devices: 6, seed: 1, ..Default::default() },
        SimSpec::with_scenario(scenario),
    );
    let all: Vec<_> = des.devices().to_vec();
    let t = des.compressed_aggregation_round(64, 10).expect("single survivor chain");
    assert!(t > 0.0);
    assert_eq!(des.alive_devices().len(), 1);
    // The survivor talked to the aggregator.
    assert!(des.accounting().node(all[0]).tx_bytes > 0);
}

#[test]
fn scripted_lossy_window_retries_and_eventually_delivers() {
    // 30% sensor loss across the whole drill, scripted instead of baked
    // into the link model.
    let scenario = Scenario::new().degrade_sensor_link(0.0..1e6, 0.3);
    let mut lossy = DesNetwork::new(
        NetworkConfig { num_devices: 4, seed: 2, ..Default::default() },
        SimSpec::with_scenario(scenario),
    );
    let mut clean = DesNetwork::new(
        NetworkConfig { num_devices: 4, seed: 2, ..Default::default() },
        SimSpec::ideal(),
    );
    let d = lossy.devices()[0];
    let agg = lossy.aggregator();
    let mut delivered = 0;
    for _ in 0..30 {
        if lossy.transmit(d, agg, 64, PacketKind::RawData).is_ok() {
            delivered += 1;
        }
        clean.transmit(d, agg, 64, PacketKind::RawData).expect("clean link");
    }
    // With 30% frame loss and 7 per-packet retries, deliveries dominate.
    assert!(delivered >= 29, "only {delivered}/30 delivered");
    let stats = lossy.accounting().link_stats();
    assert!(stats.retransmitted_frames > 0, "ARQ must have fired: {stats:?}");
    // Retransmissions cost bytes relative to the clean deployment.
    assert!(
        lossy.accounting().node(d).tx_bytes > clean.accounting().node(d).tx_bytes,
        "lossy {} vs clean {}",
        lossy.accounting().node(d).tx_bytes,
        clean.accounting().node(d).tx_bytes
    );
    // And delivery latency stretches beyond the clean p50.
    assert!(stats.latency_p99_s > clean.accounting().link_stats().latency_p50_s);
}

// ----------------------------------------------------------------------
// Organic / analytic-contract failures (not scenario-scripted: they test
// the physics and the analytic backend's error surface itself).
// ----------------------------------------------------------------------

#[test]
fn hopeless_link_reports_transmission_failed() {
    let mut config =
        NetworkConfig { num_devices: 2, seed: 3, max_retries: 2, ..Default::default() };
    config.sensor_link = LinkModel::sensor_radio().with_loss(0.99);
    let mut net = Network::new(config);
    let d = net.devices()[0];
    let mut saw_failure = false;
    for _ in 0..20 {
        match net.transmit(d, net.aggregator(), 32, PacketKind::RawData) {
            Err(WsnError::TransmissionFailed { attempts, .. }) => {
                assert!(attempts > 2);
                saw_failure = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(saw_failure, "99% loss with 2 retries must eventually fail");
    // Drops land in the ledger for both backends.
    assert!(net.accounting().link_stats().dropped_packets > 0);
}

#[test]
fn battery_exhaustion_kills_senders_mid_protocol() {
    let mut net = Network::new(NetworkConfig { num_devices: 3, seed: 4, ..Default::default() });
    let d = net.devices()[0];
    // Drain the battery almost completely.
    let mut exhausted = false;
    for _ in 0..1_000_000 {
        match net.transmit(d, net.aggregator(), 4096, PacketKind::RawData) {
            Ok(_) => continue,
            Err(WsnError::EnergyExhausted { id }) => {
                assert_eq!(id, d);
                exhausted = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(exhausted, "finite battery must run out");
    assert!(!net.node(d).expect("node exists").is_alive());
    // Subsequent sends from the dead node fail cleanly.
    assert!(matches!(
        net.transmit(d, net.aggregator(), 4, PacketKind::RawData),
        Err(WsnError::NodeDead { .. })
    ));
}

#[test]
fn battery_exhaustion_is_bitwise_identical_across_backends() {
    // Organic battery death is part of the ideal-mode equivalence
    // contract: the fatal attempt costs the same time and bytes on both
    // backends, and both surface the same error.
    let config = || NetworkConfig { num_devices: 3, seed: 4, ..Default::default() };
    let mut net = Network::new(config());
    let mut des = DesNetwork::new(config(), SimSpec::ideal());
    let d = net.devices()[0];
    let agg = net.aggregator();
    loop {
        let a = net.transmit(d, agg, 4096, PacketKind::RawData);
        let b = des.transmit(d, agg, 4096, PacketKind::RawData);
        match (a, b) {
            (Ok(_), Ok(_)) => continue,
            (
                Err(WsnError::EnergyExhausted { id: ia }),
                Err(WsnError::EnergyExhausted { id: ib }),
            ) => {
                assert_eq!(ia, ib);
                break;
            }
            (a, b) => panic!("backends diverged: {a:?} vs {b:?}"),
        }
    }
    assert_eq!(
        net.now_s().to_bits(),
        des.now_s().to_bits(),
        "clocks must stay bitwise-equal through the fatal attempt: {} vs {}",
        net.now_s(),
        des.now_s()
    );
    assert_eq!(net.accounting().total_tx_bytes(), des.accounting().total_tx_bytes());
    assert_eq!(
        net.accounting().link_stats().dropped_packets,
        des.accounting().link_stats().dropped_packets
    );
}

#[test]
fn non_device_kill_is_rejected() {
    let mut net = Network::new(NetworkConfig { num_devices: 3, seed: 5, ..Default::default() });
    let agg = net.aggregator();
    assert!(matches!(net.kill_device(agg), Err(WsnError::UnknownNode { .. })));
}
