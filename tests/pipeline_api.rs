//! Integration tests for the `Codec` + `ExperimentBuilder` pipeline API:
//! the legacy-wrapper equivalence regression, checkpoint persistence
//! through the pipeline's `.checkpoints(..)` hook, the fine-tuning monitor
//! through `.monitor(..)` + `observe()`, and the four-backend object-safe
//! smoke test.

use orcodcs_repro::baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orcodcs_repro::baselines::Dcsnet;
use orcodcs_repro::core::checkpoint::{CheckpointStore, EncoderCheckpoint};
use orcodcs_repro::core::{
    experiment, AsymmetricAutoencoder, Codec, ExperimentBuilder, FineTuneMonitor, OrcoConfig,
    TrainingMode,
};
use orcodcs_repro::datasets::{drift, mnist_like, DatasetKind};
use orcodcs_repro::tensor::OrcoRng;

fn small_cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(32)
        .with_epochs(3)
        .with_batch_size(16)
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("orcodcs-pipeline-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deprecated `run_orcodcs` wrapper and the equivalent
/// `ExperimentBuilder` chain must produce **bit-identical** metrics at the
/// same seed: same per-round losses on the same simulated clock, same
/// final loss and PSNR, same data-plane bytes.
#[test]
fn builder_chain_matches_legacy_run_orcodcs_bit_for_bit() {
    let dataset = mnist_like::generate(40, 11);
    let cfg = small_cfg();

    #[allow(deprecated)]
    let legacy = experiment::run_orcodcs(&dataset, &cfg).expect("legacy driver runs");

    let codec = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let mut exp = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(codec)
        .epochs(cfg.epochs)
        .batch_size(cfg.batch_size)
        .seed(cfg.seed)
        .build()
        .expect("consistent experiment");
    let report = exp.run().expect("pipeline runs");

    assert_eq!(report.final_loss, legacy.final_loss, "final loss must be bit-identical");
    assert_eq!(report.mean_psnr_db, legacy.mean_psnr_db, "PSNR must be bit-identical");
    assert_eq!(report.sim_time_s, legacy.sim_time_s, "simulated clock must be bit-identical");
    assert_eq!(
        report.data_plane.expect("pipeline measures the data plane"),
        legacy.data_plane,
        "data-plane report must be bit-identical"
    );
    assert_eq!(report.rounds.len(), legacy.history.rounds.len());
    for (i, (new, old)) in report.rounds.iter().zip(&legacy.history.rounds).enumerate() {
        assert_eq!(new, old, "round {i} diverged between pipeline and legacy driver");
    }
}

/// `EncoderCheckpoint` save/load and `CheckpointStore` push/latest
/// round-trip through a temp dir, fed by the pipeline's `.checkpoints(..)`
/// hook.
#[test]
fn pipeline_checkpoints_roundtrip_through_disk() {
    let dataset = mnist_like::generate(24, 3);
    let cfg = small_cfg();
    let dir = tmpdir("store");
    let mut exp = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(AsymmetricAutoencoder::new(&cfg).expect("valid config"))
        .epochs(2)
        .batch_size(8)
        .checkpoints(&dir, 2)
        .build()
        .expect("consistent experiment");
    let report = exp.run().expect("pipeline runs");
    assert_eq!(report.checkpoints_saved, 1, "initial training pushes one checkpoint");

    // The stored snapshot round-trips bit-exactly and matches the live
    // codec's distributable parameters.
    let store = exp.checkpoint_store().expect("store configured");
    assert_eq!(store.len(), 1);
    let loaded = store.latest().expect("loads").expect("non-empty");
    let live = exp.codec().checkpoint().expect("AE has an encoder checkpoint");
    assert_eq!(loaded, live);
    assert_eq!(loaded.label, "OrcoDCS");

    // Restoring the loaded checkpoint into a fresh model reproduces the
    // trained encoder exactly.
    let mut fresh = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    loaded.restore(&mut fresh).expect("shapes match");
    assert_eq!(fresh.encoder_weight(), &live.weight);

    // Direct save/load round-trip of the captured checkpoint.
    let solo_dir = tmpdir("solo");
    live.save(&solo_dir).expect("saves");
    let reloaded = EncoderCheckpoint::load(&solo_dir).expect("loads");
    assert_eq!(reloaded, live);
    std::fs::remove_dir_all(&solo_dir).ok();

    // Store eviction: pushing past capacity keeps only the newest.
    let mut store = CheckpointStore::new(tmpdir("evict"), 2);
    for i in 0..3 {
        let mut ckpt = live.clone();
        ckpt.label = format!("v{i}");
        store.push(&ckpt).expect("pushes");
    }
    assert_eq!(store.len(), 2);
    assert_eq!(store.latest().unwrap().unwrap().label, "v2");
    std::fs::remove_dir_all(&dir).ok();
}

/// The retrain trigger fires under injected drift when fresh batches flow
/// through the pipeline's `.monitor(..)` hook, and adaptation recovers the
/// reconstruction error.
#[test]
fn monitor_hook_triggers_retraining_under_drift() {
    let dataset = mnist_like::generate(32, 5);
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_batch_size(16)
        .with_learning_rate(0.1)
        .with_seed(2);
    let dir = tmpdir("monitor");
    let mut exp = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec(AsymmetricAutoencoder::new(&cfg).expect("valid config"))
        .epochs(2)
        .batch_size(16)
        .seed(2)
        .monitor(FineTuneMonitor::new(0.012, 4))
        .checkpoints(&dir, 3)
        .build()
        .expect("consistent experiment");
    let _report = exp.run().expect("pipeline runs");

    // In-distribution batches: error should settle under control.
    for _ in 0..4 {
        let _ = exp.observe(dataset.x()).expect("observe runs");
    }
    let before = exp.retrain_count();
    let ckpts_before = exp.checkpoint_store().expect("store").len();

    // Severe bias drift: the windowed error must breach the threshold.
    let mut rng = OrcoRng::from_label("pipeline-drift", 0);
    let drifted = drift::apply(&dataset, drift::Drift::Bias, 0.9, &mut rng);
    let mut first_error = None;
    let mut recovered = None;
    for _ in 0..6 {
        let outcome = exp.observe(drifted.x()).expect("observe runs");
        if first_error.is_none() {
            first_error = Some(outcome.reconstruction_error);
        }
        if let Some(history) = outcome.retraining {
            assert!(!history.rounds.is_empty(), "retraining ran rounds");
            recovered = Some(exp.observe(drifted.x()).expect("observe runs").reconstruction_error);
            break;
        }
    }
    let first = first_error.expect("at least one drifted batch observed");
    let recovered = recovered.expect("drift must trigger the fine-tuning monitor");
    assert!(exp.retrain_count() > before, "drift must add a retrain");
    assert!(
        recovered < first,
        "retraining should reduce the drifted error: {first} -> {recovered}"
    );
    // Each retrain also checkpoints the adapted encoder (store capacity 3
    // caps the count).
    let kept = exp.checkpoint_store().expect("store").len();
    assert!(kept > ckpts_before.min(2), "retrain must add a checkpoint: {ckpts_before} -> {kept}");
    std::fs::remove_dir_all(&dir).ok();
}

/// All four backends — OrcoDCS autoencoder, DCSNet, DCT+ISTA, DCT+OMP —
/// run through the single object-safe `Codec` interface and the same
/// builder chain.
#[test]
fn all_four_backends_run_through_one_builder_chain() {
    let kind = DatasetKind::MnistLike;
    let dataset = mnist_like::generate(16, 9);
    let orco_cfg = OrcoConfig::for_dataset(kind).with_latent_dim(32).with_batch_size(8);
    let backends: Vec<Box<dyn Codec>> = vec![
        Box::new(AsymmetricAutoencoder::new(&orco_cfg).expect("valid config")),
        Box::new(Dcsnet::new(kind, 0)),
        Box::new(ClassicalCodec::new(
            kind,
            64,
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 80, tol: 1e-4 }),
            0,
        )),
        Box::new(ClassicalCodec::new(kind, 64, CsSolver::Omp { sparsity: 16 }, 0)),
    ];

    let mut seen = Vec::new();
    for codec in backends {
        let name = codec.name();
        let bytes = codec.bytes_per_frame();
        let mut exp = ExperimentBuilder::new()
            .dataset(&dataset)
            .codec_boxed(codec)
            .training(TrainingMode::Local)
            .epochs(1)
            .batch_size(8)
            .probe(4)
            .build()
            .expect("consistent experiment");
        let report = exp.run().expect("pipeline runs");
        assert_eq!(report.codec, name);
        assert_eq!(report.mode, TrainingMode::Local);
        assert!(report.final_loss.is_finite(), "{name}: finite loss");
        assert!(report.mean_psnr_db.is_finite(), "{name}: finite PSNR");
        assert!(bytes > 0 && bytes % 4 == 0, "{name}: sane code size");
        seen.push(name);
    }
    assert_eq!(seen, ["OrcoDCS", "DCSNet", "DCT+ISTA", "DCT+OMP"]);
}

/// Orchestrated pipeline runs are deterministic: the same builder chain at
/// the same seed reproduces every metric bit-for-bit.
#[test]
fn pipeline_runs_are_deterministic() {
    let dataset = mnist_like::generate(24, 13);
    let cfg = small_cfg();
    let run = || {
        let mut exp = ExperimentBuilder::new()
            .dataset(&dataset)
            .codec(AsymmetricAutoencoder::new(&cfg).expect("valid config"))
            .epochs(2)
            .batch_size(16)
            .seed(7)
            .build()
            .expect("consistent experiment");
        exp.run().expect("pipeline runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_loss, b.final_loss);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.probe, b.probe);
    assert_eq!(a.data_plane, b.data_plane);
}
