//! Property-based integration tests over the OrcoDCS protocol and its
//! substrates, using proptest across crate boundaries.

use orcodcs_repro::core::{EncoderColumns, OrcoConfig};
use orcodcs_repro::datasets::DatasetKind;
use orcodcs_repro::nn::Loss;
use orcodcs_repro::tensor::{Matrix, OrcoRng};
use orcodcs_repro::wsn::{AggregationTree, ChainSchedule, NodeId, Point, RadioModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paper's vector Huber (eq. 4) is sandwiched between scaled L1 and
    /// L2 losses and is non-negative, zero iff the reconstruction is exact.
    #[test]
    fn vector_huber_bounds(
        vals in prop::collection::vec(-1.0f32..1.0, 8),
        delta in 0.1f32..5.0,
    ) {
        let pred = Matrix::row_vector(&vals);
        let target = Matrix::zeros(1, vals.len());
        let vh = Loss::VectorHuber { delta }.value(&pred, &target);
        prop_assert!(vh >= 0.0);
        // Linear branch never exceeds δ·L1/(n·cols); quadratic never exceeds ½L2².
        let l1: f32 = vals.iter().map(|v| v.abs()).sum();
        let l2sq: f32 = vals.iter().map(|v| v * v).sum();
        let n = vals.len() as f32;
        let upper = (0.5 * l2sq / n).max(delta * l1 / n);
        prop_assert!(vh <= upper + 1e-5, "vh={vh} upper={upper}");
        if l1 == 0.0 {
            prop_assert_eq!(vh, 0.0);
        }
    }

    /// Splitting an encoder into device columns and reassembling is the
    /// identity for any encoder shape.
    #[test]
    fn encoder_split_reassemble_roundtrip(m in 1usize..12, n in 1usize..24, seed in 0u64..500) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let w = Matrix::from_fn(m, n, |_, _| rng.uniform(-2.0, 2.0));
        let b = Matrix::from_fn(1, m, |_, _| rng.uniform(-1.0, 1.0));
        let cols = EncoderColumns::split(&w, &b);
        let (w2, b2) = cols.reassemble();
        prop_assert_eq!(w, w2);
        prop_assert_eq!(b, b2);
    }

    /// Chain-order invariance: any permutation of devices produces the same
    /// latent vector (within f32 tolerance).
    #[test]
    fn chain_order_invariance(n in 2usize..20, seed in 0u64..500) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let m = 4usize;
        let w = Matrix::from_fn(m, n, |_, _| rng.uniform(-1.0, 1.0));
        let b = Matrix::from_fn(1, m, |_, _| rng.uniform(-0.5, 0.5));
        let cols = EncoderColumns::split(&w, &b);
        let readings: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let forward: Vec<usize> = (0..n).collect();
        let mut shuffled = forward.clone();
        rng.shuffle(&mut shuffled);
        let a = cols.finish_at_aggregator(&cols.chain_partial_sum(&readings, &forward).unwrap());
        let c = cols.finish_at_aggregator(&cols.chain_partial_sum(&readings, &shuffled).unwrap());
        for (x, y) in a.iter().zip(&c) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// §III-C end-to-end invariant: distributing the encoder column-wise to
    /// the devices and aggregating partial sums along a chain reconstructs
    /// exactly the latent vector the centralized encoder σ(Wx + b) computes,
    /// for any encoder shape, any weights, and any chain order.
    #[test]
    fn distributed_chain_encode_equals_centralized(
        m in 1usize..16,
        n in 1usize..48,
        seed in 0u64..2000,
    ) {
        use orcodcs_repro::nn::Activation;

        let mut rng = OrcoRng::from_seed_u64(seed);
        let w = Matrix::from_fn(m, n, |_, _| rng.uniform(-2.0, 2.0));
        let b = Matrix::from_fn(1, m, |_, _| rng.uniform(-1.0, 1.0));
        let readings: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();

        // Centralized: the aggregator owning the whole encoder.
        let central: Vec<f32> = w
            .matvec(&readings)
            .iter()
            .zip(b.row(0))
            .map(|(s, bias)| Activation::Sigmoid.apply(s + bias))
            .collect();

        // Distributed: one column per device, summed along a random chain.
        let cols = EncoderColumns::split(&w, &b);
        prop_assert_eq!(cols.num_devices(), n);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let partial = cols.chain_partial_sum(&readings, &order).expect("valid order");
        let latent = cols.finish_at_aggregator(&partial);

        prop_assert_eq!(latent.len(), central.len());
        for (i, (d, c)) in latent.iter().zip(&central).enumerate() {
            prop_assert!(
                (d - c).abs() < 1e-4,
                "element {}: distributed {} vs centralized {} (m={}, n={})", i, d, c, m, n
            );
        }
    }

    /// Aggregation trees span all nodes, stay acyclic, and survive the
    /// removal of any non-root node.
    #[test]
    fn tree_invariants_under_failure(n in 3usize..30, kill in 1usize..29, seed in 0u64..500) {
        prop_assume!(kill < n);
        let mut rng = OrcoRng::from_seed_u64(seed);
        let nodes: Vec<(NodeId, Point)> = (0..n)
            .map(|i| (NodeId(i), Point::new(rng.uniform(0.0, 100.0) as f64, rng.uniform(0.0, 100.0) as f64)))
            .collect();
        let mut tree = AggregationTree::build(NodeId(0), &nodes).unwrap();
        prop_assert!(tree.check_invariants());
        prop_assert_eq!(tree.len(), n);
        tree.remove_and_reparent(NodeId(kill)).unwrap();
        prop_assert!(tree.check_invariants());
        prop_assert_eq!(tree.len(), n - 1);
        // Every survivor still reaches the root.
        for i in 1..n {
            if i != kill {
                let _ = tree.hops_to_root(NodeId(i));
            }
        }
    }

    /// The chain visits every device exactly once regardless of layout.
    #[test]
    fn chain_is_a_permutation(n in 1usize..40, seed in 0u64..500) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let devices: Vec<(NodeId, Point)> = (0..n)
            .map(|i| (NodeId(i), Point::new(rng.uniform(0.0, 50.0) as f64, rng.uniform(0.0, 50.0) as f64)))
            .collect();
        let chain = ChainSchedule::greedy_nearest(&devices, Point::new(25.0, 25.0));
        let mut ids: Vec<usize> = chain.order().iter().map(|d| d.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }

    /// Radio energy is monotone in both payload size and distance.
    #[test]
    fn radio_energy_monotonicity(
        bytes_a in 1u64..10_000,
        bytes_b in 1u64..10_000,
        d_a in 0.0f64..200.0,
        d_b in 0.0f64..200.0,
    ) {
        let radio = RadioModel::default();
        if bytes_a <= bytes_b {
            prop_assert!(radio.tx_energy_j(bytes_a, d_a) <= radio.tx_energy_j(bytes_b, d_a));
            prop_assert!(radio.rx_energy_j(bytes_a) <= radio.rx_energy_j(bytes_b));
        }
        if d_a <= d_b {
            prop_assert!(radio.tx_energy_j(bytes_a, d_a) <= radio.tx_energy_j(bytes_a, d_b));
        }
    }

    /// Config byte helpers are consistent with dimensions for any latent.
    #[test]
    fn config_byte_arithmetic(m in 1usize..2000) {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(m);
        prop_assert_eq!(cfg.latent_bytes(), (m * 4) as u64);
        prop_assert_eq!(cfg.sample_bytes(), 784 * 4);
        prop_assert!((cfg.compression_ratio() - 784.0 / m as f32).abs() < 1e-3);
    }
}
