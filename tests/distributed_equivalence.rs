//! Equivalence invariants of the distributed protocol: running OrcoDCS
//! over the simulated network must compute exactly the same mathematics as
//! running it on one machine, and in-network (chain) encoding must equal
//! centralized encoding.

use orcodcs_repro::core::{AsymmetricAutoencoder, EncoderColumns, Orchestrator, OrcoConfig};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::nn::Activation;
use orcodcs_repro::wsn::NetworkConfig;

fn cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(24)
        .with_epochs(1)
        .with_batch_size(16)
}

#[test]
fn orchestrated_training_is_bit_identical_to_local() {
    let dataset = mnist_like::generate(16, 0);
    let config = cfg();
    let mut orch = Orchestrator::new(
        config.clone(),
        NetworkConfig { num_devices: 8, seed: 0, ..Default::default() },
    )
    .expect("valid config");
    let mut local = AsymmetricAutoencoder::new(&config).expect("valid config");
    let loss = config.loss();

    for round in 0..5 {
        let (orch_loss, _) = orch.train_round(dataset.x()).expect("round runs");
        let local_loss = local.train_batch_local(dataset.x(), &loss);
        assert_eq!(orch_loss, local_loss, "round {round} losses diverged");
    }
    assert_eq!(orch.model().encoder_weight(), local.encoder_weight(), "encoder weights diverged");
    assert_eq!(orch.model().encoder_bias(), local.encoder_bias());
}

#[test]
fn chain_encoding_matches_centralized_for_trained_encoder() {
    // Train a little so the encoder is non-trivial, then compare the
    // distributed per-device column computation against σ(Wx + b).
    let dataset = mnist_like::generate(24, 1);
    let config = cfg();
    let mut ae = AsymmetricAutoencoder::new(&config).expect("valid config");
    let loss = config.loss();
    for _ in 0..10 {
        let _ = ae.train_batch_local(dataset.x(), &loss);
    }

    let columns = EncoderColumns::split(ae.encoder_weight(), ae.encoder_bias());
    assert_eq!(columns.num_devices(), 784);

    for i in 0..4 {
        let readings = dataset.sample(i);
        // Three different chain orders must all match the centralized map.
        let forward: Vec<usize> = (0..784).collect();
        let reverse: Vec<usize> = (0..784).rev().collect();
        let strided: Vec<usize> = (0..784).map(|k| (k * 97) % 784).collect();
        let central: Vec<f32> = ae
            .encoder_weight()
            .matvec(readings)
            .iter()
            .zip(ae.encoder_bias().row(0))
            .map(|(s, b)| Activation::Sigmoid.apply(s + b))
            .collect();
        for order in [&forward, &reverse, &strided] {
            let partial = columns.chain_partial_sum(readings, order).expect("valid order");
            let latent = columns.finish_at_aggregator(&partial);
            for (j, (d, c)) in latent.iter().zip(&central).enumerate() {
                assert!(
                    (d - c).abs() < 1e-4,
                    "sample {i} element {j}: distributed {d} vs centralized {c}"
                );
            }
        }
    }
}

#[test]
fn reassembled_encoder_reproduces_the_original_model() {
    let config = cfg();
    let mut ae = AsymmetricAutoencoder::new(&config).expect("valid config");
    let dataset = mnist_like::generate(8, 2);
    let loss = config.loss();
    let _ = ae.train_batch_local(dataset.x(), &loss);

    let columns = EncoderColumns::split(ae.encoder_weight(), ae.encoder_bias());
    let (w, b) = columns.reassemble();

    // Load the reassembled parts into a fresh autoencoder: encodings match.
    let mut fresh = AsymmetricAutoencoder::new(&config).expect("valid config");
    fresh.set_encoder_parts(w, b);
    let original = ae.encode(dataset.x());
    let roundtripped = fresh.encode(dataset.x());
    assert_eq!(original, roundtripped);
}

#[test]
fn distribution_broadcast_reaches_every_device_with_column_bytes() {
    let dataset = mnist_like::generate(8, 3);
    let config = cfg();
    let mut orch =
        Orchestrator::new(config, NetworkConfig { num_devices: 12, seed: 3, ..Default::default() })
            .expect("valid config");
    let _ = orch.train_round(dataset.x()).expect("round");
    orch.network_mut().reset_accounting();
    let (columns, t) = orch.distribute_encoder().expect("broadcast");
    assert!(t > 0.0);
    let expected = columns.column_bytes();
    for d in orch.network().devices().to_vec() {
        let rx = orch.network().accounting().node(d).rx_bytes;
        assert!(rx >= expected, "device {d} received {rx} < column {expected}");
    }
}
