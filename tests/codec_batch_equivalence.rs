//! The batched data plane's bit-identity contract, pinned at the
//! workspace level:
//!
//! * for **all three backends** (OrcoDCS autoencoder, DCSNet, classical
//!   DCT+ISTA/OMP), `encode_batch`/`decode_batch` output is bit-identical
//!   to the per-frame `encode_frame`/`decode_frame` loop across random
//!   shapes, batch sizes, and seeds (property tests);
//! * `Experiment::run()` reports are unchanged by the batched path — a
//!   codec stripped down to the per-frame compatibility layer (batch
//!   defaults) produces a bit-equal `Report` to the natively batched one
//!   (regression).

use orcodcs_repro::baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orcodcs_repro::baselines::Dcsnet;
use orcodcs_repro::core::{
    AsymmetricAutoencoder, Codec, ExperimentBuilder, OrcoConfig, OrcoError, SplitModel, TrainSpec,
    TrainingHistory, TrainingMode,
};
use orcodcs_repro::datasets::{mnist_like, DatasetKind};
use orcodcs_repro::tensor::Matrix;
use proptest::prelude::*;

/// Encodes + decodes `frames` through the batch API (into dirty reused
/// buffers) and through the per-frame loop, asserting bitwise equality of
/// both stages.
fn assert_batch_matches_per_frame(codec: &mut dyn Codec, frames: &Matrix) {
    let mut codes = Matrix::filled(1, 1, f32::NAN);
    codec.encode_batch(frames.as_view(), &mut codes).expect("frames fit the codec");
    assert_eq!(codes.shape(), (frames.rows(), codec.code_len()));
    for r in 0..frames.rows() {
        let code = codec.encode_frame(frames.row(r)).expect("frame width is valid");
        assert_eq!(codes.row(r), &code[..], "{}: encode row {r} diverged", codec.name());
    }
    let mut recon = Matrix::filled(2, 2, -9.0);
    codec.decode_batch(codes.as_view(), &mut recon).expect("codes fit the codec");
    assert_eq!(recon.shape(), (frames.rows(), codec.input_dim()));
    for r in 0..frames.rows() {
        let frame = codec.decode_frame(codes.row(r)).expect("code width is valid");
        assert_eq!(recon.row(r), &frame[..], "{}: decode row {r} diverged", codec.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// OrcoDCS autoencoder: random latent dims, batch sizes, seeds, and
    /// a little training in between (the batch path must track the live
    /// weights, not a stale cache).
    #[test]
    fn autoencoder_batch_bit_identical(
        latent in 4usize..32,
        batch in 1usize..12,
        seed in 0u64..500,
        train_steps in 0usize..3,
    ) {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(latent)
            .with_seed(seed);
        let mut codec = AsymmetricAutoencoder::new(&cfg).unwrap();
        let ds = mnist_like::generate(batch, seed);
        if train_steps > 0 {
            let spec = TrainSpec { epochs: train_steps, batch_size: 8, seed, data_fraction: 1.0 };
            codec.train(ds.x(), &spec).unwrap();
        }
        assert_batch_matches_per_frame(&mut codec, ds.x());
    }

    /// DCSNet: fixed 1024-dim latent, conv decoder.
    #[test]
    fn dcsnet_batch_bit_identical(batch in 1usize..4, seed in 0u64..500) {
        let mut codec = Dcsnet::new(DatasetKind::MnistLike, seed);
        let ds = mnist_like::generate(batch, seed);
        assert_batch_matches_per_frame(&mut codec, ds.x());
    }

    /// Classical CS, both solvers: the batched encode GEMM against the
    /// cached Φᵀ and the workspace-reusing solves must reproduce the
    /// per-frame loop exactly.
    #[test]
    fn classical_batch_bit_identical(
        m in 8usize..48,
        batch in 1usize..5,
        seed in 0u64..500,
        use_omp in any::<bool>(),
    ) {
        let solver = if use_omp {
            CsSolver::Omp { sparsity: (m / 4).max(2) }
        } else {
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 40, tol: 1e-5 })
        };
        let mut codec = ClassicalCodec::new(DatasetKind::MnistLike, m, solver, seed);
        let ds = mnist_like::generate(batch, seed);
        assert_batch_matches_per_frame(&mut codec, ds.x());
    }
}

/// A codec that forwards only the per-frame compatibility layer (plus the
/// training hooks), so every batch entry point runs its default
/// per-frame-loop body.
#[derive(Debug)]
struct PerFrameOnly(AsymmetricAutoencoder);

impl Codec for PerFrameOnly {
    fn name(&self) -> &'static str {
        Codec::name(&self.0)
    }
    fn input_dim(&self) -> usize {
        Codec::input_dim(&self.0)
    }
    fn bytes_per_frame(&self) -> u64 {
        Codec::bytes_per_frame(&self.0)
    }
    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        self.0.train(x, spec)
    }
    fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError> {
        self.0.encode_frame(frame)
    }
    fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError> {
        self.0.decode_frame(code)
    }
    fn loss(&self) -> orcodcs_repro::nn::Loss {
        Codec::loss(&self.0)
    }
    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        self.0.split_model()
    }
    fn checkpoint(&self) -> Option<orcodcs_repro::core::EncoderCheckpoint> {
        Codec::checkpoint(&self.0)
    }
}

fn small_cfg() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_epochs(2)
        .with_batch_size(8)
}

/// Regression: the full pipeline — probes, final loss/PSNR, and the
/// data-plane measurement that now batch-encodes real frames — reports
/// **bit-equal** results whether the codec runs its native batched paths
/// or the per-frame default bodies.
#[test]
fn experiment_reports_unchanged_by_batched_path() {
    for mode in [TrainingMode::Orchestrated, TrainingMode::Local] {
        let dataset = mnist_like::generate(24, 9);
        let run = |codec: Box<dyn Codec>| {
            let mut exp = ExperimentBuilder::new()
                .dataset(&dataset)
                .codec_boxed(codec)
                .training(mode)
                .epochs(2)
                .batch_size(8)
                .seed(9)
                .build()
                .expect("consistent experiment");
            exp.run().expect("pipeline runs")
        };
        let native = run(Box::new(AsymmetricAutoencoder::new(&small_cfg()).unwrap()));
        let per_frame =
            run(Box::new(PerFrameOnly(AsymmetricAutoencoder::new(&small_cfg()).unwrap())));
        assert_eq!(
            native, per_frame,
            "{mode:?} report diverged between batched and per-frame paths"
        );
    }
}
