//! Determinism regression tests for the parallel hot paths: the same
//! `OrcoConfig` + seed must produce bit-identical results whether the
//! GEMM kernels and the multi-cluster coordinator run on 1 thread or many.
//!
//! Everything lives in one `#[test]` because the thread budget
//! (`orco_tensor::parallel::set_threads`) is process-global state.

use orcodcs_repro::core::multi_cluster::{EdgeSchedule, MultiClusterCoordinator};
use orcodcs_repro::core::{AsymmetricAutoencoder, ExperimentBuilder, OrcoConfig, Report};
use orcodcs_repro::datasets::{mnist_like, Dataset, DatasetKind};
use orcodcs_repro::tensor::{parallel, Matrix, OrcoRng};
use orcodcs_repro::wsn::NetworkConfig;

fn random_matrix(rows: usize, cols: usize, rng: &mut OrcoRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    // --- GEMM kernels: 1 thread vs several, including ragged shapes that
    // exercise uneven row blocks and partial tiles.
    let mut rng = OrcoRng::from_label("thread-det", 0);
    let shapes = [(1usize, 1usize, 1usize), (7, 5, 3), (33, 17, 9), (128, 96, 64), (257, 130, 67)];
    for &(m, k, n) in &shapes {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let at = random_matrix(k, m, &mut rng);
        let bt = random_matrix(n, k, &mut rng);

        parallel::set_threads(1);
        let mm1 = a.matmul(&b);
        let tm1 = at.t_matmul(&b);
        let mt1 = a.matmul_t(&bt);
        for threads in [2, 4, 8] {
            parallel::set_threads(threads);
            assert_eq!(mm1, a.matmul(&b), "matmul {m}x{k}x{n} diverged at {threads} threads");
            assert_eq!(tm1, at.t_matmul(&b), "t_matmul {m}x{k}x{n} diverged at {threads} threads");
            assert_eq!(mt1, a.matmul_t(&bt), "matmul_t {m}x{k}x{n} diverged at {threads} threads");
        }
        parallel::set_threads(0);
    }

    // --- Full training pipeline: same config + seed ⇒ identical
    // TrainingHistory at 1 vs N threads.
    let dataset = mnist_like::generate(24, 7);
    let config = OrcoConfig::for_dataset(DatasetKind::MnistLike)
        .with_latent_dim(24)
        .with_epochs(2)
        .with_batch_size(8);

    let run_pipeline = |dataset: &Dataset, config: &OrcoConfig| -> Report {
        let codec = AsymmetricAutoencoder::new(config).expect("valid config");
        ExperimentBuilder::new()
            .dataset(dataset)
            .codec(codec)
            .epochs(config.epochs)
            .batch_size(config.batch_size)
            .seed(config.seed)
            .build()
            .expect("consistent experiment")
            .run()
            .expect("pipeline runs")
    };
    parallel::set_threads(1);
    let serial = run_pipeline(&dataset, &config);
    parallel::set_threads(4);
    let threaded = run_pipeline(&dataset, &config);
    parallel::set_threads(0);

    assert_eq!(serial.final_loss, threaded.final_loss);
    assert_eq!(serial.sim_time_s, threaded.sim_time_s);
    assert_eq!(serial.data_plane.unwrap().total_bytes, threaded.data_plane.unwrap().total_bytes);
    assert_eq!(serial.rounds.len(), threaded.rounds.len());
    for (i, (a, b)) in serial.rounds.iter().zip(&threaded.rounds).enumerate() {
        assert_eq!(a, b, "round {i} diverged between 1 and 4 threads");
    }

    // --- Multi-cluster coordinator: concurrent per-cluster rounds must
    // reproduce the serial schedule exactly (losses, waits, makespan).
    let run_coordinator = || {
        let configs: Vec<OrcoConfig> = (0..3)
            .map(|_| {
                OrcoConfig::for_dataset(DatasetKind::MnistLike)
                    .with_latent_dim(16)
                    .with_epochs(1)
                    .with_batch_size(8)
            })
            .collect();
        let datasets: Vec<Dataset> = (0..3).map(|i| mnist_like::generate(8, i as u64)).collect();
        let net = NetworkConfig { num_devices: 8, seed: 0, ..Default::default() };
        let mut coord = MultiClusterCoordinator::new(&configs, &net, EdgeSchedule::LossPriority)
            .expect("valid configs");
        coord.train(&datasets, 4).expect("multi-cluster run")
    };

    parallel::set_threads(1);
    let serial_mc = run_coordinator();
    parallel::set_threads(4);
    let threaded_mc = run_coordinator();
    parallel::set_threads(0);

    assert_eq!(serial_mc.makespan_s, threaded_mc.makespan_s);
    assert_eq!(serial_mc.edge_busy_s, threaded_mc.edge_busy_s);
    for (a, b) in serial_mc.reports.iter().zip(&threaded_mc.reports) {
        assert_eq!(a.final_loss, b.final_loss, "cluster {} loss diverged", a.cluster);
        assert_eq!(a.sim_time_s, b.sim_time_s, "cluster {} clock diverged", a.cluster);
        assert_eq!(a.edge_wait_s, b.edge_wait_s, "cluster {} wait diverged", a.cluster);
        assert_eq!(a.rounds, b.rounds);
    }
}
