//! Every rule fires on its bad fixture and stays silent on the fixed
//! twin. Fixtures live in `tests/fixtures/`, a directory the workspace
//! walker deliberately skips, so the real lint run never sees them —
//! they exist purely to pin each rule's firing behavior end to end
//! (lexer → source model → rule → engine → report).

use orco_lint::config::Config;
use orco_lint::engine::{Engine, Report};
use orco_lint::rules::known_rule_names;
use orco_lint::source::SourceFile;

/// Runs the full engine (all rules) over in-memory files under `config`.
fn run(files: &[(&str, &str)], config: &str) -> Report {
    let names = known_rule_names();
    let config = Config::parse(config, &names).expect("fixture config parses");
    let files: Vec<SourceFile> =
        files.iter().map(|(rel, src)| SourceFile::parse(rel, src, &names)).collect();
    Engine::new(config).run(&files)
}

fn rules_hit(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.violation.rule).collect()
}

/// Asserts the bad fixture trips `rule` and the ok twin trips nothing.
fn assert_twin(rule: &str, rel: &str, bad: &str, ok: &str, config: &str) {
    let bad = run(&[(rel, bad)], config);
    assert!(
        rules_hit(&bad).contains(&rule),
        "`{rule}` should fire on its bad fixture; findings: {:?}",
        bad.findings
    );
    let ok = run(&[(rel, ok)], config);
    assert!(
        ok.findings.is_empty(),
        "the fixed twin for `{rule}` should be clean; findings: {:?}",
        ok.findings
    );
}

#[test]
fn wall_clock_twin() {
    assert_twin(
        "wall-clock",
        "crates/serve/src/latency.rs",
        include_str!("fixtures/wall_clock_bad.rs"),
        include_str!("fixtures/wall_clock_ok.rs"),
        "",
    );
}

#[test]
fn wall_clock_is_silent_in_bin_targets() {
    // Binaries and benches talk to the real world; the rule's built-in
    // skip must keep them out of scope without any config.
    let report =
        run(&[("crates/fleet/src/bin/loadgen.rs", include_str!("fixtures/wall_clock_bad.rs"))], "");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unordered_map_twin() {
    assert_twin(
        "unordered-map",
        "crates/wsn/src/accounting.rs",
        include_str!("fixtures/unordered_map_bad.rs"),
        include_str!("fixtures/unordered_map_ok.rs"),
        "[unordered-map]\nscope = [\"crates/wsn/\"]\n",
    );
}

#[test]
fn unordered_map_is_silent_outside_scope() {
    // The same hash map in a crate that never feeds accounting or wire
    // output is fine — determinism scope is a config decision.
    let report = run(
        &[("crates/datasets/src/cache.rs", include_str!("fixtures/unordered_map_bad.rs"))],
        "[unordered-map]\nscope = [\"crates/wsn/\"]\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn wire_exhaustive_twin() {
    // The rule reads the protocol and round-trip files by their
    // workspace-relative paths, so the fixtures are parsed under those
    // names; the round-trip fixture covers everything either protocol
    // twin defines.
    let roundtrip = include_str!("fixtures/wire_roundtrip.rs");
    let bad = run(
        &[
            ("crates/serve/src/protocol.rs", include_str!("fixtures/wire_protocol_bad.rs")),
            ("crates/serve/tests/protocol_roundtrip.rs", roundtrip),
        ],
        "",
    );
    assert!(rules_hit(&bad).contains(&"wire-exhaustive"), "{:?}", bad.findings);
    let pong = bad.findings.iter().find(|f| f.violation.msg.contains("Pong"));
    assert!(pong.is_some(), "the half-wired `Pong` type should be named: {:?}", bad.findings);

    let ok = run(
        &[
            ("crates/serve/src/protocol.rs", include_str!("fixtures/wire_protocol_ok.rs")),
            ("crates/serve/tests/protocol_roundtrip.rs", roundtrip),
        ],
        "",
    );
    assert!(ok.findings.is_empty(), "{:?}", ok.findings);
}

#[test]
fn panic_free_decode_twin() {
    assert_twin(
        "panic-free-decode",
        "crates/serve/src/frame_decode.rs",
        include_str!("fixtures/panic_free_bad.rs"),
        include_str!("fixtures/panic_free_ok.rs"),
        "",
    );
}

#[test]
fn no_alloc_twin() {
    assert_twin(
        "no-alloc",
        "crates/nn/src/dense.rs",
        include_str!("fixtures/no_alloc_bad.rs"),
        include_str!("fixtures/no_alloc_ok.rs"),
        "",
    );
}

#[test]
fn atomics_justified_twin() {
    assert_twin(
        "atomics-justified",
        "crates/obs/src/metrics.rs",
        include_str!("fixtures/atomics_bad.rs"),
        include_str!("fixtures/atomics_ok.rs"),
        "",
    );
}

#[test]
fn waiver_with_reason_silences_a_bad_fixture() {
    // The waiver workflow end to end: the same violation that fires
    // above goes quiet under a reasoned allow directive, and the waiver
    // itself is counted as used.
    let src = "// orco-lint: allow(wall-clock, reason = \"fixture exercises the waiver path\")\n\
               let t = Instant::now();\n";
    let report = run(&[("crates/serve/src/latency.rs", src)], "");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.unused_waivers.is_empty(), "{:?}", report.unused_waivers);
}

#[test]
fn require_region_makes_marker_deletion_a_violation() {
    // Deleting the region markers from a pinned file must not silently
    // drop coverage: the config demands the marker itself.
    let stripped: String = include_str!("fixtures/panic_free_bad.rs")
        .lines()
        .filter(|l| !l.contains("orco-lint:"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = run(
        &[("crates/serve/src/frame_decode.rs", &stripped)],
        "[panic-free-decode]\nrequire-region = [\"crates/serve/src/frame_decode.rs\"]\n",
    );
    let hits = rules_hit(&report);
    assert!(hits.contains(&"panic-free-decode"), "{:?}", report.findings);
}
