//! Fixture (fixed twin): the ordering carries its reasoning with it.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // Relaxed: monotonic tally; readers only ever need an eventually
    // exact total, never an ordering relative to other memory.
    counter.fetch_add(1, Ordering::Relaxed);
}
