//! Fixture: a bare memory ordering — deliberate choice or latent data
//! race? Unreviewable without a written justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
