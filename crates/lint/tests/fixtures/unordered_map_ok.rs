//! Fixture (fixed twin): a B-tree map iterates in key order, so the f64
//! accumulation is the same sum in the same order on every run.

use std::collections::BTreeMap;

pub struct Accounting {
    per_kind_tx_bytes: BTreeMap<u8, u64>,
}

impl Accounting {
    pub fn weighted_total(&self, weight: impl Fn(u8) -> f64) -> f64 {
        self.per_kind_tx_bytes.iter().map(|(k, v)| weight(*k) * *v as f64).sum()
    }
}
