//! Fixture (fixed twin): every input either parses or yields a typed
//! error; the copy targets a slice whose length `get` already proved.

// orco-lint: region(wire-decode)
pub fn parse(buf: &[u8]) -> Result<u32, WireError> {
    let head = buf.get(0..4).ok_or(WireError::Truncated { needed: 4, got: buf.len() })?;
    let mut arr = [0u8; 4];
    arr.copy_from_slice(head);
    Ok(u32::from_le_bytes(arr))
}
// orco-lint: endregion
