//! Fixture round-trip test: names every message variant, so coverage
//! complaints come only from the protocol module fixtures.

fn roundtrip_all() {
    let all = [Message::Hello { id: 7 }, Message::Ping, Message::Pong];
    for m in all {
        assert_roundtrip(m);
    }
}
