//! Fixture: a decode path that panics on hostile input — both the
//! implicit way (slicing) and the explicit way (`.expect`).

// orco-lint: region(wire-decode)
pub fn parse(buf: &[u8]) -> u32 {
    let head = &buf[0..4];
    u32::from_le_bytes(head.try_into().expect("4 bytes"))
}
// orco-lint: endregion
