//! Fixture: `msg_type` knows message type 3 (`Pong`), but `payload_cap`
//! has no bound for it and `decode_payload` never decodes it — the
//! "added a message, forgot half the match sites" failure mode.

fn payload_cap(msg_type: u16) -> Result<usize, WireError> {
    Ok(match msg_type {
        1 => 8,
        2 => 0,
        other => return Err(WireError::UnknownType { found: other }),
    })
}

impl Message {
    fn msg_type(&self) -> u16 {
        match self {
            Message::Hello { .. } => 1,
            Message::Ping => 2,
            Message::Pong => 3,
        }
    }
}

fn decode_payload(msg_type: u16, cur: &mut Cursor<'_>) -> Result<Message, WireError> {
    match msg_type {
        1 => Ok(Message::Hello { id: cur.u64()? }),
        2 => Ok(Message::Ping),
        other => Err(WireError::UnknownType { found: other }),
    }
}
