//! Fixture (fixed twin): time flows in through the caller, so the same
//! schedule measures the same latencies on every run.

pub fn elapsed_s(start_s: f64, now_s: f64) -> f64 {
    now_s - start_s
}
