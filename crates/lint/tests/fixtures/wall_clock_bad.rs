//! Fixture: library code reading the OS clock. Replays of the same
//! message schedule would measure different latencies on every run.

use std::time::Instant;

pub fn elapsed_s(start: Instant) -> f64 {
    let now = Instant::now();
    now.duration_since(start).as_secs_f64()
}
