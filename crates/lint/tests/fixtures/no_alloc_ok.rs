//! Fixture (fixed twin): the caller owns the buffer; the hot path only
//! clears and refills it — the `*_into` kernel pattern.

// orco-lint: region(no-alloc)
pub fn encode_batch_into(rows: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.extend(rows.iter().map(|v| v * 0.5));
}
// orco-lint: endregion
