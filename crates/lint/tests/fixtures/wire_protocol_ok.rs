//! Fixture: a complete three-message protocol module. Every type that
//! `msg_type` maps has a `payload_cap` bound and a `decode_payload` arm.

fn payload_cap(msg_type: u16) -> Result<usize, WireError> {
    Ok(match msg_type {
        1 => 8,
        2 | 3 => 0,
        other => return Err(WireError::UnknownType { found: other }),
    })
}

impl Message {
    fn msg_type(&self) -> u16 {
        match self {
            Message::Hello { .. } => 1,
            Message::Ping => 2,
            Message::Pong => 3,
        }
    }
}

fn decode_payload(msg_type: u16, cur: &mut Cursor<'_>) -> Result<Message, WireError> {
    match msg_type {
        1 => Ok(Message::Hello { id: cur.u64()? }),
        2 => Ok(Message::Ping),
        3 => Ok(Message::Pong),
        other => Err(WireError::UnknownType { found: other }),
    }
}
