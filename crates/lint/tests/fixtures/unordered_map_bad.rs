//! Fixture: the PR-2 accounting bug in miniature. Iterating a hash map
//! visits keys in a different order each run, so the f64 accumulation
//! below is nondeterministic (float addition is not associative).

use std::collections::HashMap;

pub struct Accounting {
    per_kind_tx_bytes: HashMap<u8, u64>,
}

impl Accounting {
    pub fn weighted_total(&self, weight: impl Fn(u8) -> f64) -> f64 {
        self.per_kind_tx_bytes.iter().map(|(k, v)| weight(*k) * *v as f64).sum()
    }
}
