//! Fixture: a hot path that allocates a fresh buffer per call.

// orco-lint: region(no-alloc)
pub fn encode_batch(rows: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    out.extend(rows.iter().map(|v| v * 0.5));
    out
}
// orco-lint: endregion
