//! The gate itself, as a test: the workspace must lint clean under its
//! own config, and the linter must still catch the bug class that
//! motivated it — re-introducing PR 2's hash-map accounting bug into
//! today's `accounting.rs` makes the run fail again.

use std::path::PathBuf;

use orco_lint::config::Config;
use orco_lint::engine::Engine;
use orco_lint::rules::known_rule_names;
use orco_lint::source::SourceFile;
use orco_lint::workspace::collect_sources;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

#[test]
fn workspace_has_zero_findings() {
    let report = Engine::run_root(&repo_root()).expect("lint run succeeds");
    let lines: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}: [{}] {}",
                f.violation.rel, f.violation.line, f.violation.rule, f.violation.msg
            )
        })
        .collect();
    assert!(report.findings.is_empty(), "workspace should lint clean:\n{}", lines.join("\n"));
    assert!(
        report.unused_waivers.is_empty(),
        "every waiver should still excuse something: {:?}",
        report.unused_waivers
    );
    assert!(
        report.files_checked > 100,
        "the walker should see the whole workspace, saw {}",
        report.files_checked
    );
}

/// Mutation test: seed the exact bug `unordered-map` exists for — the
/// PR-2 `per_kind_tx_bytes: HashMap` — back into the real accounting
/// module and demand the gate fails.
#[test]
fn reintroducing_the_hashmap_accounting_bug_fails_the_gate() {
    let root = repo_root();
    let names = known_rule_names();
    let config_text =
        std::fs::read_to_string(root.join("orco-lint.toml")).expect("read orco-lint.toml");
    let config = Config::parse(&config_text, &names).expect("repo config parses");

    let mut files = collect_sources(&root, &names).expect("collect workspace sources");
    let accounting = files
        .iter_mut()
        .find(|f| f.rel == "crates/wsn/src/accounting.rs")
        .expect("accounting.rs is part of the workspace");
    let mutated = accounting.text.replace("BTreeMap", "HashMap");
    assert_ne!(mutated, accounting.text, "accounting.rs should use BTreeMap today");
    *accounting = SourceFile::parse("crates/wsn/src/accounting.rs", &mutated, &names);

    let report = Engine::new(config).run(&files);
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            f.violation.rule == "unordered-map" && f.violation.rel.ends_with("accounting.rs")
        })
        .collect();
    assert!(!hits.is_empty(), "the seeded HashMap bug must fail the gate: {:?}", report.findings);
    assert!(report.failed(true), "--deny-all must report failure");
}
