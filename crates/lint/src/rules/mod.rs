//! The rule set. Each rule is a struct implementing [`Rule`]; the
//! engine runs every rule over every file (per-file rules) or over the
//! whole file set at once (workspace rules like wire-exhaustiveness).
//!
//! The catalog — what each rule enforces and why — lives in
//! `crates/lint/RULES.md`; the module docs here cover mechanics only.

use crate::config::RuleCfg;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

mod atomics;
mod no_alloc;
mod panic_free_decode;
mod unordered_map;
mod wall_clock;
mod wire_exhaustive;

pub use atomics::AtomicsJustified;
pub use no_alloc::NoAlloc;
pub use panic_free_decode::PanicFreeDecode;
pub use unordered_map::UnorderedMap;
pub use wall_clock::WallClock;
pub use wire_exhaustive::WireExhaustive;

/// Rule name for malformed directives (reported by the engine itself).
pub const DIRECTIVE_RULE: &str = "lint-directive";

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: &'static str,
    /// `/`-separated path relative to the workspace root.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the defect.
    pub msg: String,
}

/// A lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (waivers and config refer to it).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;

    /// Per-file check. Scope/allow filtering is the rule's own job (via
    /// [`RuleCfg::applies_to`]) so rules with built-in path exemptions
    /// can compose them.
    fn check_file(&self, _file: &SourceFile, _cfg: &RuleCfg, _out: &mut Vec<Violation>) {}

    /// Whole-workspace check, for rules that correlate multiple files.
    fn check_workspace(&self, _files: &[SourceFile], _cfg: &RuleCfg, _out: &mut Vec<Violation>) {}
}

/// Every shipped rule, in reporting order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WallClock),
        Box::new(UnorderedMap),
        Box::new(WireExhaustive),
        Box::new(PanicFreeDecode),
        Box::new(NoAlloc),
        Box::new(AtomicsJustified),
    ]
}

/// The names of every shipped rule plus the engine's directive rule —
/// the set waivers and config sections are validated against.
#[must_use]
pub fn known_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    names.push(DIRECTIVE_RULE);
    names
}

/// Whether `toks[i..]` starts with the identifier/punct sequence `pat`
/// (identifiers matched by text, `::`/`=>`/single chars by punct text).
pub(crate) fn seq_at(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, want)| {
        toks.get(i + k).is_some_and(|t| match t.kind {
            TokKind::Ident | TokKind::Num => t.text == *want,
            TokKind::Punct => t.text == *want,
            _ => false,
        })
    })
}

/// Finds the token range of `fn <name>`'s body (exclusive of its braces).
/// Returns `None` when the function is absent.
pub(crate) fn fn_body(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            // First `{` after the signature opens the body.
            let open = (i + 2..toks.len()).find(|&j| toks[j].is_punct("{"))?;
            let mut depth = 1usize;
            let mut j = open + 1;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                }
                j += 1;
            }
            return Some((open + 1, j.saturating_sub(1)));
        }
        i += 1;
    }
    None
}
