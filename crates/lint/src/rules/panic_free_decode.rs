//! Rule `panic-free-decode`: inside `// orco-lint: region(wire-decode)`
//! markers, nothing may panic.
//!
//! The decode path handles attacker-controlled bytes; the protocol
//! contract says every input either parses or yields a typed
//! [`WireError`]. Inside a `wire-decode` region this rule forbids:
//!
//! * `.unwrap()` / `.expect(..)` — a hidden panic on the error arm;
//! * `panic!` / `unreachable!` / `todo!` — explicit panics;
//! * direct indexing (`buf[i]`, `buf[a..b]`, `x?[0]`) — an implicit
//!   panic on out-of-bounds. Use `get(..)` / `split_at_checked` /
//!   `copy_from_slice` on a length-guaranteed slice instead.
//!
//! The `require-region` config key lists files that must carry at least
//! one `wire-decode` region, so deleting the markers (and with them the
//! rule's coverage) is itself a violation.

use super::{Rule, Violation};
use crate::config::RuleCfg;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Region name this rule inspects.
pub const REGION: &str = "wire-decode";

/// See the module docs.
pub struct PanicFreeDecode;

impl Rule for PanicFreeDecode {
    fn name(&self) -> &'static str {
        "panic-free-decode"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/indexing inside region(wire-decode) markers"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Violation>) {
        if !cfg.applies_to(&file.rel) {
            return;
        }
        let regions: Vec<_> = file.regions_named(REGION).collect();
        if regions.is_empty() {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if !regions.iter().any(|r| r.contains(t.line)) {
                continue;
            }
            let offense = match t.kind {
                TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                    let method_call = i > 0
                        && file.toks[i - 1].is_punct(".")
                        && file.toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                    method_call.then(|| {
                        format!(
                            "`.{}(..)` panics on the error arm; decode must return a typed \
                             `WireError` instead",
                            t.text
                        )
                    })
                }
                TokKind::Ident
                    if matches!(t.text.as_str(), "panic" | "unreachable" | "todo")
                        && file.toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    Some(format!(
                        "`{}!` inside the decode path; malformed input must map to a typed \
                         `WireError`, never a panic",
                        t.text
                    ))
                }
                TokKind::Punct if t.text == "[" => {
                    // `expr[..]` — the `[` directly follows a value:
                    // an identifier (but not a keyword introducing a
                    // pattern or type position), a call, an index, or a
                    // `?`. Array literals/types follow `=`/`:`/`;`/`,`
                    // and never match.
                    let indexing = i > 0
                        && match (file.toks[i - 1].kind, file.toks[i - 1].text.as_str()) {
                            (TokKind::Ident, kw) => !matches!(
                                kw,
                                "let"
                                    | "in"
                                    | "return"
                                    | "match"
                                    | "if"
                                    | "else"
                                    | "mut"
                                    | "ref"
                                    | "move"
                                    | "dyn"
                                    | "as"
                                    | "const"
                                    | "static"
                            ),
                            (TokKind::Punct, p) => matches!(p, ")" | "]" | "?"),
                            _ => false,
                        };
                    indexing.then(|| {
                        "direct indexing panics out-of-bounds on hostile input; use `get(..)` \
                         or a length-guaranteed copy instead"
                            .to_string()
                    })
                }
                _ => None,
            };
            if let Some(msg) = offense {
                out.push(Violation { rule: self.name(), rel: file.rel.clone(), line: t.line, msg });
            }
        }
    }

    fn check_workspace(&self, files: &[SourceFile], cfg: &RuleCfg, out: &mut Vec<Violation>) {
        for required in &cfg.require_region {
            let present = files
                .iter()
                .find(|f| &f.rel == required)
                .is_some_and(|f| f.regions_named(REGION).next().is_some());
            if !present {
                out.push(Violation {
                    rule: self.name(),
                    rel: required.clone(),
                    line: 1,
                    msg: format!(
                        "config requires a `region({REGION})` marker in this file and none is \
                         present; the decode path has lost its panic-free coverage"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    fn check(src: &str) -> Vec<Violation> {
        let names = known_rule_names();
        let f = SourceFile::parse("p.rs", src, &names);
        let mut out = Vec::new();
        PanicFreeDecode.check_file(&f, &RuleCfg::default(), &mut out);
        out
    }

    fn in_region(body: &str) -> String {
        format!("// orco-lint: region(wire-decode)\n{body}\n// orco-lint: endregion\n")
    }

    #[test]
    fn flags_unwrap_expect_panics_and_indexing() {
        let v = check(&in_region(
            "let a = x.unwrap();\nlet b = y.expect(\"two\");\npanic!(\"no\");\nlet c = buf[0];\nlet d = cur.take(1)?[0];",
        ));
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v[0].msg.contains("unwrap"));
        assert!(v[3].msg.contains("indexing"));
    }

    #[test]
    fn silent_outside_region_and_on_safe_constructs() {
        assert!(check("let a = x.unwrap();\nlet b = buf[0];\n").is_empty());
        let v = check(&in_region(
            "#[allow(dead_code)]\nlet h = [0u8; 12];\nlet g = buf.get(0..4);\nlet w = v.split_at_checked(n);",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_as_plain_ident_is_not_a_method_call() {
        // e.g. `Option::unwrap` mentioned in a path without a call.
        assert!(check(&in_region("let f = Result::is_ok;")).is_empty());
    }

    #[test]
    fn require_region_fires_when_markers_are_deleted() {
        let names = known_rule_names();
        let files = vec![SourceFile::parse("crates/serve/src/protocol.rs", "fn f() {}\n", &names)];
        let cfg = RuleCfg {
            require_region: vec!["crates/serve/src/protocol.rs".into()],
            ..RuleCfg::default()
        };
        let mut out = Vec::new();
        PanicFreeDecode.check_workspace(&files, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("region(wire-decode)"));
    }
}
