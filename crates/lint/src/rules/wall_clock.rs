//! Rule `wall-clock`: `Instant::now` / `SystemTime::now` are forbidden
//! outside the blessed wall-clock read (`Clock::real`, allowlisted in
//! config), `bin/` targets, and `benches/`.
//!
//! Everything else must take time from a `Clock` value so the same
//! schedule replays bit-identically under the DES — the whole
//! record/replay plane (chaos tapes, fleet gauntlet, trace exports)
//! rests on no code path consulting the OS clock behind the
//! simulation's back.

use super::{seq_at, Rule, Violation};
use crate::config::RuleCfg;
use crate::source::SourceFile;

/// See the module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn describe(&self) -> &'static str {
        "Instant::now/SystemTime::now forbidden outside Clock::real, bin/, and benches/"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Violation>) {
        // Binaries and benchmarks measure real elapsed time by design.
        if file.rel.contains("/bin/") || file.rel.contains("benches/") {
            return;
        }
        if !cfg.applies_to(&file.rel) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            for api in ["Instant", "SystemTime"] {
                if seq_at(&file.toks, i, &[api, "::", "now"]) {
                    out.push(Violation {
                        rule: self.name(),
                        rel: file.rel.clone(),
                        line: t.line,
                        msg: format!(
                            "`{api}::now` reads the wall clock behind the simulation's back; \
                             take time from `Clock` so DES replay stays bit-identical"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    fn check(rel: &str, src: &str, cfg: &RuleCfg) -> Vec<Violation> {
        let names = known_rule_names();
        let f = SourceFile::parse(rel, src, &names);
        let mut out = Vec::new();
        WallClock.check_file(&f, cfg, &mut out);
        out
    }

    #[test]
    fn fires_on_instant_and_systemtime() {
        let src = "let a = Instant::now();\nlet b = std::time::SystemTime::now();\n";
        let v = check("crates/x/src/lib.rs", src, &RuleCfg::default());
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn silent_in_bins_and_benches_and_allowlist() {
        let src = "let a = Instant::now();\n";
        assert!(check("crates/x/src/bin/tool.rs", src, &RuleCfg::default()).is_empty());
        assert!(check("crates/x/benches/b.rs", src, &RuleCfg::default()).is_empty());
        let cfg = RuleCfg { allow: vec!["crates/x/src/clock.rs".into()], ..RuleCfg::default() };
        assert!(check("crates/x/src/clock.rs", src, &cfg).is_empty());
    }

    #[test]
    fn silent_on_comments_strings_and_unrelated_now() {
        let src = "// Instant::now() would be wrong\nlet s = \"Instant::now\";\nclock.now_s();\n";
        assert!(check("crates/x/src/lib.rs", src, &RuleCfg::default()).is_empty());
    }
}
