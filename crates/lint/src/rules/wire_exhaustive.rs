//! Rule `wire-exhaustive`: every message type the protocol knows must be
//! handled *everywhere* it matters.
//!
//! The authoritative list is `Message::msg_type` in the protocol module —
//! the variant → wire-integer map. For each entry there, this rule
//! demands:
//!
//! * a pattern for the integer in `payload_cap` (a type without a
//!   payload bound would let a hostile length field reserve
//!   `MAX_PAYLOAD`);
//! * a pattern for the integer in `decode_payload` (a type that encodes
//!   but never decodes is a silent one-way street);
//! * a `Message::<Variant>` mention in the round-trip test, so the new
//!   type actually gets exercised through encode → decode.
//!
//! Stale arms — integers matched in `payload_cap`/`decode_payload` that
//! `msg_type` no longer maps — are violations too.

use std::collections::BTreeMap;

use super::{fn_body, seq_at, Rule, Violation};
use crate::config::RuleCfg;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// Default location of the protocol module.
const DEFAULT_PROTOCOL: &str = "crates/serve/src/protocol.rs";
/// Default location of the round-trip test.
const DEFAULT_ROUNDTRIP: &str = "crates/serve/tests/protocol_roundtrip.rs";

/// See the module docs.
pub struct WireExhaustive;

impl Rule for WireExhaustive {
    fn name(&self) -> &'static str {
        "wire-exhaustive"
    }

    fn describe(&self) -> &'static str {
        "every wire message type must appear in payload_cap, decode_payload, and the round-trip test"
    }

    fn check_workspace(&self, files: &[SourceFile], cfg: &RuleCfg, out: &mut Vec<Violation>) {
        let protocol_rel = cfg.extra_one("protocol").unwrap_or(DEFAULT_PROTOCOL);
        let roundtrip_rel = cfg.extra_one("roundtrip").unwrap_or(DEFAULT_ROUNDTRIP);
        let Some(protocol) = files.iter().find(|f| f.rel == protocol_rel) else {
            // No protocol module in this tree (e.g. a fixture workspace
            // without one): nothing to check.
            return;
        };

        // variant name -> (wire integer, line of the msg_type arm).
        let types = msg_type_map(&protocol.toks);
        if types.is_empty() {
            out.push(Violation {
                rule: self.name(),
                rel: protocol.rel.clone(),
                line: 1,
                msg: "found no `Message::X => <int>` arms in `msg_type`; the wire-exhaustive \
                      rule has lost its authoritative message-type list"
                    .to_string(),
            });
            return;
        }
        let caps = match_arm_ints(&protocol.toks, "payload_cap");
        let decodes = match_arm_ints(&protocol.toks, "decode_payload");
        let roundtrip_variants: Vec<&str> = files
            .iter()
            .find(|f| f.rel == roundtrip_rel)
            .map(|f| message_variants(&f.toks))
            .unwrap_or_default();

        for (variant, &(int, line)) in &types {
            let mut missing = Vec::new();
            if !caps.contains_key(&int) {
                missing.push("a payload bound in `payload_cap`");
            }
            if !decodes.contains_key(&int) {
                missing.push("a decoder arm in `decode_payload`");
            }
            if !roundtrip_variants.contains(&variant.as_str()) {
                missing.push("coverage in the protocol round-trip test");
            }
            if !missing.is_empty() {
                out.push(Violation {
                    rule: self.name(),
                    rel: protocol.rel.clone(),
                    line,
                    msg: format!(
                        "message type {int} (`Message::{variant}`) is missing {}",
                        missing.join(", ")
                    ),
                });
            }
        }
        for (fn_name, ints) in [("payload_cap", &caps), ("decode_payload", &decodes)] {
            for (&int, &line) in ints {
                if !types.values().any(|&(t, _)| t == int) {
                    out.push(Violation {
                        rule: self.name(),
                        rel: protocol.rel.clone(),
                        line,
                        msg: format!(
                            "`{fn_name}` matches message type {int}, which `msg_type` no longer \
                             maps to any variant — stale arm"
                        ),
                    });
                }
            }
        }
    }
}

/// Extracts `Message::<Variant> ... => <int>` pairs from `fn msg_type`.
fn msg_type_map(toks: &[Tok]) -> BTreeMap<String, (u16, u32)> {
    let mut map = BTreeMap::new();
    let Some((start, end)) = fn_body(toks, "msg_type") else { return map };
    let body = &toks[start..end];
    let mut i = 0;
    while i < body.len() {
        if seq_at(body, i, &["Message", "::"])
            && body.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let variant = body[i + 2].text.clone();
            // Skip to the arm's `=>` and read the integer after it.
            let mut j = i + 3;
            while j < body.len() && !body[j].is_punct("=>") {
                j += 1;
            }
            if let Some(t) = body.get(j + 1) {
                if t.kind == TokKind::Num {
                    if let Ok(int) = t.text.parse::<u16>() {
                        map.insert(variant, (int, body[i].line));
                    }
                }
            }
            i = j;
        }
        i += 1;
    }
    map
}

/// Integer literals used as match-arm *patterns* inside `fn <name>`:
/// numbers directly followed by `|` or `=>`. Returns int → line.
fn match_arm_ints(toks: &[Tok], name: &str) -> BTreeMap<u16, u32> {
    let mut map = BTreeMap::new();
    let Some((start, end)) = fn_body(toks, name) else { return map };
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Num {
            continue;
        }
        let next_is_arm = toks.get(i + 1).is_some_and(|n| n.is_punct("|") || n.is_punct("=>"));
        if next_is_arm {
            if let Ok(int) = t.text.parse::<u16>() {
                map.entry(int).or_insert(t.line);
            }
        }
    }
    map
}

/// Every identifier appearing as `Message::<Variant>` in a file.
fn message_variants(toks: &[Tok]) -> Vec<&str> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if seq_at(toks, i, &["Message", "::"]) {
            if let Some(t) = toks.get(i + 2) {
                if t.kind == TokKind::Ident {
                    out.push(t.text.as_str());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    const PROTOCOL: &str = r#"
fn payload_cap(msg_type: u16) -> Result<usize, WireError> {
    Ok(match msg_type {
        1 => 24,
        2 | 3 => 0,
        other => return Err(WireError::UnknownType { found: other }),
    })
}
impl Message {
    fn msg_type(&self) -> u16 {
        match self {
            Message::Hello { .. } => 1,
            Message::Ping => 2,
            Message::Pong => 3,
        }
    }
}
fn decode_payload(msg_type: u16, cur: &mut Cursor<'_>) -> Result<Message, WireError> {
    match msg_type {
        1 => Ok(Message::Hello { id: cur.u64()? }),
        2 => Ok(Message::Ping),
        3 => Ok(Message::Pong),
        other => Err(WireError::UnknownType { found: other }),
    }
}
"#;

    const ROUNDTRIP: &str =
        "fn t() { let m = [Message::Hello { id: 1 }, Message::Ping, Message::Pong]; }\n";

    fn run(protocol: &str, roundtrip: &str) -> Vec<Violation> {
        let names = known_rule_names();
        let files = vec![
            SourceFile::parse("crates/serve/src/protocol.rs", protocol, &names),
            SourceFile::parse("crates/serve/tests/protocol_roundtrip.rs", roundtrip, &names),
        ];
        let mut out = Vec::new();
        WireExhaustive.check_workspace(&files, &RuleCfg::default(), &mut out);
        out
    }

    #[test]
    fn complete_protocol_is_clean() {
        assert!(run(PROTOCOL, ROUNDTRIP).is_empty());
    }

    #[test]
    fn missing_cap_arm_fires() {
        let protocol = PROTOCOL.replace("2 | 3 => 0,", "2 => 0,");
        let v = run(&protocol, ROUNDTRIP);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Pong"));
        assert!(v[0].msg.contains("payload_cap"));
    }

    #[test]
    fn missing_decoder_arm_fires() {
        let protocol = PROTOCOL.replace("3 => Ok(Message::Pong),", "");
        let v = run(&protocol, ROUNDTRIP);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("decode_payload"));
    }

    #[test]
    fn missing_roundtrip_coverage_fires() {
        let roundtrip = ROUNDTRIP.replace(", Message::Pong", "");
        let v = run(PROTOCOL, &roundtrip);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("round-trip"));
    }

    #[test]
    fn stale_arm_fires() {
        let protocol = PROTOCOL.replace("2 | 3 => 0,", "2 | 3 => 0,\n        9 => 0,");
        let v = run(&protocol, ROUNDTRIP);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("stale"));
        assert!(v[0].msg.contains('9'));
    }
}
