//! Rule `unordered-map`: `HashMap`/`HashSet` are forbidden in crates
//! whose iteration order can reach observable bytes — accounting sums,
//! stats exposition, wire output.
//!
//! This is the shape of a bug the repo has already shipped: PR 2's
//! `TrafficAccounting.per_node` hash map made f64 energy totals differ
//! in the last ulps between identical runs, because hash iteration
//! order reordered the floating-point sum. The fix (then and the
//! template now) is `BTreeMap`/`BTreeSet`, whose order is part of the
//! type's contract. A hash container that genuinely never iterates can
//! be waived — with a written reason.

use super::{Rule, Violation};
use crate::config::RuleCfg;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// See the module docs.
pub struct UnorderedMap;

impl Rule for UnorderedMap {
    fn name(&self) -> &'static str {
        "unordered-map"
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet forbidden in crates whose iteration order reaches observable bytes"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Violation>) {
        if !cfg.applies_to(&file.rel) {
            return;
        }
        for t in &file.toks {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                out.push(Violation {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}` iteration order is nondeterministic and this crate's data can \
                         reach accounting sums, stats exposition, or wire bytes; use \
                         `BTree{}` (PR 2 shipped exactly this bug in TrafficAccounting)",
                        t.text,
                        t.text.trim_start_matches("Hash"),
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    fn scoped() -> RuleCfg {
        RuleCfg { scope: vec!["crates/wsn/".into()], ..RuleCfg::default() }
    }

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        let names = known_rule_names();
        let f = SourceFile::parse(rel, src, &names);
        let mut out = Vec::new();
        UnorderedMap.check_file(&f, &scoped(), &mut out);
        out
    }

    #[test]
    fn fires_inside_scope_on_both_types() {
        let src = "use std::collections::{HashMap, HashSet};\nlet m: HashMap<u8, u8>;\n";
        let v = check("crates/wsn/src/accounting.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v[0].msg.contains("BTreeMap"));
        assert!(v[1].msg.contains("BTreeSet"));
    }

    #[test]
    fn silent_outside_scope_and_on_btree() {
        let src = "use std::collections::HashMap;\n";
        assert!(check("crates/fleet/src/client.rs", src).is_empty());
        assert!(check("crates/wsn/src/x.rs", "use std::collections::BTreeMap;\n").is_empty());
    }
}
