//! Rule `no-alloc`: inside `// orco-lint: region(no-alloc)` markers,
//! nothing may allocate.
//!
//! The marked regions are the serving hot paths — shard flush and the
//! batch-encode kernels — whose throughput numbers assume buffers are
//! reused, not reallocated per call. Inside a `no-alloc` region this
//! rule forbids the common allocating constructs:
//!
//! * `Vec::new` / `Vec::with_capacity` / `String::new` / `String::from`
//!   / `Box::new`;
//! * `.to_vec()` / `.to_owned()` / `.to_string()` / `.collect()` /
//!   `.clone()`;
//! * `format!` / `vec!`.
//!
//! The fix is almost always "take an `&mut` scratch buffer from the
//! caller" — the pattern `encode_batch_into`/`forward_into` already use.
//! The `require-region` config key pins the markers to the named files
//! so deleting them is itself a violation.

use super::{seq_at, Rule, Violation};
use crate::config::RuleCfg;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Region name this rule inspects.
pub const REGION: &str = "no-alloc";

/// `Type::method` constructors that allocate.
const PATH_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];

/// `.method()` calls that allocate.
const METHOD_CALLS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Macros that allocate.
const MACROS: &[&str] = &["format", "vec"];

/// See the module docs.
pub struct NoAlloc;

impl Rule for NoAlloc {
    fn name(&self) -> &'static str {
        "no-alloc"
    }

    fn describe(&self) -> &'static str {
        "no allocating constructs inside region(no-alloc) markers (hot paths reuse buffers)"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Violation>) {
        if !cfg.applies_to(&file.rel) {
            return;
        }
        let regions: Vec<_> = file.regions_named(REGION).collect();
        if regions.is_empty() {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !regions.iter().any(|r| r.contains(t.line)) {
                continue;
            }
            let offense = if let Some((ty, method)) =
                PATH_CALLS.iter().find(|(ty, m)| seq_at(&file.toks, i, &[ty, "::", m]))
            {
                Some(format!("`{ty}::{method}` allocates"))
            } else if METHOD_CALLS.contains(&t.text.as_str())
                && i > 0
                && file.toks[i - 1].is_punct(".")
            {
                Some(format!("`.{}()` allocates", t.text))
            } else if MACROS.contains(&t.text.as_str())
                && file.toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!("`{}!` allocates", t.text))
            } else {
                None
            };
            if let Some(what) = offense {
                out.push(Violation {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "{what} inside a `no-alloc` region; this hot path must reuse \
                         caller-provided buffers (see the `*_into` kernels for the pattern)"
                    ),
                });
            }
        }
    }

    fn check_workspace(&self, files: &[SourceFile], cfg: &RuleCfg, out: &mut Vec<Violation>) {
        for required in &cfg.require_region {
            let present = files
                .iter()
                .find(|f| &f.rel == required)
                .is_some_and(|f| f.regions_named(REGION).next().is_some());
            if !present {
                out.push(Violation {
                    rule: self.name(),
                    rel: required.clone(),
                    line: 1,
                    msg: format!(
                        "config requires a `region({REGION})` marker in this file and none is \
                         present; the hot path has lost its allocation-free coverage"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    fn check(src: &str) -> Vec<Violation> {
        let names = known_rule_names();
        let f = SourceFile::parse("p.rs", src, &names);
        let mut out = Vec::new();
        NoAlloc.check_file(&f, &RuleCfg::default(), &mut out);
        out
    }

    fn in_region(body: &str) -> String {
        format!("// orco-lint: region(no-alloc)\n{body}\n// orco-lint: endregion\n")
    }

    #[test]
    fn flags_constructors_methods_and_macros() {
        let v = check(&in_region(
            "let a = Vec::new();\nlet b = s.to_vec();\nlet c: Vec<_> = it.collect();\nlet d = format!(\"x\");\nlet e = vec![0; 4];\nlet f = x.clone();",
        ));
        assert_eq!(v.len(), 6, "{v:?}");
        assert!(v[0].msg.contains("Vec::new"));
        assert!(v[3].msg.contains("format!"));
    }

    #[test]
    fn silent_outside_region_and_on_reuse() {
        assert!(check("let a = Vec::new();\n").is_empty());
        let v = check(&in_region(
            "out.clear();\nout.extend_from_slice(&bytes);\nbuf.copy_from_slice(src);\nlet n = xs.iter().sum::<f32>();",
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clone_as_field_name_is_not_flagged() {
        // `cfg.clone` without a call is field access syntax here; only
        // `.clone` preceded by a dot counts, which this still is — but a
        // bare `clone` ident (e.g. a local named clone) must not fire.
        assert!(check(&in_region("let clone = 3; let y = clone + 1;")).is_empty());
    }
}
