//! Rule `atomics-justified`: every atomic `Ordering::` use must carry a
//! written justification naming the ordering it chose.
//!
//! Memory orderings are load-bearing and unreviewable without intent: a
//! bare `Ordering::Relaxed` could be a deliberate "this counter is
//! monotonic and read-only at scrape time" or an accidental data race.
//! This rule demands a comment mentioning the variant (e.g. "Relaxed")
//! on the same line as the use or within the three lines above it — the
//! shape the codebase already follows where orderings matter.
//!
//! Only the five `std::sync::atomic::Ordering` variants trigger;
//! `std::cmp::Ordering::{Less, Equal, Greater}` (comparator code, e.g.
//! the DES event queue) share the type name but not the hazard.

use super::{seq_at, Rule, Violation};
use crate::config::RuleCfg;
use crate::source::SourceFile;

/// Atomic ordering variants (cmp::Ordering variants deliberately absent).
const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines above the use a justification comment may sit.
const LOOKBACK: u32 = 3;

/// See the module docs.
pub struct AtomicsJustified;

impl Rule for AtomicsJustified {
    fn name(&self) -> &'static str {
        "atomics-justified"
    }

    fn describe(&self) -> &'static str {
        "every atomic Ordering:: use needs a nearby comment naming and justifying the ordering"
    }

    fn check_file(&self, file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Violation>) {
        if !cfg.applies_to(&file.rel) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if !t.is_ident("Ordering") {
                continue;
            }
            let Some(variant) =
                VARIANTS.iter().find(|v| seq_at(&file.toks, i, &["Ordering", "::", v]))
            else {
                continue;
            };
            let justified = (t.line.saturating_sub(LOOKBACK)..=t.line)
                .any(|l| file.comment_by_line.get(&l).is_some_and(|c| c.contains(variant)));
            if !justified {
                out.push(Violation {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "`Ordering::{variant}` without a written justification; add a comment \
                         naming `{variant}` (same line or up to {LOOKBACK} lines above) saying \
                         why this ordering is sufficient"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::known_rule_names;

    fn check(src: &str) -> Vec<Violation> {
        let names = known_rule_names();
        let f = SourceFile::parse("p.rs", src, &names);
        let mut out = Vec::new();
        AtomicsJustified.check_file(&f, &RuleCfg::default(), &mut out);
        out
    }

    #[test]
    fn bare_ordering_fires() {
        let v = check("self.count.fetch_add(1, Ordering::Relaxed);\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("Relaxed"));
    }

    #[test]
    fn same_line_and_preceding_comments_justify() {
        let same = "x.store(1, Ordering::SeqCst); // SeqCst: ordering vs. shutdown flag matters\n";
        assert!(check(same).is_empty());
        let above = "// Relaxed: monotonic counter, read only at scrape time, no\n\
                     // ordering dependency with any other memory.\n\
                     self.count.fetch_add(1, Ordering::Relaxed);\n";
        assert!(check(above).is_empty());
    }

    #[test]
    fn comment_naming_a_different_variant_does_not_justify() {
        let v = check("// Relaxed would be fine elsewhere.\nx.store(1, Ordering::SeqCst);\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn far_away_comments_do_not_justify() {
        let v = check(
            "// Relaxed: justification too far away.\n\n\n\n\nx.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn cmp_ordering_variants_never_fire() {
        let src = "match a.cmp(&b) { Ordering::Equal => 0, Ordering::Less => 1, Ordering::Greater => 2 };\n";
        assert!(check(src).is_empty());
    }
}
