//! One lexed source file plus its lint directives.
//!
//! Directives are ordinary line comments understood by the engine:
//!
//! * `// orco-lint: allow(<rule>, reason = "...")` — waives violations of
//!   `<rule>` on the directive's line and the line directly below it. The
//!   reason is **mandatory**: a waiver without a written reason is itself
//!   a violation, and so is a waiver naming an unknown rule.
//! * `// orco-lint: region(<name>)` … `// orco-lint: endregion` — brackets
//!   a named region. Region-scoped rules (`no-alloc`, `panic-free-decode`)
//!   only look inside regions carrying their name. Unbalanced markers are
//!   violations — a deleted `endregion` must not silently shrink a
//!   contract's coverage.

use std::collections::BTreeMap;

use crate::lexer::{self, Comment, Tok};

/// An inline waiver parsed from a directive comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the directive comment sits on; the waiver covers this line
    /// and the next.
    pub line: u32,
    /// Rule being waived.
    pub rule: String,
    /// The written justification (non-empty by construction).
    pub reason: String,
}

/// A named region bracketed by `region(<name>)` / `endregion` markers.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (e.g. `no-alloc`).
    pub name: String,
    /// Line of the opening marker.
    pub start: u32,
    /// Line of the closing marker (u32::MAX while unclosed).
    pub end: u32,
}

impl Region {
    /// Whether `line` falls strictly inside the region's markers.
    #[must_use]
    pub fn contains(&self, line: u32) -> bool {
        line > self.start && line < self.end
    }
}

/// A malformed directive (missing reason, unknown rule, unbalanced
/// region markers) — reported as a violation of the `lint-directive`
/// rule.
#[derive(Debug, Clone)]
pub struct DirectiveError {
    /// Line of the offending directive.
    pub line: u32,
    /// What is wrong with it.
    pub msg: String,
}

/// One source file: path, raw text, tokens, comments, and directives.
#[derive(Debug)]
pub struct SourceFile {
    /// `/`-separated path relative to the workspace root.
    pub rel: String,
    /// Raw source text.
    pub text: String,
    /// Code tokens (comments and literal contents stripped).
    pub toks: Vec<Tok>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// Comment text reachable from each line: a line maps to every
    /// comment that starts on, ends on, or spans it.
    pub comment_by_line: BTreeMap<u32, String>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Parsed regions (closed or reported unbalanced).
    pub regions: Vec<Region>,
    /// Malformed directives.
    pub directive_errors: Vec<DirectiveError>,
}

impl SourceFile {
    /// Lexes `text` and parses its directives. `known_rules` validates
    /// waiver targets so a typo'd rule name cannot silently waive
    /// nothing.
    #[must_use]
    pub fn parse(rel: &str, text: &str, known_rules: &[&str]) -> Self {
        let lexer::Lexed { toks, comments } = lexer::lex(text);
        // Adjacent line comments form one logical paragraph: every line
        // of the run maps to the run's full text, so a justification
        // written anywhere in a comment block covers code right below
        // the block (the atomics rule leans on this).
        let mut comment_by_line: BTreeMap<u32, String> = BTreeMap::new();
        let mut i = 0;
        while i < comments.len() {
            let mut j = i;
            while j + 1 < comments.len() && comments[j + 1].line == comments[j].end_line + 1 {
                j += 1;
            }
            let mut text = String::new();
            for c in &comments[i..=j] {
                text.push_str(&c.text);
                text.push(' ');
            }
            for line in comments[i].line..=comments[j].end_line {
                let slot = comment_by_line.entry(line).or_default();
                slot.push_str(&text);
            }
            i = j + 1;
        }
        let mut file = SourceFile {
            rel: rel.to_string(),
            text: text.to_string(),
            toks,
            comments,
            comment_by_line,
            waivers: Vec::new(),
            regions: Vec::new(),
            directive_errors: Vec::new(),
        };
        file.parse_directives(known_rules);
        file
    }

    /// Regions carrying `name`.
    pub fn regions_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Region> {
        self.regions.iter().filter(move |r| r.name == name)
    }

    fn parse_directives(&mut self, known_rules: &[&str]) {
        let mut open: Vec<Region> = Vec::new();
        for c in &self.comments {
            let Some(directive) = directive_text(&c.text) else { continue };
            if let Some(args) = directive.strip_prefix("allow(") {
                match parse_allow(args) {
                    Ok((rule, reason)) => {
                        if !known_rules.contains(&rule.as_str()) {
                            self.directive_errors.push(DirectiveError {
                                line: c.line,
                                msg: format!("waiver names unknown rule `{rule}`"),
                            });
                        } else {
                            self.waivers.push(Waiver { line: c.line, rule, reason });
                        }
                    }
                    Err(msg) => {
                        self.directive_errors
                            .push(DirectiveError { line: c.line, msg: msg.to_string() });
                    }
                }
            } else if let Some(args) = directive.strip_prefix("region(") {
                match args.strip_suffix(')').map(str::trim) {
                    Some(name) if !name.is_empty() => {
                        open.push(Region { name: name.to_string(), start: c.line, end: u32::MAX });
                    }
                    _ => self.directive_errors.push(DirectiveError {
                        line: c.line,
                        msg: "malformed region marker; expected `region(<name>)`".to_string(),
                    }),
                }
            } else if directive == "endregion" {
                match open.pop() {
                    Some(mut r) => {
                        r.end = c.line;
                        self.regions.push(r);
                    }
                    None => self.directive_errors.push(DirectiveError {
                        line: c.line,
                        msg: "`endregion` without a matching `region(...)`".to_string(),
                    }),
                }
            } else {
                self.directive_errors.push(DirectiveError {
                    line: c.line,
                    msg: format!(
                        "unknown orco-lint directive `{directive}`; expected \
                         allow(rule, reason = \"...\"), region(name), or endregion"
                    ),
                });
            }
        }
        for r in open {
            self.directive_errors.push(DirectiveError {
                line: r.start,
                msg: format!("region `{}` is never closed with `endregion`", r.name),
            });
        }
        self.regions.sort_by_key(|r| r.start);
    }
}

/// Extracts the directive body from a comment, if it is one:
/// `// orco-lint: allow(...)` → `allow(...)`.
fn directive_text(comment: &str) -> Option<String> {
    let body = comment.trim_start_matches(['/', '*', '!']).trim();
    let rest = body.strip_prefix("orco-lint:")?;
    Some(rest.trim().trim_end_matches("*/").trim().to_string())
}

/// Parses `<rule>, reason = "<text>")`.
fn parse_allow(args: &str) -> Result<(String, String), &'static str> {
    let args = args.strip_suffix(')').ok_or("waiver is missing its closing parenthesis")?;
    let (rule, rest) = match args.split_once(',') {
        Some((rule, rest)) => (rule.trim(), rest.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() {
        return Err("waiver names no rule");
    }
    let reason = rest
        .strip_prefix("reason")
        .and_then(|r| r.trim_start().strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err("waiver requires a written reason: allow(<rule>, reason = \"...\")");
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["wall-clock", "no-alloc"];

    #[test]
    fn waiver_with_reason_parses() {
        let f = SourceFile::parse(
            "a.rs",
            "// orco-lint: allow(wall-clock, reason = \"bench patience timer\")\nlet x = 1;\n",
            RULES,
        );
        assert!(f.directive_errors.is_empty());
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rule, "wall-clock");
        assert_eq!(f.waivers[0].reason, "bench patience timer");
        assert_eq!(f.waivers[0].line, 1);
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let f = SourceFile::parse("a.rs", "// orco-lint: allow(wall-clock)\n", RULES);
        assert!(f.waivers.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].msg.contains("reason"));
    }

    #[test]
    fn waiver_with_empty_reason_is_an_error() {
        let f =
            SourceFile::parse("a.rs", "// orco-lint: allow(wall-clock, reason = \"\")\n", RULES);
        assert!(f.waivers.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn unknown_rule_in_waiver_is_an_error() {
        let f = SourceFile::parse(
            "a.rs",
            "// orco-lint: allow(wall-cluck, reason = \"typo\")\n",
            RULES,
        );
        assert!(f.waivers.is_empty());
        assert!(f.directive_errors[0].msg.contains("wall-cluck"));
    }

    #[test]
    fn regions_bracket_lines() {
        let src = "\n// orco-lint: region(no-alloc)\nlet a = 1;\nlet b = 2;\n// orco-lint: endregion\nlet c = 3;\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert!(f.directive_errors.is_empty());
        assert_eq!(f.regions.len(), 1);
        let r = &f.regions[0];
        assert_eq!(r.name, "no-alloc");
        assert!(r.contains(3) && r.contains(4));
        assert!(!r.contains(2) && !r.contains(5) && !r.contains(6));
    }

    #[test]
    fn unbalanced_regions_are_errors() {
        let f = SourceFile::parse("a.rs", "// orco-lint: region(no-alloc)\nlet a = 1;\n", RULES);
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].msg.contains("never closed"));

        let f = SourceFile::parse("a.rs", "// orco-lint: endregion\n", RULES);
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].msg.contains("without a matching"));
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let f = SourceFile::parse("a.rs", "// orco-lint: suppress(everything)\n", RULES);
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn comment_by_line_spans_block_comments() {
        let f = SourceFile::parse("a.rs", "/* Relaxed is fine\nhere too */\nlet x = 1;\n", RULES);
        assert!(f.comment_by_line[&1].contains("Relaxed"));
        assert!(f.comment_by_line[&2].contains("Relaxed"));
        assert!(!f.comment_by_line.contains_key(&3));
    }
}
