//! The lint engine: runs every rule, applies waivers, assigns
//! severities, and produces a deterministic [`Report`].
//!
//! Waiver semantics: an `allow(<rule>, reason = "...")` directive covers
//! violations of `<rule>` on its own line and the line directly below —
//! the two places a directive comment naturally sits relative to the
//! code it excuses. Malformed directives surface as violations of the
//! `lint-directive` pseudo-rule and are **not waivable** (a broken
//! waiver must never excuse itself). Waivers that matched nothing are
//! reported too: a stale waiver is tech debt pretending to be a
//! decision.

use std::path::Path;

use crate::config::{Config, ConfigError, Severity};
use crate::rules::{all_rules, known_rule_names, Rule, Violation, DIRECTIVE_RULE};
use crate::source::SourceFile;
use crate::workspace::collect_sources;

/// One violation with the severity its rule resolved to.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violation itself.
    pub violation: Violation,
    /// Deny fails the run; Warn fails only under `--deny-all`.
    pub severity: Severity,
}

/// A waiver that excused no violation.
#[derive(Debug, Clone)]
pub struct UnusedWaiver {
    /// File the waiver sits in.
    pub rel: String,
    /// Line of the waiver directive.
    pub line: u32,
    /// Rule it names.
    pub rule: String,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving (unwaived) findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Waivers that excused nothing.
    pub unused_waivers: Vec<UnusedWaiver>,
    /// Number of source files checked.
    pub files_checked: usize,
}

impl Report {
    /// Findings at Deny severity.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Whether the run failed: any Deny finding, or (under `deny_all`)
    /// any finding at all.
    #[must_use]
    pub fn failed(&self, deny_all: bool) -> bool {
        if deny_all {
            !self.findings.is_empty()
        } else {
            self.deny_count() > 0
        }
    }
}

/// Rules + config, ready to run over a file set.
pub struct Engine {
    config: Config,
    rules: Vec<Box<dyn Rule>>,
}

impl Engine {
    /// Builds an engine over the full rule set.
    #[must_use]
    pub fn new(config: Config) -> Self {
        Self { config, rules: all_rules() }
    }

    /// Convenience: loads `<root>/orco-lint.toml`, collects the
    /// workspace's sources, and runs.
    ///
    /// # Errors
    ///
    /// Returns a config parse error or any I/O failure from the walk as
    /// a displayable error.
    pub fn run_root(root: &Path) -> Result<Report, Box<dyn std::error::Error>> {
        let names = known_rule_names();
        let config = Config::load(&root.join("orco-lint.toml"), &names)
            .map_err(|e: ConfigError| Box::new(e) as Box<dyn std::error::Error>)?;
        let files = collect_sources(root, &names)?;
        Ok(Engine::new(config).run(&files))
    }

    /// Runs every rule over `files` and resolves waivers.
    #[must_use]
    pub fn run(&self, files: &[SourceFile]) -> Report {
        let mut raw: Vec<Violation> = Vec::new();
        for rule in &self.rules {
            let cfg = self.config.rule(rule.name());
            for file in files {
                rule.check_file(file, &cfg, &mut raw);
            }
            rule.check_workspace(files, &cfg, &mut raw);
        }
        // Malformed directives are violations in their own right.
        for file in files {
            for e in &file.directive_errors {
                raw.push(Violation {
                    rule: DIRECTIVE_RULE,
                    rel: file.rel.clone(),
                    line: e.line,
                    msg: e.msg.clone(),
                });
            }
        }

        // Apply waivers. Each waiver covers its own line and the next;
        // directive errors are never waivable.
        let mut used = vec![Vec::new(); files.len()];
        let mut findings = Vec::new();
        for v in raw {
            let file_idx = files.iter().position(|f| f.rel == v.rel);
            let waived = v.rule != DIRECTIVE_RULE
                && file_idx.is_some_and(|idx| {
                    let mut hit = false;
                    for (w_idx, w) in files[idx].waivers.iter().enumerate() {
                        if w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line) {
                            used[idx].push(w_idx);
                            hit = true;
                        }
                    }
                    hit
                });
            if !waived {
                let severity = self.config.rule(v.rule).severity.unwrap_or(Severity::Deny);
                findings.push(Finding { violation: v, severity });
            }
        }
        findings.sort_by(|a, b| {
            (&a.violation.rel, a.violation.line, a.violation.rule).cmp(&(
                &b.violation.rel,
                b.violation.line,
                b.violation.rule,
            ))
        });

        let mut unused_waivers = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            for (w_idx, w) in file.waivers.iter().enumerate() {
                if !used[idx].contains(&w_idx) {
                    unused_waivers.push(UnusedWaiver {
                        rel: file.rel.clone(),
                        line: w.line,
                        rule: w.rule.clone(),
                    });
                }
            }
        }

        Report { findings, unused_waivers, files_checked: files.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src, &known_rule_names())
    }

    #[test]
    fn waiver_excuses_its_line_and_the_next() {
        let files = vec![parse(
            "crates/x/src/a.rs",
            "// orco-lint: allow(wall-clock, reason = \"patience timer outside the DES\")\n\
             let t = Instant::now();\n\
             let u = Instant::now();\n",
        )];
        let report = Engine::new(Config::default()).run(&files);
        // Line 2 is waived; line 3 is not.
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].violation.line, 3);
        assert!(report.unused_waivers.is_empty());
    }

    #[test]
    fn broken_waiver_is_a_finding_and_cannot_waive_itself() {
        let files = vec![parse("crates/x/src/a.rs", "// orco-lint: allow(wall-clock)\n")];
        let report = Engine::new(Config::default()).run(&files);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].violation.rule, DIRECTIVE_RULE);
        assert!(report.failed(false));
    }

    #[test]
    fn unused_waivers_are_reported() {
        let files = vec![parse(
            "crates/x/src/a.rs",
            "// orco-lint: allow(wall-clock, reason = \"was needed before the Clock refactor\")\n\
             let x = 1;\n",
        )];
        let report = Engine::new(Config::default()).run(&files);
        assert!(report.findings.is_empty());
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].rule, "wall-clock");
    }

    #[test]
    fn warn_severity_passes_unless_deny_all() {
        let config = Config::parse("[wall-clock]\nseverity = warn\n", &known_rule_names())
            .expect("valid config");
        let files = vec![parse("crates/x/src/a.rs", "let t = Instant::now();\n")];
        let report = Engine::new(config).run(&files);
        assert_eq!(report.findings.len(), 1);
        assert!(!report.failed(false));
        assert!(report.failed(true));
    }

    #[test]
    fn findings_come_out_sorted() {
        let files = vec![
            parse("crates/x/src/b.rs", "let t = Instant::now();\n"),
            parse("crates/x/src/a.rs", "let a = SystemTime::now();\nlet b = Instant::now();\n"),
        ];
        let report = Engine::new(Config::default()).run(&files);
        let keys: Vec<_> =
            report.findings.iter().map(|f| (f.violation.rel.clone(), f.violation.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
