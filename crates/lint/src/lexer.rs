//! A lightweight Rust lexer — just enough structure for invariant rules.
//!
//! The rules in this crate match on *token sequences* (`Instant :: now`,
//! `Ordering :: Relaxed`, an identifier followed by `[`), never on raw
//! text, so a `HashMap` mentioned inside a string literal or a comment
//! can never fire a rule. The lexer therefore has to get exactly three
//! things right:
//!
//! 1. **Comments** are stripped from the token stream but preserved with
//!    line spans — waivers, region markers, and atomics justifications
//!    all live in comments.
//! 2. **String/char literals** (including raw strings and byte strings)
//!    become opaque single tokens, so their contents are invisible to
//!    rules.
//! 3. **Lifetimes vs char literals** are disambiguated (`'a>` is a
//!    lifetime, `'a'` is a char), because a confused lexer would lose
//!    sync and mis-attribute everything after it.
//!
//! Everything else — keywords vs identifiers, numeric suffixes, operator
//! glue beyond `::` and `=>` — is deliberately untyped: rules that need
//! more shape (like the wire-exhaustiveness pass) reconstruct it from
//! the token stream.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Numeric literal (integer or the integral prefix of a float).
    Num,
    /// String literal of any flavor; contents are opaque.
    Str,
    /// Char or byte literal; contents are opaque.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; `::` and `=>` are fused, everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (empty for string/char literals — opaque).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment with its line span (block comments may span lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: u32,
    /// Comment text including the `//` or `/* */` markers.
    pub text: String,
}

/// The lexer's output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments stripped.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unexpected bytes become single-char
/// punctuation, and an unterminated literal simply ends at EOF — a lint
/// pass must degrade gracefully on code rustc itself would reject.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// Consumes a `"…"` string body (opening quote at the cursor).
    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`).
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let lifetime =
            next.is_some_and(is_ident_start) && after != Some('\'') && next != Some('\\');
        if lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.bump(); // opening '
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump(); // escaped char
            } else {
                self.bump(); // the char itself
            }
            if self.peek(0) == Some('\'') {
                self.bump(); // closing '
            }
            self.push(TokKind::Char, String::new(), line);
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers (`r#match`). Returns false when the `r`/`b` is just the
    /// start of an ordinary identifier, leaving the cursor untouched.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c = self.peek(0).unwrap_or(' ');
        let (skip, rest) = match (c, self.peek(1)) {
            ('b', Some('r')) => (2, self.peek(2)),
            ('b', Some('\'')) => {
                self.bump();
                self.quote(line);
                return true;
            }
            ('b', Some('"')) => {
                self.bump();
                self.string_literal(line);
                return true;
            }
            ('r', r) => (1, r),
            _ => return false,
        };
        match rest {
            Some('"') => {
                for _ in 0..skip {
                    self.bump();
                }
                self.raw_string(0, line);
                true
            }
            Some('#') => {
                // Count the hashes; a quote after them is a raw string,
                // an identifier char is a raw identifier (r#type).
                let mut hashes = 0;
                while self.peek(skip + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(skip + hashes) == Some('"') {
                    for _ in 0..skip + hashes {
                        self.bump();
                    }
                    self.raw_string(hashes, line);
                    true
                } else if skip == 1 && hashes == 1 {
                    self.bump(); // r
                    self.bump(); // #
                    self.ident(line);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Consumes a raw string body (opening quote at the cursor) closed by
    /// `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numeric literal: digits plus alphanumeric continuation (hex,
    /// suffixes, exponents). `1.5` lexes as `1` `.` `5` — fine, rules only
    /// ever match whole integer literals.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Num, text, line);
    }

    fn punct(&mut self, line: u32) {
        let c = self.bump().unwrap_or(' ');
        let fused = match (c, self.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('=', Some('>')) => Some("=>"),
            _ => None,
        };
        if let Some(two) = fused {
            self.bump();
            self.push(TokKind::Punct, two.to_string(), line);
        } else {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ still a comment */
            let s = "HashMap::new() Instant::now()";
            let r = r#"SystemTime::now()"#;
            let c = 'H';
            use std::collections::BTreeMap;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_do_not_eat_the_stream() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let e = '\\n'; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        // The trailing `x` survived — the lexer stayed in sync.
        assert!(lexed.toks.iter().rev().any(|t| t.is_ident("x")));
    }

    #[test]
    fn fused_puncts_and_lines() {
        let src = "a::b\nc => 3";
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.is_punct("::") && t.line == 1));
        assert!(lexed.toks.iter().any(|t| t.is_punct("=>") && t.line == 2));
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Num && t.text == "3" && t.line == 2));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; br#\"HashMap\"#;");
        assert!(ids.contains(&"type".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        let lexed = lex("let s = \"unterminated");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
