//! The workspace's invariant checker (`orco-lint`).
//!
//! The repo's correctness story rests on a handful of contracts that
//! rustc cannot see — determinism (no wall-clock reads outside `Clock`,
//! no hash-ordered iteration feeding observable bytes), wire safety
//! (every message type bounded, decoded, and round-trip-tested; no
//! panics on hostile input), and hot-path discipline (no allocation in
//! flush/encode kernels, no unjustified atomic orderings). Each of those
//! contracts has already been the site of a real bug or a real review
//! argument; this crate turns them into machine-enforced rules.
//!
//! Mechanically, the checker lexes every workspace `.rs` file into a
//! token stream ([`lexer`]), so rules match code — never strings or
//! comments. Rules ([`rules`]) are scoped by a root config
//! (`orco-lint.toml`, [`config`]) and can be waived inline with a
//! written reason:
//!
//! ```text
//! // orco-lint: allow(unordered-map, reason = "test-local set, never iterated")
//! ```
//!
//! Region-scoped rules read named markers:
//!
//! ```text
//! // orco-lint: region(no-alloc)
//! ...hot path...
//! // orco-lint: endregion
//! ```
//!
//! Run it with `cargo run -p orco-lint` (CI adds `--deny-all`). The rule
//! catalog, with the reasoning behind each rule, is in
//! `crates/lint/RULES.md`.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::{Config, ConfigError, RuleCfg, Severity};
pub use engine::{Engine, Finding, Report, UnusedWaiver};
pub use rules::{all_rules, known_rule_names, Rule, Violation};
pub use source::SourceFile;
pub use workspace::collect_sources;
