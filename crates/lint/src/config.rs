//! The scoped allowlist config (`orco-lint.toml` at the workspace root).
//!
//! The format is a deliberately tiny TOML subset — `[rule-name]` sections
//! holding `key = [ "value", ... ]` entries — parsed by hand so the lint
//! crate stays std-only. Recognized keys:
//!
//! * `scope` — path prefixes the rule applies to (empty = everywhere);
//! * `allow` — path prefixes the rule skips (the scoped allowlist);
//! * `require-region` — files that must contain at least one of the
//!   rule's regions, so deleting the markers is itself a violation;
//! * `severity` — `deny` (default) or `warn`;
//! * rule-specific keys (`protocol`, `roundtrip` for `wire-exhaustive`).
//!
//! Unknown sections and keys are **hard errors**: a typo'd allowlist
//! entry must fail the build, not silently allow nothing.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How a rule's findings count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Deny,
    /// Reported, but only fails under `--deny-all`.
    Warn,
}

/// Per-rule configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleCfg {
    /// Path prefixes the rule applies to; empty means the whole tree.
    pub scope: Vec<String>,
    /// Path prefixes the rule skips.
    pub allow: Vec<String>,
    /// Files that must contain at least one of the rule's regions.
    pub require_region: Vec<String>,
    /// Severity override (None = the rule's default, Deny).
    pub severity: Option<Severity>,
    /// Rule-specific string lists, keyed by config key.
    pub extra: BTreeMap<String, Vec<String>>,
}

impl RuleCfg {
    /// Whether `rel` is inside the rule's scope and not allowlisted.
    #[must_use]
    pub fn applies_to(&self, rel: &str) -> bool {
        let scoped = self.scope.is_empty() || self.scope.iter().any(|p| rel.starts_with(p));
        scoped && !self.allow.iter().any(|p| rel.starts_with(p))
    }

    /// First value of a rule-specific key, if present.
    #[must_use]
    pub fn extra_one(&self, key: &str) -> Option<&str> {
        self.extra.get(key)?.first().map(String::as_str)
    }
}

/// The whole config: one [`RuleCfg`] per rule name.
#[derive(Debug, Clone, Default)]
pub struct Config {
    rules: BTreeMap<String, RuleCfg>,
}

/// A config parse failure with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What is wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "orco-lint.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The configuration for `rule` (default-empty if absent).
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleCfg {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Loads the config file at `path`; a missing file is an empty
    /// config (every rule at its defaults, no allowlists).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on malformed entries, unknown sections, or
    /// unknown keys; I/O failures are folded in as line-0 errors.
    pub fn load(path: &Path, known_rules: &[&str]) -> Result<Self, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text, known_rules),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(ConfigError { line: 0, msg: format!("cannot read config: {e}") }),
        }
    }

    /// Parses config text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on malformed entries, unknown sections, or
    /// unknown keys.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Self, ConfigError> {
        let mut rules: BTreeMap<String, RuleCfg> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            if let Some(section) = l.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let section = section.trim();
                if !known_rules.contains(&section) {
                    return Err(ConfigError {
                        line,
                        msg: format!("unknown rule section `[{section}]`"),
                    });
                }
                rules.entry(section.to_string()).or_default();
                current = Some(section.to_string());
                continue;
            }
            let Some((key, value)) = l.split_once('=') else {
                return Err(ConfigError { line, msg: format!("expected `key = ...`, got `{l}`") });
            };
            let Some(rule) = &current else {
                return Err(ConfigError {
                    line,
                    msg: "entry outside any [rule] section".to_string(),
                });
            };
            let key = key.trim();
            let values = parse_values(value);
            let cfg = rules.get_mut(rule).expect("section inserted on entry");
            match key {
                "scope" => cfg.scope = values,
                "allow" => cfg.allow = values,
                "require-region" => cfg.require_region = values,
                "severity" => {
                    cfg.severity = Some(match values.first().map(String::as_str) {
                        Some("deny") => Severity::Deny,
                        Some("warn") => Severity::Warn,
                        other => {
                            return Err(ConfigError {
                                line,
                                msg: format!("severity must be deny or warn, got {other:?}"),
                            })
                        }
                    });
                }
                "protocol" | "roundtrip" => {
                    cfg.extra.insert(key.to_string(), values);
                }
                other => {
                    return Err(ConfigError {
                        line,
                        msg: format!("unknown key `{other}` in [{rule}]"),
                    })
                }
            }
        }
        Ok(Self { rules })
    }
}

/// Parses `[ "a", "b" ]` or a bare comma-separated list into values.
fn parse_values(raw: &str) -> Vec<String> {
    raw.trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .map(|v| v.trim().trim_matches('"').trim().to_string())
        .filter(|v| !v.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["wall-clock", "unordered-map", "wire-exhaustive"];

    #[test]
    fn parses_sections_scopes_and_allowlists() {
        let cfg = Config::parse(
            "# comment\n[wall-clock]\nallow = [\"crates/serve/src/clock.rs\"]\n\n\
             [unordered-map]\nscope = [\"crates/wsn/\", \"crates/sim/\"]\nseverity = warn\n",
            RULES,
        )
        .expect("valid config");
        let wc = cfg.rule("wall-clock");
        assert!(wc.applies_to("crates/wsn/src/network.rs"));
        assert!(!wc.applies_to("crates/serve/src/clock.rs"));
        let um = cfg.rule("unordered-map");
        assert!(um.applies_to("crates/wsn/src/tree.rs"));
        assert!(!um.applies_to("crates/fleet/src/client.rs"));
        assert_eq!(um.severity, Some(Severity::Warn));
        // Absent rule: default-empty, applies everywhere.
        assert!(cfg.rule("wire-exhaustive").applies_to("anything.rs"));
    }

    #[test]
    fn unknown_section_and_key_are_errors() {
        assert!(Config::parse("[wall-cluck]\n", RULES).is_err());
        assert!(Config::parse("[wall-clock]\nallwo = [\"x\"]\n", RULES).is_err());
        assert!(Config::parse("allow = [\"x\"]\n", RULES).is_err());
        assert!(Config::parse("[wall-clock]\nseverity = loud\n", RULES).is_err());
    }

    #[test]
    fn extra_keys_round_trip() {
        let cfg = Config::parse(
            "[wire-exhaustive]\nprotocol = [\"crates/serve/src/protocol.rs\"]\n",
            RULES,
        )
        .expect("valid");
        assert_eq!(
            cfg.rule("wire-exhaustive").extra_one("protocol"),
            Some("crates/serve/src/protocol.rs")
        );
    }
}
