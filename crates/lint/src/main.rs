//! CLI for orco-lint.
//!
//! ```text
//! cargo run -p orco-lint                  # lint the workspace
//! cargo run -p orco-lint -- --deny-all    # CI mode: warnings fail too
//! cargo run -p orco-lint -- --list-rules  # print the rule catalog
//! cargo run -p orco-lint -- --root <dir>  # lint another tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

use orco_lint::{all_rules, Engine, Severity};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<20} {}", rule.name(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("orco-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: orco-lint [--root <dir>] [--deny-all] [--list-rules]\n\
                     Checks the workspace's determinism, wire-safety, and hot-path\n\
                     contracts. Config: <root>/orco-lint.toml; waivers:\n\
                     `// orco-lint: allow(<rule>, reason = \"...\")`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("orco-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root: the directory holding orco-lint.toml
    // when run via `cargo run -p orco-lint` (cwd) or two levels up from
    // this crate's manifest as a fallback for odd invocation dirs.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("orco-lint.toml").exists() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let report = match Engine::run_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("orco-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        let sev = match f.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        println!(
            "{}:{}: [{}/{}] {}",
            f.violation.rel, f.violation.line, f.violation.rule, sev, f.violation.msg
        );
    }
    for w in &report.unused_waivers {
        println!("{}:{}: note: waiver for `{}` excused nothing; delete it", w.rel, w.line, w.rule);
    }
    println!(
        "orco-lint: {} file(s) checked, {} finding(s) ({} deny), {} unused waiver(s)",
        report.files_checked,
        report.findings.len(),
        report.deny_count(),
        report.unused_waivers.len()
    );
    if report.failed(deny_all) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
