//! Workspace discovery: every `.rs` file the rules should see.
//!
//! The walker starts at the workspace root and recurses, skipping:
//!
//! * `target/` and dot-directories — build products, VCS metadata;
//! * `shims/` — vendored stand-ins for crates.io packages (`proptest`,
//!   `criterion`); they emulate *external* code and carry external
//!   idioms (the criterion shim reads the wall clock, as a bench harness
//!   must). The clippy `disallowed-methods` backstop still covers them.
//! * any `tests/fixtures/` directory — the lint crate's own fixture
//!   files are known-bad on purpose.
//!
//! Files come back sorted by relative path so every run reports
//! violations in the same order.

use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Collects and lexes every workspace source file under `root`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn collect_sources(root: &Path, known_rules: &[&str]) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::parse(&rel, &text, known_rules));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == "shims" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lint crate lives two levels below the workspace root.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
    }

    #[test]
    fn walker_finds_the_workspace_and_skips_noise() {
        let files = collect_sources(&repo_root(), &[]).expect("walk workspace");
        assert!(files.len() > 50, "expected a large workspace, got {}", files.len());
        assert!(files.iter().any(|f| f.rel == "crates/serve/src/protocol.rs"));
        assert!(files.iter().all(|f| !f.rel.starts_with("target/")));
        assert!(files.iter().all(|f| !f.rel.starts_with("shims/")));
        assert!(files.iter().all(|f| !f.rel.contains("tests/fixtures/")));
        let mut rels: Vec<_> = files.iter().map(|f| f.rel.clone()).collect();
        let sorted = {
            let mut s = rels.clone();
            s.sort();
            s
        };
        assert_eq!(rels, sorted, "files must come back in sorted order");
        rels.dedup();
        assert_eq!(rels.len(), files.len());
    }
}
