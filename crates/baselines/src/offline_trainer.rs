//! Offline (cloud-style) training for DCSNet, and the online-protocol
//! harness used for the paper's head-to-head comparisons.
//!
//! DCSNet's native scheme is offline: historical data sits in the cloud and
//! the model trains centrally with no per-round network cost — but also no
//! access to fresh data, which is why the paper evaluates it at 30/50/70%
//! data fractions (Figure 5). For time-to-loss comparisons (Figures 4,
//! 6–8) the paper instead runs DCSNet *through the same online protocol* as
//! OrcoDCS; [`train_dcsnet_online`] does exactly that by dropping a
//! [`Dcsnet`] into the generic [`Orchestrator`].

use orco_datasets::{split, Dataset};
use orco_tensor::OrcoRng;
use orco_wsn::NetworkConfig;
use orcodcs::{Orchestrator, OrcoConfig, OrcoError, TrainingHistory};

use crate::dcsnet::{Dcsnet, DCSNET_LATENT_DIM};

/// Result of an offline (centralized) DCSNet training run.
#[derive(Debug)]
pub struct OfflineOutcome {
    /// The trained model.
    pub model: Dcsnet,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Fraction of the training data that was accessible.
    pub data_fraction: f32,
}

/// Trains DCSNet offline on a fraction of the dataset (paper: 30/50/70%,
/// default 50%).
///
/// # Panics
///
/// Panics if `data_fraction` is not in `(0, 1]` or `epochs`/`batch_size`
/// is zero.
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentBuilder` with a `Dcsnet` codec in `TrainingMode::Local`"
)]
#[must_use]
pub fn train_dcsnet_offline(
    dataset: &Dataset,
    data_fraction: f32,
    epochs: usize,
    batch_size: usize,
    seed: u64,
) -> OfflineOutcome {
    assert!(epochs > 0 && batch_size > 0, "epochs and batch_size must be non-zero");
    let mut rng = OrcoRng::from_label("dcsnet-offline", seed);
    let accessible = if data_fraction < 1.0 {
        split::fraction(dataset, data_fraction, &mut rng)
    } else {
        dataset.clone()
    };
    let mut model = Dcsnet::new(dataset.kind(), seed);
    let loss = Dcsnet::loss();
    let n = accessible.len();
    let bs = batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(bs) {
            let xb = accessible.x().select_rows(chunk);
            total += f64::from(model.train_batch_central(&xb, &loss));
            batches += 1;
        }
        epoch_losses.push((total / batches as f64) as f32);
    }
    OfflineOutcome { model, epoch_losses, data_fraction }
}

/// Trains DCSNet through the IoT-Edge orchestrated online protocol — the
/// paper's apples-to-apples setting for time-to-loss comparisons. Only
/// `data_fraction` of the dataset is made accessible (default 50% in the
/// paper).
///
/// Returns the orchestrator (holding the trained model and the network
/// ledger) and the training history on the simulated clock.
///
/// # Errors
///
/// Propagates orchestration errors.
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentBuilder` with a `Dcsnet` codec and `.data_fraction(..)`"
)]
pub fn train_dcsnet_online(
    dataset: &Dataset,
    data_fraction: f32,
    epochs: usize,
    batch_size: usize,
    net_config: NetworkConfig,
    seed: u64,
) -> Result<(Orchestrator<Dcsnet>, TrainingHistory), OrcoError> {
    let mut rng = OrcoRng::from_label("dcsnet-online", seed);
    let accessible = if data_fraction < 1.0 {
        split::fraction(dataset, data_fraction, &mut rng)
    } else {
        dataset.clone()
    };
    let model = Dcsnet::new(dataset.kind(), seed);
    // Protocol parameters ride in an OrcoConfig; DCSNet's L2 loss is set via
    // huber-free element config below (the orchestrator reads config.loss()).
    // DCSNet trains with plain L2: a Huber with a huge delta is numerically
    // identical on [0,1] pixels, keeping one code path.
    let config = OrcoConfig {
        input_dim: dataset.kind().sample_len(),
        latent_dim: DCSNET_LATENT_DIM,
        decoder_layers: 4,
        noise_variance: 0.0,
        huber_delta: f32::MAX.sqrt(),
        vector_huber: false,
        learning_rate: 1e-3,
        batch_size,
        epochs,
        finetune_threshold: 0.05,
        grad_compression: Default::default(),
        seed,
    };
    let mut orch = Orchestrator::with_model(model, config, net_config);
    let history = orch.train(accessible.x())?;
    Ok((orch, history))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers stay covered until removal
mod tests {
    use super::*;
    use orco_datasets::mnist_like;

    #[test]
    fn offline_training_learns() {
        let ds = mnist_like::generate(16, 0);
        let out = train_dcsnet_offline(&ds, 0.5, 3, 8, 0);
        assert_eq!(out.epoch_losses.len(), 3);
        assert!(out.epoch_losses[2] < out.epoch_losses[0]);
        assert!((out.data_fraction - 0.5).abs() < 1e-6);
    }

    #[test]
    fn online_training_pays_network_time() {
        let ds = mnist_like::generate(16, 1);
        let net = NetworkConfig { num_devices: 8, seed: 0, ..Default::default() };
        let (orch, history) = train_dcsnet_online(&ds, 0.5, 1, 8, net, 0).unwrap();
        assert!(!history.rounds.is_empty());
        assert!(orch.network().now_s() > 0.0);
        // 1024-dim latent uplink per round.
        assert!(
            orch.network().accounting().bytes_by_kind(orco_wsn::PacketKind::LatentVector)
                >= 1024 * 4
        );
    }

    #[test]
    fn online_dcsnet_is_slower_per_round_than_orcodcs() {
        // The heart of Figure 4: same protocol, but DCSNet moves 8x the
        // latent bytes and burns far more FLOPs per round.
        let ds = mnist_like::generate(8, 2);
        let net = NetworkConfig { num_devices: 8, seed: 0, ..Default::default() };
        let (dcs_orch, dcs_hist) = train_dcsnet_online(&ds, 1.0, 1, 8, net.clone(), 0).unwrap();
        let cfg = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
            .with_epochs(1)
            .with_batch_size(8);
        let mut orco = Orchestrator::new(cfg, net).unwrap();
        let orco_hist = orco.train(ds.x()).unwrap();
        assert_eq!(dcs_hist.rounds.len(), orco_hist.rounds.len());
        assert!(
            dcs_orch.network().now_s() > orco.network().now_s() * 2.0,
            "DCSNet round time {} should dwarf OrcoDCS {}",
            dcs_orch.network().now_s(),
            orco.network().now_s()
        );
    }
}
