//! # orco-baselines
//!
//! The comparison systems of the OrcoDCS paper, implemented from scratch:
//!
//! * [`dcsnet`] — **DCSNet** (ref \[3\] of the paper), the deep-CDA baseline
//!   of the evaluation: a fixed 1024-dimensional latent space and a decoder
//!   of 4 convolutional layers, trained offline on a fraction (30/50/70%)
//!   of the data. It implements [`orcodcs::SplitModel`], so it can also be
//!   run through the same online orchestrated protocol the paper uses for
//!   its time-to-loss comparison.
//! * [`cs`] — **traditional compressed sensing**, the pre-deep-learning CDA
//!   the introduction motivates against: Gaussian measurement matrices and
//!   convex sparse reconstruction (ISTA, plus OMP) in a DCT basis. Its
//!   computational cost and dimension/sparsity-limited quality are exactly
//!   the drawbacks the paper cites.
//! * [`offline_trainer`] — the legacy offline (cloud-style) training
//!   drivers for DCSNet, kept as deprecated wrappers.
//!
//! Both baselines implement [`orcodcs::Codec`] — [`Dcsnet`] directly, the
//! classical stack through [`cs::ClassicalCodec`] — so every comparison in
//! the figure harness and examples drives them through the same
//! `ExperimentBuilder` pipeline as OrcoDCS itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crop;
pub mod cs;
pub mod dcsnet;
pub mod offline_trainer;

pub use crop::Crop2d;
pub use cs::{ClassicalCodec, CsSolver};
pub use dcsnet::Dcsnet;
