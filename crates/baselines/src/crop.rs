//! Centre-crop layer.
//!
//! DCSNet's 1024-element latent reshapes to a 1×32×32 feature map; after
//! the convolutional stack the output is 32×32, but MNIST frames are 28×28.
//! `Crop2d` takes the centre window (identity when sizes match, as for
//! 32×32 GTSRB), and its backward pass zero-pads gradients back out.

use orco_nn::{Layer, Param};
use orco_tensor::Matrix;

/// Centre-crops `(C, in, in)` feature maps to `(C, out, out)`.
///
/// # Examples
///
/// ```
/// use orco_baselines::Crop2d;
/// use orco_nn::Layer;
/// use orco_tensor::Matrix;
///
/// let mut crop = Crop2d::new(1, 4, 2);
/// let x = Matrix::from_fn(1, 16, |_, c| c as f32);
/// let y = crop.forward(&x, false);
/// assert_eq!(y.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Crop2d {
    channels: usize,
    in_side: usize,
    out_side: usize,
}

impl Crop2d {
    /// Creates a crop layer.
    ///
    /// # Panics
    ///
    /// Panics if `out_side > in_side` or either is zero.
    #[must_use]
    pub fn new(channels: usize, in_side: usize, out_side: usize) -> Self {
        assert!(channels > 0 && in_side > 0 && out_side > 0, "Crop2d: zero dimension");
        assert!(out_side <= in_side, "Crop2d: cannot crop {in_side} up to {out_side}");
        Self { channels, in_side, out_side }
    }

    fn margin(&self) -> usize {
        (self.in_side - self.out_side) / 2
    }
}

impl Layer for Crop2d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.input_dim(), "Crop2d::forward: width mismatch");
        if self.in_side == self.out_side {
            return input.clone();
        }
        let m = self.margin();
        let mut out = Matrix::zeros(input.rows(), self.output_dim());
        for (r, sample) in input.iter_rows().enumerate() {
            let dst = out.row_mut(r);
            for c in 0..self.channels {
                for y in 0..self.out_side {
                    for x in 0..self.out_side {
                        dst[(c * self.out_side + y) * self.out_side + x] =
                            sample[(c * self.in_side + y + m) * self.in_side + x + m];
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.cols(), self.output_dim(), "Crop2d::backward: width mismatch");
        if self.in_side == self.out_side {
            return grad_output.clone();
        }
        let m = self.margin();
        let mut out = Matrix::zeros(grad_output.rows(), self.input_dim());
        for (r, g) in grad_output.iter_rows().enumerate() {
            let dst = out.row_mut(r);
            for c in 0..self.channels {
                for y in 0..self.out_side {
                    for x in 0..self.out_side {
                        dst[(c * self.in_side + y + m) * self.in_side + x + m] =
                            g[(c * self.out_side + y) * self.out_side + x];
                    }
                }
            }
        }
        out
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn input_dim(&self) -> usize {
        self.channels * self.in_side * self.in_side
    }

    fn output_dim(&self) -> usize {
        self.channels * self.out_side * self.out_side
    }

    fn flops_forward(&self) -> u64 {
        self.output_dim() as u64
    }

    fn name(&self) -> &'static str {
        "crop2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_crop_is_noop() {
        let mut crop = Crop2d::new(2, 3, 3);
        let x = Matrix::from_fn(2, 18, |r, c| (r * 18 + c) as f32);
        assert_eq!(crop.forward(&x, true), x);
        assert_eq!(crop.backward(&x), x);
    }

    #[test]
    fn crop_then_pad_is_projection() {
        let mut crop = Crop2d::new(1, 6, 4);
        let x = Matrix::from_fn(1, 36, |_, c| c as f32 + 1.0);
        let y = crop.forward(&x, false);
        assert_eq!(y.cols(), 16);
        let back = crop.backward(&y);
        assert_eq!(back.cols(), 36);
        // Padding ring is zero; interior matches.
        assert_eq!(back.as_slice()[0], 0.0);
        let again = crop.forward(&back, false);
        assert_eq!(again, y);
    }

    #[test]
    fn adjoint_identity_holds() {
        // ⟨crop(x), g⟩ == ⟨x, crop_backward(g)⟩
        let mut crop = Crop2d::new(1, 5, 3);
        let x = Matrix::from_fn(1, 25, |_, c| ((c * 13 % 7) as f32) - 3.0);
        let g = Matrix::from_fn(1, 9, |_, c| ((c * 5 % 11) as f32) - 5.0);
        let lhs = crop.forward(&x, false).dot(&g);
        let rhs = x.dot(&crop.backward(&g));
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "cannot crop")]
    fn rejects_upcrop() {
        let _ = Crop2d::new(1, 3, 5);
    }

    #[test]
    fn mnist_geometry() {
        let crop = Crop2d::new(1, 32, 28);
        assert_eq!(crop.input_dim(), 1024);
        assert_eq!(crop.output_dim(), 784);
    }
}
