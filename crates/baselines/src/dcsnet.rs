//! DCSNet — the deep-CDA baseline (ref \[3\] of the paper).
//!
//! The paper pins DCSNet down by two fixed choices the evaluation leans on:
//! a **predefined latent dimension of 1024** (task-independent, unlike
//! OrcoDCS's tunable `M`) and a **decoder of 4 convolutional layers**. The
//! 1024-element latent reshapes to a 1×32×32 feature map; the conv stack
//! refines it and a centre crop adapts 32×32 to the 28×28 MNIST frame
//! (identity for 32×32 GTSRB).
//!
//! [`Dcsnet`] implements [`SplitModel`], so it can be trained (a) offline
//! and centrally via [`crate::offline_trainer`], the scheme DCSNet was
//! designed for, or (b) through the same IoT-Edge orchestrated protocol as
//! OrcoDCS — which is how the paper obtains its time-to-loss comparison.

use orco_nn::{Activation, Conv2d, Dense, Layer, Loss, Optimizer, Sequential};
use orco_tensor::{MatView, Matrix, OrcoRng};

use orco_datasets::DatasetKind;
use orcodcs::{Codec, EncoderCheckpoint, OrcoError, SplitModel, TrainSpec, TrainingHistory};

use crate::crop::Crop2d;

/// DCSNet's fixed latent dimension (paper §IV-A).
pub const DCSNET_LATENT_DIM: usize = 1024;

/// Side of the square feature map the latent reshapes to (`32·32 = 1024`).
const LATENT_SIDE: usize = 32;

/// The DCSNet baseline model.
///
/// # Examples
///
/// ```
/// use orco_baselines::Dcsnet;
/// use orco_datasets::DatasetKind;
/// use orco_tensor::Matrix;
/// use orcodcs::SplitModel;
///
/// let mut net = Dcsnet::new(DatasetKind::MnistLike, 0);
/// assert_eq!(net.latent_dim(), 1024);
/// let x = Matrix::zeros(2, 784);
/// let xr = net.reconstruct_inference(&x);
/// assert_eq!(xr.shape(), (2, 784));
/// ```
#[derive(Debug)]
pub struct Dcsnet {
    encoder: Dense,
    decoder: Sequential,
    encoder_opt: Optimizer,
    decoder_opt: Optimizer,
    input_dim: usize,
    /// Reusable transposed-weight workspace for the batched encode path
    /// (not a parameter).
    wt_scratch: Matrix,
}

impl Dcsnet {
    /// Builds DCSNet for a dataset kind with the paper's fixed structure.
    #[must_use]
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        let mut rng = OrcoRng::from_label("dcsnet", seed);
        let input_dim = kind.sample_len();
        let out_c = kind.channels();
        let out_side = kind.height();

        let encoder = Dense::new(input_dim, DCSNET_LATENT_DIM, Activation::Sigmoid, &mut rng);

        // 4 convolutional layers over the 1x32x32 latent map, then a crop to
        // the dataset's frame. Channels: 1 -> 16 -> 16 -> 8 -> out_c.
        let mut decoder = Sequential::new();
        decoder.push(Conv2d::new(
            1,
            LATENT_SIDE,
            LATENT_SIDE,
            16,
            3,
            1,
            1,
            Activation::Relu,
            &mut rng,
        ));
        decoder.push(Conv2d::new(
            16,
            LATENT_SIDE,
            LATENT_SIDE,
            16,
            3,
            1,
            1,
            Activation::Relu,
            &mut rng,
        ));
        decoder.push(Conv2d::new(
            16,
            LATENT_SIDE,
            LATENT_SIDE,
            8,
            3,
            1,
            1,
            Activation::Relu,
            &mut rng,
        ));
        decoder.push(Conv2d::new(
            8,
            LATENT_SIDE,
            LATENT_SIDE,
            out_c,
            3,
            1,
            1,
            Activation::Sigmoid,
            &mut rng,
        ));
        decoder.push(Crop2d::new(out_c, LATENT_SIDE, out_side));

        // DCSNet trains with Adam in its reference implementation; keep the
        // same rate scale as OrcoDCS for a fair time-to-loss axis.
        Self {
            encoder,
            decoder,
            encoder_opt: Optimizer::adam(1e-3).with_grad_clip(10.0),
            decoder_opt: Optimizer::adam(1e-3).with_grad_clip(10.0),
            input_dim,
            wt_scratch: Matrix::zeros(0, 0),
        }
    }

    /// The loss DCSNet trains with (plain L2, per its design).
    #[must_use]
    pub fn loss() -> Loss {
        Loss::L2
    }

    /// Total parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.encoder.param_count() + self.decoder.param_count()
    }

    /// One centralized (offline-style) training step on a batch; returns
    /// the batch loss before the update.
    pub fn train_batch_central(&mut self, x: &Matrix, loss: &Loss) -> f32 {
        let latent = self.encoder.forward(x, true);
        let xr = self.decoder.forward(&latent, true);
        let value = loss.value(&xr, x);
        let grad = loss.grad(&xr, x);
        self.decoder.zero_grad();
        let grad_latent = self.decoder.backward(&grad);
        self.decoder_opt.step(self.decoder.params());
        self.encoder.zero_grad();
        let _ = self.encoder.backward(&grad_latent);
        self.encoder_opt.step(self.encoder.params());
        value
    }

    /// Mean reconstruction loss on a batch (inference mode).
    pub fn evaluate(&mut self, x: &Matrix, loss: &Loss) -> f32 {
        let xr = self.reconstruct_inference(x);
        loss.value(&xr, x)
    }
}

/// DCSNet as an experiment backend. Its native [`Codec::train`] is the
/// offline cloud-style scheme DCSNet was designed for: only
/// `data_fraction` of the corpus is accessible (the paper evaluates
/// 30/50/70%) and training is centralized with no per-round network cost.
/// Because DCSNet also implements [`SplitModel`], the pipeline can instead
/// run it through the orchestrated online protocol — the paper's
/// apples-to-apples setting for the time-to-loss comparison.
impl Codec for Dcsnet {
    fn name(&self) -> &'static str {
        "DCSNet"
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn bytes_per_frame(&self) -> u64 {
        (DCSNET_LATENT_DIM * 4) as u64
    }

    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        spec.validate()?;
        if x.rows() == 0 {
            return Err(OrcoError::Config { detail: "training set is empty".into() });
        }
        // One RNG drives both the data subset and the epoch shuffles, like
        // the original offline trainer — seeded runs stay reproducible.
        let mut rng = OrcoRng::from_label("dcsnet-offline", spec.seed);
        let accessible = orcodcs::codec::fraction_rows(x, spec.data_fraction, &mut rng);
        let loss = Dcsnet::loss();
        orcodcs::codec::shuffled_batch_train(
            &accessible,
            spec.epochs,
            spec.batch_size,
            &mut rng,
            |xb| self.train_batch_central(xb, &loss),
        )
    }

    fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), MatView::from_row(frame))?;
        Ok(self.encoder.forward(&Matrix::row_vector(frame), false).into_vec())
    }

    fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), MatView::from_row(code))?;
        Ok(self.decoder.forward(&Matrix::row_vector(code), false).into_vec())
    }

    /// One blocked GEMM + bias broadcast + sigmoid over the whole round
    /// (the fixed 1024-dim dense encoder), into the caller-owned buffer.
    // orco-lint: region(no-alloc)
    fn encode_batch(&mut self, frames: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), frames)?;
        self.encoder.forward_into(frames, &mut self.wt_scratch, out);
        Ok(())
    }
    // orco-lint: endregion

    /// One batch forward of the 4-conv-layer decoder stack instead of a
    /// per-frame loop; the forward pass allocates its result regardless,
    /// so it is moved into `out` rather than copied.
    fn decode_batch(&mut self, codes: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), codes)?;
        let y = codes.to_matrix();
        *out = self.decoder.forward(&y, false);
        Ok(())
    }

    fn loss(&self) -> Loss {
        Dcsnet::loss()
    }

    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        Some(self)
    }

    fn checkpoint(&self) -> Option<EncoderCheckpoint> {
        Some(EncoderCheckpoint {
            weight: self.encoder.weight().clone(),
            bias: self.encoder.bias().clone(),
            label: Codec::name(self).to_string(),
        })
    }
}

impl SplitModel for Dcsnet {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn latent_dim(&self) -> usize {
        DCSNET_LATENT_DIM
    }

    fn aggregator_encode_train(&mut self, x: &Matrix) -> Matrix {
        // DCSNet has no latent-noise mechanism — that is one of the deltas
        // the paper's Figure 5/7 attribute OrcoDCS's robustness to.
        self.encoder.forward(x, true)
    }

    fn edge_decode_train(&mut self, latent: &Matrix) -> Matrix {
        self.decoder.forward(latent, true)
    }

    fn edge_decoder_update(&mut self, grad_reconstruction: &Matrix) -> Matrix {
        self.decoder.zero_grad();
        let grad_latent = self.decoder.backward(grad_reconstruction);
        self.decoder_opt.step(self.decoder.params());
        grad_latent
    }

    fn aggregator_encoder_update(&mut self, grad_latent: &Matrix) {
        self.encoder.zero_grad();
        let _ = self.encoder.backward(grad_latent);
        self.encoder_opt.step(self.encoder.params());
    }

    fn reconstruct_inference(&mut self, x: &Matrix) -> Matrix {
        let latent = self.encoder.forward(x, false);
        self.decoder.forward(&latent, false)
    }

    fn encoder_flops_forward(&self) -> u64 {
        Layer::flops_forward(&self.encoder)
    }

    fn encoder_flops_backward(&self) -> u64 {
        Layer::flops_backward(&self.encoder)
    }

    fn decoder_flops_forward(&self) -> u64 {
        self.decoder.flops_forward()
    }

    fn decoder_flops_backward(&self) -> u64 {
        self.decoder.flops_backward()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::mnist_like;

    #[test]
    fn structure_matches_paper() {
        let net = Dcsnet::new(DatasetKind::MnistLike, 0);
        assert_eq!(net.latent_dim(), 1024);
        assert_eq!(SplitModel::input_dim(&net), 784);
        // 4 conv layers + crop.
        assert!(net.param_count() > 784 * 1024);
    }

    #[test]
    fn gtsrb_shape_roundtrip() {
        let mut net = Dcsnet::new(DatasetKind::GtsrbLike, 0);
        let x = Matrix::zeros(1, 3072);
        let xr = net.reconstruct_inference(&x);
        assert_eq!(xr.shape(), (1, 3072));
    }

    #[test]
    fn central_training_reduces_loss() {
        let mut net = Dcsnet::new(DatasetKind::MnistLike, 1);
        let ds = mnist_like::generate(8, 0);
        let loss = Dcsnet::loss();
        let before = net.evaluate(ds.x(), &loss);
        for _ in 0..5 {
            let _ = net.train_batch_central(ds.x(), &loss);
        }
        let after = net.evaluate(ds.x(), &loss);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn split_and_central_agree() {
        // The SplitModel path runs the same math as the central path.
        let mut a = Dcsnet::new(DatasetKind::MnistLike, 7);
        let mut b = Dcsnet::new(DatasetKind::MnistLike, 7);
        let ds = mnist_like::generate(4, 1);
        let loss = Dcsnet::loss();
        let central = a.train_batch_central(ds.x(), &loss);
        let latent = b.aggregator_encode_train(ds.x());
        let xr = b.edge_decode_train(&latent);
        let split_loss = loss.value(&xr, ds.x());
        let grad = loss.grad(&xr, ds.x());
        let gl = b.edge_decoder_update(&grad);
        b.aggregator_encoder_update(&gl);
        assert_eq!(central, split_loss);
    }

    #[test]
    fn heavier_than_orcodcs() {
        // The fixed 1024-dim latent + conv decoder must cost more FLOPs than
        // OrcoDCS's 128-dim dense autoencoder — the source of Fig. 4's gap.
        let dcs = Dcsnet::new(DatasetKind::MnistLike, 0);
        let cfg = orcodcs::OrcoConfig::for_dataset(DatasetKind::MnistLike);
        let orco = orcodcs::AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(SplitModel::encoder_flops_forward(&dcs) > orco.encoder_flops_forward());
        assert!(SplitModel::decoder_flops_forward(&dcs) > orco.decoder_flops_forward());
    }
}
