//! Orthogonal matching pursuit — the greedy classical CS decoder.
//!
//! Builds the support set one atom at a time (largest residual
//! correlation), re-solving a small least-squares problem at each step.
//! Complements [`crate::cs::ista`]: OMP is faster for very sparse signals
//! but needs the sparsity `k` as input and degrades sharply when `k` is
//! misestimated — another inflexibility of classical CDA.

use orco_tensor::Matrix;

/// Result of an OMP run.
#[derive(Debug, Clone)]
pub struct OmpResult {
    /// Recovered coefficient vector θ (dense, mostly zeros).
    pub coefficients: Vec<f32>,
    /// Selected support indices in selection order.
    pub support: Vec<usize>,
    /// Final residual norm.
    pub residual_norm: f32,
}

/// Solves the dense least-squares system `G·x = b` (G symmetric positive
/// definite) by Gaussian elimination with partial pivoting.
fn solve_spd(g: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "solve_spd: matrix must be square");
    assert_eq!(b.len(), n, "solve_spd: rhs length mismatch");
    // Augmented elimination.
    let mut a: Vec<Vec<f32>> = (0..n)
        .map(|r| {
            let mut row: Vec<f32> = g.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-12 {
            continue; // singular direction; leave zero
        }
        for r in 0..n {
            if r != col {
                let f = a[r][col] / p;
                if f != 0.0 {
                    let (pivot_row, target_row) = if r < col {
                        let (lo, hi) = a.split_at_mut(col);
                        (&hi[0], &mut lo[r])
                    } else {
                        let (lo, hi) = a.split_at_mut(r);
                        (&lo[col], &mut hi[0])
                    };
                    for (t, &pv) in target_row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                        *t -= f * pv;
                    }
                }
            }
        }
    }
    (0..n)
        .map(|r| {
            let p = a[r][r];
            if p.abs() < 1e-12 {
                0.0
            } else {
                a[r][n] / p
            }
        })
        .collect()
}

/// Reusable buffers for repeated OMP solves against one sensing matrix —
/// per-frame, the historical loop materialized a fresh `Aᵀ` (and three
/// more vectors) on **every pursuit iteration**; with the scratch and the
/// `t_matvec_into` kernel those allocations are gone from the batched
/// decode hot loop.
#[derive(Debug, Clone, Default)]
pub struct OmpScratch {
    corr: Vec<f32>,
    residual: Vec<f32>,
    approx: Vec<f32>,
}

/// Recovers a `k`-sparse coefficient vector from `y ≈ Aθ`.
///
/// One-shot convenience over [`omp_reconstruct_with`] with fresh
/// workspaces.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()` or `k` is zero or exceeds `a.rows()`.
#[must_use]
pub fn omp_reconstruct(a: &Matrix, y: &[f32], k: usize) -> OmpResult {
    omp_reconstruct_with(a, y, k, &mut OmpScratch::default())
}

/// The workspace-reusing OMP core: correlations are computed with
/// [`Matrix::t_matvec_into`] (no `Aᵀ` materialization) into buffers that
/// survive across frames. Bit-identical to the historical allocating
/// loop.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()` or `k` is zero or exceeds `a.rows()`.
#[must_use]
pub fn omp_reconstruct_with(a: &Matrix, y: &[f32], k: usize, ws: &mut OmpScratch) -> OmpResult {
    assert_eq!(y.len(), a.rows(), "omp: measurement length mismatch");
    assert!(k > 0 && k <= a.rows(), "omp: k must be in 1..=m");

    let n = a.cols();
    let mut support: Vec<usize> = Vec::with_capacity(k);
    let mut solution: Vec<f32> = Vec::new();
    ws.corr.clear();
    ws.corr.resize(n, 0.0);
    ws.residual.clear();
    ws.residual.extend_from_slice(y);

    for _ in 0..k {
        // Atom with the largest |correlation| to the residual.
        a.t_matvec_into(&ws.residual, &mut ws.corr);
        let best = ws
            .corr
            .iter()
            .enumerate()
            .filter(|(i, _)| !support.contains(i))
            .max_by(|(_, x), (_, z)| x.abs().partial_cmp(&z.abs()).unwrap())
            .map(|(i, _)| i);
        let Some(best) = best else { break };
        if ws.corr[best].abs() < 1e-9 {
            break;
        }
        support.push(best);

        // Least squares on the support: minimize ‖A_S x − y‖.
        let a_s = a.select_cols(&support); // (m, |S|)
        let gram = a_s.t_matmul(&a_s); // (|S|, |S|)
        let rhs = a_s.t_matmul(&Matrix::col_vector(y)).into_vec();
        solution = solve_spd(&gram, &rhs);

        // New residual.
        ws.approx.clear();
        ws.approx.resize(a_s.rows(), 0.0);
        a_s.matvec_into(&solution, &mut ws.approx);
        for ((r, &yi), &ai) in ws.residual.iter_mut().zip(y).zip(&ws.approx) {
            *r = yi - ai;
        }
        let rnorm: f32 = ws.residual.iter().map(|v| v * v).sum::<f32>().sqrt();
        if rnorm < 1e-7 {
            break;
        }
    }

    let mut coefficients = vec![0.0f32; n];
    for (&idx, &val) in support.iter().zip(&solution) {
        coefficients[idx] = val;
    }
    let residual_norm = ws.residual.iter().map(|v| v * v).sum::<f32>().sqrt();
    OmpResult { coefficients, support, residual_norm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_tensor::OrcoRng;

    #[test]
    fn recovers_exactly_sparse_signal() {
        let mut rng = OrcoRng::from_label("omp", 0);
        let (m, n) = (30, 80);
        let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
        let mut theta = vec![0.0f32; n];
        theta[7] = 2.0;
        theta[33] = -1.5;
        theta[61] = 0.8;
        let y = a.matvec(&theta);
        let result = omp_reconstruct(&a, &y, 3);
        let mut sup = result.support.clone();
        sup.sort_unstable();
        assert_eq!(sup, vec![7, 33, 61]);
        for (rec, truth) in result.coefficients.iter().zip(&theta) {
            assert!((rec - truth).abs() < 1e-3, "{rec} vs {truth}");
        }
        assert!(result.residual_norm < 1e-3);
    }

    #[test]
    fn underestimated_sparsity_degrades() {
        let mut rng = OrcoRng::from_label("omp-k", 0);
        let (m, n) = (30, 80);
        let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
        let mut theta = vec![0.0f32; n];
        for i in [5usize, 20, 40, 70] {
            theta[i] = 1.0;
        }
        let y = a.matvec(&theta);
        let full = omp_reconstruct(&a, &y, 4);
        let starved = omp_reconstruct(&a, &y, 1);
        assert!(starved.residual_norm > full.residual_norm * 5.0);
    }

    #[test]
    fn solve_spd_known_system() {
        // [[2,0],[0,4]] x = [2, 8] → x = [1, 2]
        let g = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 4.0]).unwrap();
        let x = solve_spd(&g, &[2.0, 8.0]);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solve_spd_with_pivoting() {
        // Requires a row swap: [[0,1],[1,0]] x = [3, 5] → x = [5, 3]
        let g = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve_spd(&g, &[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-6);
        assert!((x[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_one_shot() {
        let mut rng = OrcoRng::from_label("omp-ws", 0);
        let a = Matrix::from_fn(20, 50, |_, _| rng.normal(0.0, (1.0 / 20.0f32).sqrt()));
        let mut ws = OmpScratch::default();
        for frame in 0..3 {
            let y: Vec<f32> = (0..20).map(|i| ((i * (frame + 2)) as f32 * 0.21).cos()).collect();
            let shared = omp_reconstruct_with(&a, &y, 5, &mut ws);
            let fresh = omp_reconstruct(&a, &y, 5);
            assert_eq!(shared.coefficients, fresh.coefficients, "frame {frame} diverged");
            assert_eq!(shared.support, fresh.support);
            assert_eq!(shared.residual_norm, fresh.residual_norm);
        }
    }

    #[test]
    fn zero_signal_selects_nothing() {
        let mut rng = OrcoRng::from_label("omp-zero", 0);
        let a = Matrix::from_fn(10, 20, |_, _| rng.normal(0.0, 0.3));
        let result = omp_reconstruct(&a, &[0.0; 10], 3);
        assert!(result.support.is_empty());
        assert!(result.coefficients.iter().all(|&c| c == 0.0));
    }
}
