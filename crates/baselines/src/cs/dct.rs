//! 2-D discrete cosine transform (the sparsifying basis Ψ).

use orco_tensor::Matrix;

/// An orthonormal 2-D DCT over `side`×`side` single-channel images.
///
/// Natural images are approximately sparse in this basis, which is what
/// classical CS reconstruction exploits.
///
/// # Examples
///
/// ```
/// use orco_baselines::cs::Dct2;
///
/// let dct = Dct2::new(8);
/// let img: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
/// let coeffs = dct.forward(&img);
/// let back = dct.inverse(&coeffs);
/// for (a, b) in img.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-4);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Dct2 {
    side: usize,
    basis: Matrix, // orthonormal 1-D DCT-II matrix, (side, side)
}

impl Dct2 {
    /// Builds the transform for `side`×`side` images.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    #[must_use]
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "Dct2: side must be non-zero");
        let n = side as f32;
        let basis = Matrix::from_fn(side, side, |k, i| {
            let scale = if k == 0 { (1.0 / n).sqrt() } else { (2.0 / n).sqrt() };
            scale * (std::f32::consts::PI * (i as f32 + 0.5) * k as f32 / n).cos()
        });
        Self { side, basis }
    }

    /// Image side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Forward 2-D DCT: image (row-major, `side²` values) → coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != side²`.
    #[must_use]
    pub fn forward(&self, image: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(self.side, self.side, image.to_vec())
            .expect("Dct2::forward: image length must be side²");
        // C = B · X · Bᵀ
        self.basis.matmul(&x).matmul_t(&self.basis).into_vec()
    }

    /// Inverse 2-D DCT: coefficients → image.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != side²`.
    #[must_use]
    pub fn inverse(&self, coeffs: &[f32]) -> Vec<f32> {
        let c = Matrix::from_vec(self.side, self.side, coeffs.to_vec())
            .expect("Dct2::inverse: coefficient length must be side²");
        // X = Bᵀ · C · B
        self.basis.t_matmul(&c).matmul(&self.basis).into_vec()
    }

    /// The full `side²`×`side²` synthesis matrix `Ψ` such that
    /// `image = Ψ · coeffs` (materialized for solver use).
    ///
    /// Column `k` of `Ψ` is the image of the `k`-th canonical coefficient.
    #[must_use]
    pub fn synthesis_matrix(&self) -> Matrix {
        let n = self.side * self.side;
        let mut psi = Matrix::zeros(n, n);
        let mut unit = vec![0.0f32; n];
        for k in 0..n {
            unit[k] = 1.0;
            let img = self.inverse(&unit);
            for (r, &v) in img.iter().enumerate() {
                psi.set(r, k, v);
            }
            unit[k] = 0.0;
        }
        psi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal() {
        let dct = Dct2::new(8);
        let eye = dct.basis.matmul_t(&dct.basis);
        assert!(eye.approx_eq(&Matrix::identity(8), 1e-5));
    }

    #[test]
    fn roundtrip_is_exact() {
        let dct = Dct2::new(16);
        let img: Vec<f32> = (0..256).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let back = dct.inverse(&dct.forward(&img));
        for (a, b) in img.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_image_concentrates_in_dc() {
        let dct = Dct2::new(8);
        let img = vec![1.0f32; 64];
        let coeffs = dct.forward(&img);
        // All energy at (0,0); everything else ~0.
        assert!(coeffs[0].abs() > 7.9);
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-4));
    }

    #[test]
    fn smooth_images_are_sparse() {
        // A smooth gradient should compact most energy into few coefficients.
        let dct = Dct2::new(16);
        let img: Vec<f32> = (0..256).map(|i| (i / 16) as f32 / 16.0).collect();
        let coeffs = dct.forward(&img);
        let total: f32 = coeffs.iter().map(|c| c * c).sum();
        let mut sorted: Vec<f32> = coeffs.iter().map(|c| c * c).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top8: f32 = sorted.iter().take(8).sum();
        assert!(top8 / total > 0.99, "top-8 energy fraction {}", top8 / total);
    }

    #[test]
    fn synthesis_matrix_matches_inverse() {
        let dct = Dct2::new(4);
        let psi = dct.synthesis_matrix();
        let coeffs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let via_matrix = psi.matvec(&coeffs);
        let via_inverse = dct.inverse(&coeffs);
        for (a, b) in via_matrix.iter().zip(&via_inverse) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
