//! Random Gaussian measurement matrices (the classical CS encoder Φ).

use orco_tensor::{Matrix, OrcoRng};

/// An `m × n` random Gaussian measurement operator with `N(0, 1/m)` entries
/// (the normalization that makes `Φ` approximately norm-preserving, i.e.
/// satisfy the restricted isometry property with high probability).
#[derive(Debug, Clone)]
pub struct GaussianMeasurement {
    phi: Matrix,
}

impl GaussianMeasurement {
    /// Samples a measurement matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `n == 0`, or `m > n` (measurements must
    /// compress).
    #[must_use]
    pub fn new(m: usize, n: usize, rng: &mut OrcoRng) -> Self {
        assert!(m > 0 && n > 0, "GaussianMeasurement: zero dimension");
        assert!(m <= n, "GaussianMeasurement: m={m} must be ≤ n={n}");
        let std = (1.0 / m as f32).sqrt();
        let phi = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, std));
        Self { phi }
    }

    /// Number of measurements `m`.
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.phi.rows()
    }

    /// Signal dimension `n`.
    #[must_use]
    pub fn signal_dim(&self) -> usize {
        self.phi.cols()
    }

    /// The matrix Φ.
    #[must_use]
    pub fn phi(&self) -> &Matrix {
        &self.phi
    }

    /// Measures a signal: `y = Φx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    #[must_use]
    pub fn measure(&self, x: &[f32]) -> Vec<f32> {
        self.phi.matvec(x)
    }

    /// The effective sensing matrix `A = Φ·Ψ` for a synthesis basis Ψ.
    ///
    /// # Panics
    ///
    /// Panics if `psi.rows() != n`.
    #[must_use]
    pub fn sensing_matrix(&self, psi: &Matrix) -> Matrix {
        self.phi.matmul(psi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_preservation_on_average() {
        let mut rng = OrcoRng::from_label("meas", 0);
        // E‖Φx‖² = ‖x‖² under the 1/m scaling. A single 128×256 draw can
        // deviate by > 20%, so check the mean ratio over several draws.
        let x: Vec<f32> = (0..256).map(|i| ((i * 31 % 17) as f32 / 17.0) - 0.5).collect();
        let nx: f32 = x.iter().map(|v| v * v).sum();
        let trials = 8;
        let mean_ratio: f32 = (0..trials)
            .map(|_| {
                let gm = GaussianMeasurement::new(128, 256, &mut rng);
                let ny: f32 = gm.measure(&x).iter().map(|v| v * v).sum();
                ny / nx
            })
            .sum::<f32>()
            / trials as f32;
        assert!((mean_ratio - 1.0).abs() < 0.2, "mean ratio {mean_ratio}");
    }

    #[test]
    fn deterministic_given_rng() {
        let mut a = OrcoRng::from_label("meas-det", 0);
        let mut b = OrcoRng::from_label("meas-det", 0);
        assert_eq!(
            GaussianMeasurement::new(4, 16, &mut a).phi(),
            GaussianMeasurement::new(4, 16, &mut b).phi()
        );
    }

    #[test]
    #[should_panic(expected = "must be ≤")]
    fn rejects_expanding_measurement() {
        let mut rng = OrcoRng::from_label("meas-bad", 0);
        let _ = GaussianMeasurement::new(20, 10, &mut rng);
    }
}
