//! Classical compressed sensing packaged as an experiment backend.
//!
//! [`ClassicalCodec`] wires the pieces of this module into one
//! [`orcodcs::Codec`]: a random Gaussian measurement operator `Φ`
//! ([`GaussianMeasurement`]) encodes each channel of a frame, and
//! reconstruction solves the sparse recovery problem in the 2-D DCT basis
//! ([`Dct2`]) with either [`ista_reconstruct_with`] or
//! [`omp_reconstruct_with`].
//!
//! The backend is deliberately faithful to the drawbacks the paper's
//! introduction cites for traditional CDA: there is **nothing to train**
//! (`train` is a no-op — the operator is data-independent), decoding is
//! **computationally intensive** (hundreds of matrix iterations per frame
//! instead of one decoder forward pass), and quality is **limited by the
//! measurement dimension** `m`.
//!
//! The batched data plane exploits what *is* fixed about the stack:
//! `Φᵀ` is materialized once at construction so `encode_batch` is one
//! blocked GEMM per channel, the ISTA Lipschitz constant is estimated
//! once per operator instead of once per frame, and both solvers reuse
//! workspaces across the frames of a round ([`IstaScratch`] /
//! [`OmpScratch`]) — all bit-identical to the per-frame loop.

use orco_datasets::DatasetKind;
use orco_tensor::{MatView, Matrix, OrcoRng};
use orcodcs::{Codec, OrcoError, TrainSpec, TrainingHistory};

use crate::cs::dct::Dct2;
use crate::cs::ista::{
    ista_reconstruct_with, lipschitz_estimate, IstaConfig, IstaScratch, LIPSCHITZ_POWER_ITERS,
};
use crate::cs::measurement::GaussianMeasurement;
use crate::cs::omp::{omp_reconstruct_with, OmpScratch};

/// Which sparse-recovery decoder the codec runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CsSolver {
    /// Iterative shrinkage-thresholding (convex ℓ₁ relaxation).
    Ista(IstaConfig),
    /// Orthogonal matching pursuit with the given sparsity budget.
    Omp {
        /// Number of DCT atoms the greedy pursuit may select.
        sparsity: usize,
    },
}

/// The classical `Φ` + DCT + ISTA/OMP stack behind the [`Codec`] interface.
///
/// Colour frames are processed per channel: every channel of an
/// `C × side × side` frame is measured by the same `m × side²` operator, so
/// one encoded frame is `C · m` values.
///
/// # Examples
///
/// ```
/// use orco_baselines::cs::{ClassicalCodec, CsSolver};
/// use orco_datasets::DatasetKind;
/// use orcodcs::Codec;
///
/// let mut codec = ClassicalCodec::new(
///     DatasetKind::MnistLike,
///     128,
///     CsSolver::Omp { sparsity: 32 },
///     0,
/// );
/// assert_eq!(codec.name(), "DCT+OMP");
/// assert_eq!(codec.code_len(), 128);
/// let frame = vec![0.5f32; 784];
/// let code = codec.encode_frame(&frame)?;
/// assert_eq!(code.len(), 128);
/// assert_eq!(codec.decode_frame(&code)?.len(), 784);
/// # Ok::<(), orcodcs::OrcoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalCodec {
    channels: usize,
    side: usize,
    dct: Dct2,
    phi: GaussianMeasurement,
    /// Cached `Φᵀ`: the operator is data-independent and never retrained,
    /// so the batched encode GEMM streams this once per round.
    phi_t: Matrix,
    /// Cached sensing matrix `A = Φ·Ψ` the solvers run against.
    sensing: Matrix,
    /// Cached ISTA Lipschitz estimate of `sensing` (0 for OMP) — computed
    /// with the same [`LIPSCHITZ_POWER_ITERS`] the one-shot solver uses
    /// per frame, so caching is bit-neutral.
    ista_l: f32,
    solver: CsSolver,
    // Round-persistent workspaces for the batched paths.
    ista_ws: IstaScratch,
    omp_ws: OmpScratch,
    chan_scratch: Matrix,
    code_scratch: Matrix,
}

impl ClassicalCodec {
    /// Builds the stack for a dataset kind with `measurements` rows of `Φ`
    /// per channel.
    ///
    /// # Panics
    ///
    /// Panics if `measurements` is zero or exceeds the per-channel pixel
    /// count (a measurement must compress).
    #[must_use]
    pub fn new(kind: DatasetKind, measurements: usize, solver: CsSolver, seed: u64) -> Self {
        let side = kind.height();
        let dct = Dct2::new(side);
        let mut rng = OrcoRng::from_label("classical-codec", seed);
        let phi = GaussianMeasurement::new(measurements, side * side, &mut rng);
        let phi_t = phi.phi().transpose();
        let sensing = phi.sensing_matrix(&dct.synthesis_matrix());
        let ista_l = match solver {
            CsSolver::Ista(_) => lipschitz_estimate(&sensing, LIPSCHITZ_POWER_ITERS),
            CsSolver::Omp { .. } => 0.0,
        };
        Self {
            channels: kind.channels(),
            side,
            dct,
            phi,
            phi_t,
            sensing,
            ista_l,
            solver,
            ista_ws: IstaScratch::default(),
            omp_ws: OmpScratch::default(),
            chan_scratch: Matrix::zeros(0, 0),
            code_scratch: Matrix::zeros(0, 0),
        }
    }

    /// Measurements per channel `m`.
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.phi.measurements()
    }

    /// The configured solver.
    #[must_use]
    pub fn solver(&self) -> CsSolver {
        self.solver
    }

    fn pixels_per_channel(&self) -> usize {
        self.side * self.side
    }

    /// Solves one channel's recovery problem and writes the reconstructed
    /// pixels into `out_px`. Shared by the per-frame and batched decode
    /// paths, so the two are bit-identical by construction.
    fn decode_channel(&mut self, y: &[f32], out_px: &mut [f32]) {
        let m = self.measurements();
        let pixels = match self.solver {
            CsSolver::Ista(config) => {
                let _ = ista_reconstruct_with(
                    &self.sensing,
                    self.ista_l,
                    y,
                    &config,
                    &mut self.ista_ws,
                );
                self.dct.inverse(&self.ista_ws.theta)
            }
            CsSolver::Omp { sparsity } => {
                let result =
                    omp_reconstruct_with(&self.sensing, y, sparsity.clamp(1, m), &mut self.omp_ws);
                self.dct.inverse(&result.coefficients)
            }
        };
        out_px.copy_from_slice(&pixels);
    }
}

impl Codec for ClassicalCodec {
    fn name(&self) -> &'static str {
        match self.solver {
            CsSolver::Ista(_) => "DCT+ISTA",
            CsSolver::Omp { .. } => "DCT+OMP",
        }
    }

    fn input_dim(&self) -> usize {
        self.channels * self.pixels_per_channel()
    }

    fn bytes_per_frame(&self) -> u64 {
        (self.channels * self.measurements() * 4) as u64
    }

    /// Classical CS has no parameters to fit: the measurement operator is
    /// random and the basis is fixed. Returns an empty history.
    fn train(&mut self, _x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        spec.validate()?;
        Ok(TrainingHistory::default())
    }

    fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), MatView::from_row(frame))?;
        let hw = self.pixels_per_channel();
        let mut code = Vec::with_capacity(self.channels * self.measurements());
        for c in 0..self.channels {
            code.extend(self.phi.measure(&frame[c * hw..(c + 1) * hw]));
        }
        Ok(code)
    }

    fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), MatView::from_row(code))?;
        let m = self.measurements();
        let hw = self.pixels_per_channel();
        let mut frame = vec![0.0f32; self.channels * hw];
        for c in 0..self.channels {
            self.decode_channel(&code[c * m..(c + 1) * m], &mut frame[c * hw..(c + 1) * hw]);
        }
        Ok(frame)
    }

    /// One blocked GEMM against the cached `Φᵀ` per channel — the
    /// single-channel case runs zero-copy from the frame view straight
    /// into `out`.
    fn encode_batch(&mut self, frames: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), frames)?;
        let (m, hw) = (self.measurements(), self.pixels_per_channel());
        let rows = frames.rows();
        out.reset(rows, self.channels * m);
        if self.channels == 1 {
            frames.matmul_into(self.phi_t.as_view(), out.as_view_mut());
            return Ok(());
        }
        for c in 0..self.channels {
            // Gather the channel block (strided across rows) into the
            // round-persistent scratch, then one GEMM for the whole round.
            self.chan_scratch.reset(rows, hw);
            for r in 0..rows {
                self.chan_scratch.row_mut(r).copy_from_slice(&frames.row(r)[c * hw..(c + 1) * hw]);
            }
            self.code_scratch.reset(rows, m);
            self.chan_scratch
                .as_view()
                .matmul_into(self.phi_t.as_view(), self.code_scratch.as_view_mut());
            for r in 0..rows {
                out.row_mut(r)[c * m..(c + 1) * m].copy_from_slice(self.code_scratch.row(r));
            }
        }
        Ok(())
    }

    /// Per-frame solves (ISTA/OMP are inherently sequential per code
    /// column), but against the cached operator/Lipschitz constant and
    /// round-persistent workspaces — no allocation per solver iteration.
    fn decode_batch(&mut self, codes: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), codes)?;
        let (m, hw) = (self.measurements(), self.pixels_per_channel());
        out.reset(codes.rows(), self.channels * hw);
        for r in 0..codes.rows() {
            for c in 0..self.channels {
                let y = &codes.row(r)[c * m..(c + 1) * m];
                self.decode_channel(y, &mut out.row_mut(r)[c * hw..(c + 1) * hw]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::{gtsrb_like, mnist_like};
    use orco_tensor::stats;

    fn ista_codec(m: usize) -> ClassicalCodec {
        ClassicalCodec::new(
            DatasetKind::MnistLike,
            m,
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 150, tol: 1e-5 }),
            0,
        )
    }

    #[test]
    fn roundtrip_recovers_smooth_images() {
        let ds = mnist_like::generate(2, 0);
        let mut codec = ista_codec(256);
        let frame = ds.sample(0);
        let code = codec.encode_frame(frame).unwrap();
        assert_eq!(code.len(), 256);
        let recon = codec.decode_frame(&code).unwrap();
        let psnr = stats::psnr(frame, &recon, 1.0);
        assert!(psnr > 10.0, "256-measurement ISTA PSNR {psnr} too low");
    }

    #[test]
    fn more_measurements_reconstruct_better() {
        // The paper's dimension-limited-quality critique, through the codec.
        let ds = mnist_like::generate(1, 1);
        let frame = ds.sample(0);
        let psnr_for = |m: usize| {
            let mut codec = ista_codec(m);
            let code = codec.clone().encode_frame(frame).unwrap();
            let recon = codec.decode_frame(&code).unwrap();
            stats::psnr(frame, &recon, 1.0)
        };
        assert!(psnr_for(256) > psnr_for(32), "quality must grow with m");
    }

    #[test]
    fn colour_frames_process_per_channel() {
        let ds = gtsrb_like::generate(1, 0);
        let mut codec =
            ClassicalCodec::new(DatasetKind::GtsrbLike, 64, CsSolver::Omp { sparsity: 16 }, 0);
        assert_eq!(codec.input_dim(), 3072);
        assert_eq!(codec.code_len(), 3 * 64);
        assert_eq!(codec.bytes_per_frame(), 3 * 64 * 4);
        let code = codec.clone().encode_frame(ds.sample(0)).unwrap();
        let recon = codec.decode_frame(&code).unwrap();
        assert_eq!(recon.len(), 3072);
        assert!(recon.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batched_paths_bit_identical_to_per_frame_for_colour() {
        // 3-channel frames exercise the gather/scatter encode path and the
        // per-channel decode loop.
        let ds = gtsrb_like::generate(3, 1);
        let mut codec =
            ClassicalCodec::new(DatasetKind::GtsrbLike, 32, CsSolver::Omp { sparsity: 8 }, 0);
        let mut codes = Matrix::zeros(0, 0);
        codec.encode_batch(ds.x().as_view(), &mut codes).unwrap();
        let mut recon = Matrix::zeros(0, 0);
        codec.decode_batch(codes.as_view(), &mut recon).unwrap();
        for r in 0..ds.len() {
            let code = codec.encode_frame(ds.sample(r)).unwrap();
            assert_eq!(codes.row(r), &code[..], "encode row {r} diverged");
            let frame = codec.decode_frame(&code).unwrap();
            assert_eq!(recon.row(r), &frame[..], "decode row {r} diverged");
        }
    }

    #[test]
    fn shape_errors_are_typed() {
        let mut codec = ista_codec(64);
        assert!(matches!(
            codec.encode_frame(&[0.0; 5]),
            Err(OrcoError::Shape { what: "frame", expected: 784, actual: 5, .. })
        ));
        assert!(matches!(
            codec.decode_frame(&[0.0; 5]),
            Err(OrcoError::Shape { what: "code", expected: 64, actual: 5, .. })
        ));
    }

    #[test]
    fn training_is_a_noop() {
        let ds = mnist_like::generate(4, 2);
        let mut codec = ista_codec(64);
        let history = codec.train(ds.x(), &TrainSpec::default()).unwrap();
        assert!(history.rounds.is_empty());
        assert!(Codec::split_model(&mut codec).is_none(), "nothing to orchestrate");
        assert!(Codec::checkpoint(&codec).is_none(), "nothing to persist");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClassicalCodec::new(DatasetKind::MnistLike, 32, CsSolver::Omp { sparsity: 8 }, 7);
        let b = ClassicalCodec::new(DatasetKind::MnistLike, 32, CsSolver::Omp { sparsity: 8 }, 7);
        assert_eq!(a.phi.phi(), b.phi.phi());
        assert_eq!(a.phi_t, b.phi_t, "cached transpose tracks the operator");
    }
}
