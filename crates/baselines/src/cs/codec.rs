//! Classical compressed sensing packaged as an experiment backend.
//!
//! [`ClassicalCodec`] wires the pieces of this module into one
//! [`orcodcs::Codec`]: a random Gaussian measurement operator `Φ`
//! ([`GaussianMeasurement`]) encodes each channel of a frame, and
//! reconstruction solves the sparse recovery problem in the 2-D DCT basis
//! ([`Dct2`]) with either [`ista_reconstruct`] or [`omp_reconstruct`].
//!
//! The backend is deliberately faithful to the drawbacks the paper's
//! introduction cites for traditional CDA: there is **nothing to train**
//! (`train` is a no-op — the operator is data-independent), decoding is
//! **computationally intensive** (hundreds of matrix iterations per frame
//! instead of one decoder forward pass), and quality is **limited by the
//! measurement dimension** `m`.

use orco_datasets::DatasetKind;
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{Codec, OrcoError, TrainSpec, TrainingHistory};

use crate::cs::dct::Dct2;
use crate::cs::ista::{ista_reconstruct, IstaConfig};
use crate::cs::measurement::GaussianMeasurement;
use crate::cs::omp::omp_reconstruct;

/// Which sparse-recovery decoder the codec runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CsSolver {
    /// Iterative shrinkage-thresholding (convex ℓ₁ relaxation).
    Ista(IstaConfig),
    /// Orthogonal matching pursuit with the given sparsity budget.
    Omp {
        /// Number of DCT atoms the greedy pursuit may select.
        sparsity: usize,
    },
}

/// The classical `Φ` + DCT + ISTA/OMP stack behind the [`Codec`] interface.
///
/// Colour frames are processed per channel: every channel of an
/// `C × side × side` frame is measured by the same `m × side²` operator, so
/// one encoded frame is `C · m` values.
///
/// # Examples
///
/// ```
/// use orco_baselines::cs::{ClassicalCodec, CsSolver};
/// use orco_datasets::DatasetKind;
/// use orcodcs::Codec;
///
/// let mut codec = ClassicalCodec::new(
///     DatasetKind::MnistLike,
///     128,
///     CsSolver::Omp { sparsity: 32 },
///     0,
/// );
/// assert_eq!(codec.name(), "DCT+OMP");
/// assert_eq!(codec.code_len(), 128);
/// let frame = vec![0.5f32; 784];
/// let code = codec.encode_frame(&frame);
/// assert_eq!(code.len(), 128);
/// assert_eq!(codec.decode_frame(&code).len(), 784);
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalCodec {
    channels: usize,
    side: usize,
    dct: Dct2,
    phi: GaussianMeasurement,
    /// Cached sensing matrix `A = Φ·Ψ` the solvers run against.
    sensing: Matrix,
    solver: CsSolver,
}

impl ClassicalCodec {
    /// Builds the stack for a dataset kind with `measurements` rows of `Φ`
    /// per channel.
    ///
    /// # Panics
    ///
    /// Panics if `measurements` is zero or exceeds the per-channel pixel
    /// count (a measurement must compress).
    #[must_use]
    pub fn new(kind: DatasetKind, measurements: usize, solver: CsSolver, seed: u64) -> Self {
        let side = kind.height();
        let dct = Dct2::new(side);
        let mut rng = OrcoRng::from_label("classical-codec", seed);
        let phi = GaussianMeasurement::new(measurements, side * side, &mut rng);
        let sensing = phi.sensing_matrix(&dct.synthesis_matrix());
        Self { channels: kind.channels(), side, dct, phi, sensing, solver }
    }

    /// Measurements per channel `m`.
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.phi.measurements()
    }

    /// The configured solver.
    #[must_use]
    pub fn solver(&self) -> CsSolver {
        self.solver
    }

    fn pixels_per_channel(&self) -> usize {
        self.side * self.side
    }
}

impl Codec for ClassicalCodec {
    fn name(&self) -> &'static str {
        match self.solver {
            CsSolver::Ista(_) => "DCT+ISTA",
            CsSolver::Omp { .. } => "DCT+OMP",
        }
    }

    fn input_dim(&self) -> usize {
        self.channels * self.pixels_per_channel()
    }

    fn bytes_per_frame(&self) -> u64 {
        (self.channels * self.measurements() * 4) as u64
    }

    /// Classical CS has no parameters to fit: the measurement operator is
    /// random and the basis is fixed. Returns an empty history.
    fn train(&mut self, _x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        spec.validate()?;
        Ok(TrainingHistory::default())
    }

    fn encode_frame(&mut self, frame: &[f32]) -> Vec<f32> {
        assert_eq!(frame.len(), self.input_dim(), "encode_frame: frame length mismatch");
        let hw = self.pixels_per_channel();
        let mut code = Vec::with_capacity(self.channels * self.measurements());
        for c in 0..self.channels {
            code.extend(self.phi.measure(&frame[c * hw..(c + 1) * hw]));
        }
        code
    }

    fn decode_frame(&mut self, code: &[f32]) -> Vec<f32> {
        let m = self.measurements();
        assert_eq!(code.len(), self.channels * m, "decode_frame: code length mismatch");
        let hw = self.pixels_per_channel();
        let mut frame = Vec::with_capacity(self.channels * hw);
        for c in 0..self.channels {
            let y = &code[c * m..(c + 1) * m];
            let coefficients = match self.solver {
                CsSolver::Ista(config) => ista_reconstruct(&self.sensing, y, &config).coefficients,
                CsSolver::Omp { sparsity } => {
                    omp_reconstruct(&self.sensing, y, sparsity.clamp(1, m)).coefficients
                }
            };
            frame.extend(self.dct.inverse(&coefficients));
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::{gtsrb_like, mnist_like};
    use orco_tensor::stats;

    fn ista_codec(m: usize) -> ClassicalCodec {
        ClassicalCodec::new(
            DatasetKind::MnistLike,
            m,
            CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 150, tol: 1e-5 }),
            0,
        )
    }

    #[test]
    fn roundtrip_recovers_smooth_images() {
        let ds = mnist_like::generate(2, 0);
        let mut codec = ista_codec(256);
        let frame = ds.sample(0);
        let code = codec.encode_frame(frame);
        assert_eq!(code.len(), 256);
        let recon = codec.decode_frame(&code);
        let psnr = stats::psnr(frame, &recon, 1.0);
        assert!(psnr > 10.0, "256-measurement ISTA PSNR {psnr} too low");
    }

    #[test]
    fn more_measurements_reconstruct_better() {
        // The paper's dimension-limited-quality critique, through the codec.
        let ds = mnist_like::generate(1, 1);
        let frame = ds.sample(0);
        let psnr_for = |m: usize| {
            let mut codec = ista_codec(m);
            let recon = codec.decode_frame(&codec.clone().encode_frame(frame));
            stats::psnr(frame, &recon, 1.0)
        };
        assert!(psnr_for(256) > psnr_for(32), "quality must grow with m");
    }

    #[test]
    fn colour_frames_process_per_channel() {
        let ds = gtsrb_like::generate(1, 0);
        let mut codec =
            ClassicalCodec::new(DatasetKind::GtsrbLike, 64, CsSolver::Omp { sparsity: 16 }, 0);
        assert_eq!(codec.input_dim(), 3072);
        assert_eq!(codec.code_len(), 3 * 64);
        assert_eq!(codec.bytes_per_frame(), 3 * 64 * 4);
        let recon = codec.decode_frame(&codec.clone().encode_frame(ds.sample(0)));
        assert_eq!(recon.len(), 3072);
        assert!(recon.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_is_a_noop() {
        let ds = mnist_like::generate(4, 2);
        let mut codec = ista_codec(64);
        let history = codec.train(ds.x(), &TrainSpec::default()).unwrap();
        assert!(history.rounds.is_empty());
        assert!(Codec::split_model(&mut codec).is_none(), "nothing to orchestrate");
        assert!(Codec::checkpoint(&codec).is_none(), "nothing to persist");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClassicalCodec::new(DatasetKind::MnistLike, 32, CsSolver::Omp { sparsity: 8 }, 7);
        let b = ClassicalCodec::new(DatasetKind::MnistLike, 32, CsSolver::Omp { sparsity: 8 }, 7);
        assert_eq!(a.phi.phi(), b.phi.phi());
    }
}
