//! Traditional compressed sensing — the pre-deep-learning CDA the paper's
//! introduction argues against.
//!
//! The classical pipeline: measure `y = Φx` with a random Gaussian matrix
//! `Φ` (no training needed), then reconstruct by exploiting sparsity of `x`
//! in a transform basis `Ψ` (here the 2-D DCT): solve
//! `min ‖θ‖₁ s.t. ΦΨθ ≈ y` with a convex solver. Two reference solvers are
//! provided: [`ista`] (iterative shrinkage-thresholding) and [`omp`]
//! (orthogonal matching pursuit, greedy).
//!
//! The paper's critique is implemented verbatim by this module's behaviour:
//! the decoders are **computationally intensive** (hundreds of matrix
//! iterations per image vs one forward pass for a learned decoder) and
//! quality is **limited by the dimension and sparsity of measurements** —
//! both measurable with the benches in `orco-bench`.

pub mod codec;
pub mod dct;
pub mod ista;
pub mod measurement;
pub mod omp;

pub use codec::{ClassicalCodec, CsSolver};
pub use dct::Dct2;
pub use ista::{
    ista_reconstruct, ista_reconstruct_with, lipschitz_estimate, IstaConfig, IstaScratch,
    LIPSCHITZ_POWER_ITERS,
};
pub use measurement::GaussianMeasurement;
pub use omp::{omp_reconstruct, omp_reconstruct_with, OmpScratch};
