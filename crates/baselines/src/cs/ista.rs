//! ISTA — iterative shrinkage-thresholding for `ℓ₁`-regularized
//! reconstruction.
//!
//! Solves `min_θ ½‖Aθ − y‖² + λ‖θ‖₁` by gradient steps followed by
//! soft-thresholding. This is the convex-optimization decoder of
//! traditional CDA whose cost the paper's introduction calls
//! "computationally intensive": every reconstructed image pays hundreds of
//! `m×n` matrix products, vs a single forward pass for a learned decoder.

use orco_tensor::Matrix;

/// ISTA solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IstaConfig {
    /// ℓ₁ weight λ.
    pub lambda: f32,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when the coefficient update's ∞-norm falls below this.
    pub tol: f32,
}

impl Default for IstaConfig {
    fn default() -> Self {
        Self { lambda: 0.01, max_iters: 200, tol: 1e-5 }
    }
}

/// Result of an ISTA run.
#[derive(Debug, Clone)]
pub struct IstaResult {
    /// Recovered coefficient vector θ.
    pub coefficients: Vec<f32>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final residual `‖Aθ − y‖₂`.
    pub residual_norm: f32,
}

/// Reusable buffers for repeated ISTA solves against one sensing matrix —
/// the batched data plane decodes hundreds of frames per round, and these
/// make every solve after the first allocation-free. The recovered
/// coefficients land in [`IstaScratch::theta`].
#[derive(Debug, Clone, Default)]
pub struct IstaScratch {
    /// Coefficient vector θ (the solver's output, length `a.cols()`).
    pub theta: Vec<f32>,
    /// Residual workspace `Aθ − y` (length `a.rows()`).
    pub residual: Vec<f32>,
    /// Gradient workspace `Aᵀ(Aθ − y)` (length `a.cols()`).
    pub grad: Vec<f32>,
}

/// Power-iteration count both [`ista_reconstruct`] and operator-caching
/// callers use for [`lipschitz_estimate`]. One shared constant: the
/// batched/per-frame bit-identity contract depends on the cached and
/// per-frame estimates being the same value.
pub const LIPSCHITZ_POWER_ITERS: usize = 30;

/// Estimates the Lipschitz constant `L = ‖AᵀA‖₂` by power iteration.
///
/// Public so callers decoding many frames against one operator (the
/// batched codec path) can pay it once per matrix instead of once per
/// frame; the per-frame [`ista_reconstruct`] computes the same value
/// internally (both pass [`LIPSCHITZ_POWER_ITERS`]), so caching it is
/// bit-neutral.
#[must_use]
pub fn lipschitz_estimate(a: &Matrix, iters: usize) -> f32 {
    let n = a.cols();
    let mut v = vec![1.0f32 / (n as f32).sqrt(); n];
    let mut av = vec![0.0f32; a.rows()];
    let mut w = vec![0.0f32; n];
    let mut norm = 1.0f32;
    for _ in 0..iters {
        // w = Aᵀ(Av)
        a.matvec_into(&v, &mut av);
        a.t_matvec_into(&av, &mut w);
        norm = w.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            return 1.0;
        }
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
    }
    norm.max(1e-6)
}

fn soft_threshold(x: f32, t: f32) -> f32 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Recovers sparse coefficients from measurements `y ≈ Aθ`.
///
/// One-shot convenience over [`ista_reconstruct_with`]: estimates the
/// Lipschitz constant and allocates fresh workspaces per call.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`.
#[must_use]
pub fn ista_reconstruct(a: &Matrix, y: &[f32], config: &IstaConfig) -> IstaResult {
    let l = lipschitz_estimate(a, LIPSCHITZ_POWER_ITERS);
    let mut ws = IstaScratch::default();
    let (iterations, residual_norm) = ista_reconstruct_with(a, l, y, config, &mut ws);
    IstaResult { coefficients: ws.theta, iterations, residual_norm }
}

/// The workspace-reusing ISTA core: `lipschitz_l` is the caller-cached
/// [`lipschitz_estimate`] of `a`, and every buffer lives in `ws` (θ is
/// left in [`IstaScratch::theta`]). All matrix products run through the
/// `_into` kernels — no allocation per iteration, and no `Aᵀ`
/// materialization — with results bit-identical to the historical
/// allocating loop. Returns `(iterations, residual_norm)`.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`.
pub fn ista_reconstruct_with(
    a: &Matrix,
    lipschitz_l: f32,
    y: &[f32],
    config: &IstaConfig,
    ws: &mut IstaScratch,
) -> (usize, f32) {
    assert_eq!(y.len(), a.rows(), "ista: measurement length mismatch");
    let step = 1.0 / lipschitz_l;
    let thresh = config.lambda * step;

    ws.theta.clear();
    ws.theta.resize(a.cols(), 0.0);
    ws.residual.clear();
    ws.residual.resize(a.rows(), 0.0);
    ws.grad.clear();
    ws.grad.resize(a.cols(), 0.0);

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        // gradient of the quadratic: Aᵀ(Aθ − y)
        a.matvec_into(&ws.theta, &mut ws.residual);
        for (r, &yi) in ws.residual.iter_mut().zip(y) {
            *r -= yi;
        }
        a.t_matvec_into(&ws.residual, &mut ws.grad);
        let mut max_delta = 0.0f32;
        for (t, g) in ws.theta.iter_mut().zip(&ws.grad) {
            let new = soft_threshold(*t - step * g, thresh);
            max_delta = max_delta.max((new - *t).abs());
            *t = new;
        }
        if max_delta < config.tol {
            break;
        }
    }
    a.matvec_into(&ws.theta, &mut ws.residual);
    for (r, &yi) in ws.residual.iter_mut().zip(y) {
        *r -= yi;
    }
    let residual_norm = ws.residual.iter().map(|v| v * v).sum::<f32>().sqrt();
    (iterations, residual_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_tensor::OrcoRng;

    /// Builds a k-sparse signal, measures it, and checks ISTA recovers it.
    #[test]
    fn recovers_sparse_signal() {
        let mut rng = OrcoRng::from_label("ista", 0);
        let (m, n, k) = (40, 100, 4);
        let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
        let mut theta = vec![0.0f32; n];
        for i in [3usize, 27, 55, 90].iter().take(k) {
            theta[*i] = 1.0 + (*i as f32) * 0.01;
        }
        let y = a.matvec(&theta);
        let result =
            ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.005, max_iters: 2000, tol: 1e-7 });
        for (i, (rec, truth)) in result.coefficients.iter().zip(&theta).enumerate() {
            assert!((rec - truth).abs() < 0.12, "coef {i}: {rec} vs {truth}");
        }
        assert!(result.residual_norm < 0.1);
    }

    #[test]
    fn zero_measurements_give_zero() {
        let mut rng = OrcoRng::from_label("ista-zero", 0);
        let a = Matrix::from_fn(10, 30, |_, _| rng.normal(0.0, 0.3));
        let result = ista_reconstruct(&a, &[0.0; 10], &IstaConfig::default());
        assert!(result.coefficients.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn fewer_measurements_worse_recovery() {
        // The paper's point: quality is limited by the measurement dimension.
        let mut rng = OrcoRng::from_label("ista-m", 1);
        let n = 100;
        let mut theta = vec![0.0f32; n];
        for i in [5usize, 40, 77] {
            theta[i] = 1.0;
        }
        let err_for_m = |m: usize, rng: &mut OrcoRng| -> f32 {
            let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
            let y = a.matvec(&theta);
            let r =
                ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.005, max_iters: 1500, tol: 1e-7 });
            r.coefficients.iter().zip(&theta).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt()
        };
        let err_rich = err_for_m(60, &mut rng);
        let err_poor = err_for_m(8, &mut rng);
        assert!(err_poor > err_rich * 2.0, "poor {err_poor} vs rich {err_rich}");
    }

    #[test]
    fn soft_threshold_properties() {
        assert_eq!(soft_threshold(5.0, 1.0), 4.0);
        assert_eq!(soft_threshold(-5.0, 1.0), -4.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn lipschitz_upper_bounds_gram_diagonal() {
        let mut rng = OrcoRng::from_label("ista-lip", 0);
        let a = Matrix::from_fn(20, 50, |_, _| rng.normal(0.0, 0.2));
        let l = lipschitz_estimate(&a, 40);
        // L must be ≥ the largest column norm² of A.
        let max_col: f32 =
            (0..50).map(|c| a.col_iter(c).map(|v| v * v).sum::<f32>()).fold(0.0, f32::max);
        assert!(l >= max_col * 0.99, "L={l} max_col={max_col}");
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_one_shot() {
        // Decoding many frames against one operator with a shared scratch
        // (the batched codec path) must reproduce the per-frame
        // convenience wrapper exactly, frame after frame.
        let mut rng = OrcoRng::from_label("ista-ws", 0);
        let a = Matrix::from_fn(24, 60, |_, _| rng.normal(0.0, (1.0 / 24.0f32).sqrt()));
        let l = lipschitz_estimate(&a, 30);
        let config = IstaConfig { lambda: 0.01, max_iters: 80, tol: 1e-6 };
        let mut ws = IstaScratch::default();
        for frame in 0..3 {
            let y: Vec<f32> = (0..24).map(|i| ((i + frame) as f32 * 0.3).sin()).collect();
            let (iters, rnorm) = ista_reconstruct_with(&a, l, &y, &config, &mut ws);
            let fresh = ista_reconstruct(&a, &y, &config);
            assert_eq!(ws.theta, fresh.coefficients, "frame {frame} diverged");
            assert_eq!(iters, fresh.iterations);
            assert_eq!(rnorm, fresh.residual_norm);
        }
    }
}
