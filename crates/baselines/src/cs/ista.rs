//! ISTA — iterative shrinkage-thresholding for `ℓ₁`-regularized
//! reconstruction.
//!
//! Solves `min_θ ½‖Aθ − y‖² + λ‖θ‖₁` by gradient steps followed by
//! soft-thresholding. This is the convex-optimization decoder of
//! traditional CDA whose cost the paper's introduction calls
//! "computationally intensive": every reconstructed image pays hundreds of
//! `m×n` matrix products, vs a single forward pass for a learned decoder.

use orco_tensor::Matrix;

/// ISTA solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IstaConfig {
    /// ℓ₁ weight λ.
    pub lambda: f32,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when the coefficient update's ∞-norm falls below this.
    pub tol: f32,
}

impl Default for IstaConfig {
    fn default() -> Self {
        Self { lambda: 0.01, max_iters: 200, tol: 1e-5 }
    }
}

/// Result of an ISTA run.
#[derive(Debug, Clone)]
pub struct IstaResult {
    /// Recovered coefficient vector θ.
    pub coefficients: Vec<f32>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final residual `‖Aθ − y‖₂`.
    pub residual_norm: f32,
}

/// Estimates the Lipschitz constant `L = ‖AᵀA‖₂` by power iteration.
fn lipschitz(a: &Matrix, iters: usize) -> f32 {
    let n = a.cols();
    let mut v = vec![1.0f32 / (n as f32).sqrt(); n];
    let mut norm = 1.0f32;
    for _ in 0..iters {
        // w = Aᵀ(Av)
        let av = a.matvec(&v);
        let w = a.transpose().matvec(&av);
        norm = w.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            return 1.0;
        }
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
    }
    norm.max(1e-6)
}

fn soft_threshold(x: f32, t: f32) -> f32 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Recovers sparse coefficients from measurements `y ≈ Aθ`.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`.
#[must_use]
pub fn ista_reconstruct(a: &Matrix, y: &[f32], config: &IstaConfig) -> IstaResult {
    assert_eq!(y.len(), a.rows(), "ista: measurement length mismatch");
    let l = lipschitz(a, 30);
    let step = 1.0 / l;
    let thresh = config.lambda * step;
    let at = a.transpose();

    let mut theta = vec![0.0f32; a.cols()];
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        // gradient of the quadratic: Aᵀ(Aθ − y)
        let mut residual = a.matvec(&theta);
        for (r, &yi) in residual.iter_mut().zip(y) {
            *r -= yi;
        }
        let grad = at.matvec(&residual);
        let mut max_delta = 0.0f32;
        for (t, g) in theta.iter_mut().zip(&grad) {
            let new = soft_threshold(*t - step * g, thresh);
            max_delta = max_delta.max((new - *t).abs());
            *t = new;
        }
        if max_delta < config.tol {
            break;
        }
    }
    let mut residual = a.matvec(&theta);
    for (r, &yi) in residual.iter_mut().zip(y) {
        *r -= yi;
    }
    let residual_norm = residual.iter().map(|v| v * v).sum::<f32>().sqrt();
    IstaResult { coefficients: theta, iterations, residual_norm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_tensor::OrcoRng;

    /// Builds a k-sparse signal, measures it, and checks ISTA recovers it.
    #[test]
    fn recovers_sparse_signal() {
        let mut rng = OrcoRng::from_label("ista", 0);
        let (m, n, k) = (40, 100, 4);
        let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
        let mut theta = vec![0.0f32; n];
        for i in [3usize, 27, 55, 90].iter().take(k) {
            theta[*i] = 1.0 + (*i as f32) * 0.01;
        }
        let y = a.matvec(&theta);
        let result =
            ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.005, max_iters: 2000, tol: 1e-7 });
        for (i, (rec, truth)) in result.coefficients.iter().zip(&theta).enumerate() {
            assert!((rec - truth).abs() < 0.12, "coef {i}: {rec} vs {truth}");
        }
        assert!(result.residual_norm < 0.1);
    }

    #[test]
    fn zero_measurements_give_zero() {
        let mut rng = OrcoRng::from_label("ista-zero", 0);
        let a = Matrix::from_fn(10, 30, |_, _| rng.normal(0.0, 0.3));
        let result = ista_reconstruct(&a, &[0.0; 10], &IstaConfig::default());
        assert!(result.coefficients.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn fewer_measurements_worse_recovery() {
        // The paper's point: quality is limited by the measurement dimension.
        let mut rng = OrcoRng::from_label("ista-m", 1);
        let n = 100;
        let mut theta = vec![0.0f32; n];
        for i in [5usize, 40, 77] {
            theta[i] = 1.0;
        }
        let err_for_m = |m: usize, rng: &mut OrcoRng| -> f32 {
            let a = Matrix::from_fn(m, n, |_, _| rng.normal(0.0, (1.0 / m as f32).sqrt()));
            let y = a.matvec(&theta);
            let r =
                ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.005, max_iters: 1500, tol: 1e-7 });
            r.coefficients.iter().zip(&theta).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt()
        };
        let err_rich = err_for_m(60, &mut rng);
        let err_poor = err_for_m(8, &mut rng);
        assert!(err_poor > err_rich * 2.0, "poor {err_poor} vs rich {err_rich}");
    }

    #[test]
    fn soft_threshold_properties() {
        assert_eq!(soft_threshold(5.0, 1.0), 4.0);
        assert_eq!(soft_threshold(-5.0, 1.0), -4.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn lipschitz_upper_bounds_gram_diagonal() {
        let mut rng = OrcoRng::from_label("ista-lip", 0);
        let a = Matrix::from_fn(20, 50, |_, _| rng.normal(0.0, 0.2));
        let l = lipschitz(&a, 40);
        // L must be ≥ the largest column norm² of A.
        let max_col: f32 =
            (0..50).map(|c| a.col(c).iter().map(|v| v * v).sum::<f32>()).fold(0.0, f32::max);
        assert!(l >= max_col * 0.99, "L={l} max_col={max_col}");
    }
}
