//! Fleet-aware clients: the typed directory conversation
//! ([`DirectoryClient`]) and a TCP data-plane client that bootstraps from
//! the directory, caches the assignment table, and chases redirects
//! ([`FleetClient`]).

use std::collections::HashMap;

use orco_serve::fleet_view::owner_of;
use orco_serve::protocol::{GatewayStats, Message};
use orco_serve::stats::StatsSnapshot;
use orco_serve::{
    auth, Client, Connection, FleetView, GatewayEntry, GatewayInfo, PushOutcome, Tcp,
    TcpConnection, Transport,
};
use orco_tensor::{MatView, Matrix};
use orcodcs::OrcoError;

/// A typed client for the directory half of the protocol, over any
/// [`Connection`] (loopback, TCP, DES).
#[derive(Debug)]
pub struct DirectoryClient<C: Connection> {
    conn: C,
}

impl<C: Connection> DirectoryClient<C> {
    /// Opens a connection through `transport`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when the directory is unreachable.
    pub fn connect<T: Transport<Conn = C>>(transport: &T) -> Result<Self, OrcoError> {
        Ok(Self { conn: transport.connect()? })
    }

    /// Wraps an already-open connection.
    pub fn from_connection(conn: C) -> Self {
        Self { conn }
    }

    /// Fetches the current `(epoch, members)` assignment table.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn query(&mut self) -> Result<(u64, Vec<GatewayEntry>), OrcoError> {
        match self.conn.request(&Message::DirectoryQuery)? {
            Message::DirectoryReply { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected("DirectoryReply", &other)),
        }
    }

    /// Registers gateway `gateway_id` at `addr`, MAC'd with `secret` when
    /// the directory is keyed. Returns the post-registration table.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and authentication
    /// rejections.
    pub fn register(
        &mut self,
        gateway_id: u64,
        addr: &str,
        secret: Option<u64>,
    ) -> Result<(u64, Vec<GatewayEntry>), OrcoError> {
        let nonce = gateway_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x666C_6565;
        let mac = secret.map_or(0, |s| auth::register_mac(s, gateway_id, addr, nonce));
        let msg = Message::Register { gateway_id, addr: addr.to_string(), nonce, mac };
        match self.conn.request(&msg)? {
            Message::RegisterAck { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected("RegisterAck", &other)),
        }
    }

    /// Sends one heartbeat for `gateway_id`, optionally piggybacking the
    /// gateway's stats snapshot into the directory's fleet view. `Ok`
    /// carries the current table; an eviction surfaces as an error
    /// telling the caller to re-register.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and eviction.
    pub fn heartbeat(
        &mut self,
        gateway_id: u64,
        epoch: u64,
        stats: Option<StatsSnapshot>,
    ) -> Result<(u64, Vec<GatewayEntry>), OrcoError> {
        match self.conn.request(&Message::Heartbeat { gateway_id, epoch, stats })? {
            Message::HeartbeatAck { epoch, members } => Ok((epoch, members)),
            other => Err(unexpected("HeartbeatAck", &other)),
        }
    }

    /// Fetches the directory's aggregated fleet view: `(epoch,
    /// evictions, per-gateway stats)`, evicted gateways frozen with
    /// `alive = false`.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn fleet_stats(&mut self) -> Result<(u64, u64, Vec<GatewayStats>), OrcoError> {
        match self.conn.request(&Message::FleetStatsQuery)? {
            Message::FleetStatsReply { epoch, evictions, gateways } => {
                Ok((epoch, evictions, gateways))
            }
            other => Err(unexpected("FleetStatsReply", &other)),
        }
    }

    /// Asks the directory to stop admitting gateways and exit.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn shutdown(&mut self) -> Result<(), OrcoError> {
        match self.conn.request(&Message::Shutdown)? {
            Message::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(expected: &str, got: &Message) -> OrcoError {
    match got {
        Message::ErrorReply { code, detail } => OrcoError::Config {
            detail: format!("directory rejected the request ({code:?}): {detail}"),
        },
        other => OrcoError::Config {
            detail: format!("protocol violation: expected {expected}, got {}", other.kind()),
        },
    }
}

/// How many redirect/refresh rounds one push may burn before the client
/// declares the fleet unstable. Each round is either a redirect chase or
/// a directory refresh; a settled fleet resolves in one.
const MAX_CHASES: usize = 8;

/// A TCP data-plane client for a whole fleet: bootstraps the assignment
/// table from the directory, routes every push/pull to the owner it
/// computes locally, and on [`PushOutcome::Redirected`] refreshes or
/// chases to the named owner — a stale epoch costs one extra round trip,
/// never a misrouted frame.
#[derive(Debug)]
pub struct FleetClient {
    directory: DirectoryClient<TcpConnection>,
    client_id: u64,
    auth_secret: Option<u64>,
    view: FleetView,
    /// One data connection per gateway address, opened lazily.
    conns: HashMap<String, Client<TcpConnection>>,
    /// The geometry each greeted gateway announced.
    infos: HashMap<String, GatewayInfo>,
    /// Rows pushed per gateway address (the per-gateway throughput
    /// ledger `loadgen --fleet` reports).
    pushed_rows: HashMap<String, u64>,
    redirects_chased: u64,
}

impl FleetClient {
    /// Connects to the directory at `directory_addr` and bootstraps the
    /// assignment table. `auth_secret` MACs the `Hello` to each gateway.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when the directory is unreachable and
    /// [`OrcoError::Config`] when it answers with an empty fleet.
    pub fn connect(
        directory_addr: &str,
        client_id: u64,
        auth_secret: Option<u64>,
    ) -> Result<Self, OrcoError> {
        let mut directory = DirectoryClient::connect(&Tcp::new(directory_addr))?;
        let (epoch, members) = directory.query()?;
        if members.is_empty() {
            return Err(OrcoError::Config {
                detail: format!(
                    "directory at {directory_addr} has no registered gateways (epoch {epoch})"
                ),
            });
        }
        Ok(Self {
            directory,
            client_id,
            auth_secret,
            view: FleetView::new(None, epoch, members),
            conns: HashMap::new(),
            infos: HashMap::new(),
            pushed_rows: HashMap::new(),
            redirects_chased: 0,
        })
    }

    /// The epoch of the cached assignment table.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.view.epoch
    }

    /// Redirects chased (or table refreshes forced) so far.
    #[must_use]
    pub fn redirects_chased(&self) -> u64 {
        self.redirects_chased
    }

    /// The cached membership table, ascending by gateway id.
    #[must_use]
    pub fn members(&self) -> &[GatewayEntry] {
        &self.view.members
    }

    /// Rows pushed per gateway address, ascending by address.
    #[must_use]
    pub fn pushed_rows_by_gateway(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<_> = self.pushed_rows.iter().map(|(a, &n)| (a.clone(), n)).collect();
        rows.sort();
        rows
    }

    /// The address of the gateway the cached table assigns `cluster_id`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] when the table is empty.
    pub fn owner_addr(&self, cluster_id: u64) -> Result<String, OrcoError> {
        match owner_of(&self.view.members, cluster_id) {
            Some(owner) => Ok(owner.addr.clone()),
            None => Err(OrcoError::Config {
                detail: format!("no owner for cluster {cluster_id}: the fleet is empty"),
            }),
        }
    }

    /// Re-fetches the assignment table from the directory.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn refresh(&mut self) -> Result<(), OrcoError> {
        let (epoch, members) = self.directory.query()?;
        self.view = FleetView::new(None, epoch, members);
        Ok(())
    }

    /// Pushes `frames` for `cluster_id` to its owner, chasing redirects:
    /// a `Redirect` at a newer epoch refreshes the table first, then the
    /// push retries against the named owner. Returns the terminal
    /// [`PushOutcome`] (`Accepted` or `Busy` — `Redirected` is consumed
    /// here) and the address that took the frames.
    ///
    /// # Errors
    ///
    /// Transport failures, gateway rejections, and fleets that keep
    /// redirecting past `MAX_CHASES` (8) rounds.
    pub fn push(
        &mut self,
        cluster_id: u64,
        frames: MatView<'_>,
    ) -> Result<(PushOutcome, String), OrcoError> {
        let mut addr = self.owner_addr(cluster_id)?;
        for _ in 0..MAX_CHASES {
            let outcome = self.data_client(&addr)?.push(cluster_id, frames)?;
            match outcome {
                PushOutcome::Redirected { epoch, addr: owner } => {
                    self.redirects_chased += 1;
                    if epoch > self.view.epoch {
                        self.refresh()?;
                    }
                    // Trust the redirecting gateway over a (possibly
                    // still-stale) directory answer: it named an owner.
                    addr = owner;
                }
                outcome @ (PushOutcome::Accepted(_) | PushOutcome::Busy { .. }) => {
                    if let PushOutcome::Accepted(n) = outcome {
                        *self.pushed_rows.entry(addr.clone()).or_insert(0) += u64::from(n);
                    }
                    return Ok((outcome, addr));
                }
            }
        }
        Err(OrcoError::Config {
            detail: format!(
                "cluster {cluster_id}: still redirected after {MAX_CHASES} rounds — the \
                 fleet is rebalancing faster than it settles"
            ),
        })
    }

    /// Pulls up to `max_frames` decoded rows for `cluster_id` from the
    /// gateway at `addr` (pulls are served where the rows are stored, so
    /// the caller names the gateway — typically the address
    /// [`FleetClient::push`] returned).
    ///
    /// # Errors
    ///
    /// Transport failures and gateway rejections.
    pub fn pull_from(
        &mut self,
        addr: &str,
        cluster_id: u64,
        max_frames: u32,
    ) -> Result<Matrix, OrcoError> {
        self.data_client(addr)?.pull(cluster_id, max_frames)
    }

    /// The geometry the gateway at `addr` announced in its `HelloAck`
    /// (dialing and greeting it first if needed).
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and authentication
    /// rejections.
    pub fn info_of(&mut self, addr: &str) -> Result<GatewayInfo, OrcoError> {
        self.data_client(addr)?;
        Ok(self.infos[addr])
    }

    /// Fetches the stats snapshot of the gateway at `addr`.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn stats_of(&mut self, addr: &str) -> Result<orco_serve::StatsSnapshot, OrcoError> {
        self.data_client(addr)?.stats()
    }

    /// Scrapes the metrics text exposition of the gateway at `addr`.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn metrics_of(&mut self, addr: &str) -> Result<String, OrcoError> {
        self.data_client(addr)?.metrics()
    }

    /// Fetches the directory's aggregated fleet view (see
    /// [`DirectoryClient::fleet_stats`]).
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn fleet_stats(&mut self) -> Result<(u64, u64, Vec<GatewayStats>), OrcoError> {
        self.directory.fleet_stats()
    }

    /// Asks the gateway at `addr` to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn shutdown_gateway(&mut self, addr: &str) -> Result<(), OrcoError> {
        self.data_client(addr)?.shutdown()
    }

    /// Asks the directory to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn shutdown_directory(&mut self) -> Result<(), OrcoError> {
        self.directory.shutdown()
    }

    /// The cached (or freshly dialed and greeted) data connection to
    /// `addr`.
    fn data_client(&mut self, addr: &str) -> Result<&mut Client<TcpConnection>, OrcoError> {
        if !self.conns.contains_key(addr) {
            let mut client = Client::connect(&Tcp::new(addr))?;
            client.set_auth_secret(self.auth_secret);
            let info = client.hello(self.client_id)?;
            self.conns.insert(addr.to_string(), client);
            self.infos.insert(addr.to_string(), info);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }
}
