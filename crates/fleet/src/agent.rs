//! The gateway-side fleet agent: registers a gateway with the directory,
//! heartbeats it on a background thread, and feeds every epoch change
//! back into the gateway's [`FleetView`] so its redirect decisions track
//! the directory's table.
//!
//! The agent is the TCP-deployment face of membership; DES scenarios
//! script the same register/heartbeat conversation as simulation actors
//! instead (`crate::scenarios`).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orco_serve::{FleetView, Gateway, GatewayEntry, Tcp};
use orcodcs::OrcoError;

use crate::client::DirectoryClient;

/// What a [`GatewayAgent`] needs to join a fleet.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// This gateway's fleet-wide id.
    pub gateway_id: u64,
    /// The address clients should dial this gateway at (what the
    /// directory advertises).
    pub advertise_addr: String,
    /// The directory's address.
    pub directory_addr: String,
    /// Shared secret MAC'ing `Register` (must match the directory's).
    pub auth_secret: Option<u64>,
    /// Heartbeat cadence; keep it a small fraction of the directory's
    /// `heartbeat_timeout`.
    pub heartbeat_interval: Duration,
}

/// A running fleet agent; joins its thread on [`GatewayAgent::join`].
#[derive(Debug)]
pub struct GatewayAgent {
    handle: Option<JoinHandle<()>>,
}

impl GatewayAgent {
    /// Registers `gateway` with the directory (installing the returned
    /// table as the gateway's [`FleetView`]) and spawns the heartbeat
    /// thread. The thread re-registers after an eviction and exits when
    /// the gateway starts shutting down.
    ///
    /// # Errors
    ///
    /// Returns the initial registration's failure (unreachable directory,
    /// MAC rejection); later heartbeat failures are retried, not fatal.
    pub fn spawn(gateway: Arc<Gateway>, cfg: AgentConfig) -> Result<Self, OrcoError> {
        let mut directory = DirectoryClient::connect(&Tcp::new(&cfg.directory_addr))?;
        let (epoch, members) =
            directory.register(cfg.gateway_id, &cfg.advertise_addr, cfg.auth_secret)?;
        install_view(&gateway, cfg.gateway_id, epoch, members);
        let handle = std::thread::Builder::new()
            .name(format!("orco-fleet-agent-{}", cfg.gateway_id))
            .spawn(move || heartbeat_loop(&gateway, &mut directory, &cfg))?;
        Ok(Self { handle: Some(handle) })
    }

    /// Joins the heartbeat thread (returns once the gateway shuts down).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn install_view(gateway: &Gateway, self_id: u64, epoch: u64, members: Vec<GatewayEntry>) {
    gateway.set_fleet_view(Some(FleetView::new(Some(self_id), epoch, members)));
}

fn heartbeat_loop(
    gateway: &Arc<Gateway>,
    directory: &mut DirectoryClient<orco_serve::TcpConnection>,
    cfg: &AgentConfig,
) {
    let mut epoch = gateway.fleet_view().map_or(0, |v| v.epoch);
    while !gateway.is_shutting_down() {
        std::thread::sleep(cfg.heartbeat_interval);
        // Piggyback the live stats snapshot so the directory's fleet
        // view stays a heartbeat fresh.
        let beat =
            directory.heartbeat(cfg.gateway_id, epoch, Some(gateway.stats())).or_else(|_| {
                // Evicted (slept through the timeout) or the directory
                // connection dropped: re-dial and re-register.
                *directory = DirectoryClient::connect(&Tcp::new(&cfg.directory_addr))?;
                directory.register(cfg.gateway_id, &cfg.advertise_addr, cfg.auth_secret)
            });
        match beat {
            Ok((new_epoch, members)) => {
                if new_epoch != epoch {
                    epoch = new_epoch;
                    install_view(gateway, cfg.gateway_id, new_epoch, members);
                }
            }
            Err(_) => {
                // Directory unreachable; keep the last view and retry on
                // the next beat.
            }
        }
    }
}
