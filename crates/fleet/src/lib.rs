//! # orco-fleet
//!
//! The fleet layer of the OrcoDCS reproduction: a **cluster directory
//! service** that scales the `orco-serve` gateway from one process to a
//! fleet, with client redirects, epoch'd rebalancing, and deterministic
//! chaos scenarios for the whole ensemble.
//!
//! The division of labor:
//!
//! * [`Directory`] — the membership authority. Gateways register
//!   (MAC-gated, [`orco_serve::auth`]) and heartbeat; silence past the
//!   timeout evicts them. Every membership change bumps an **epoch**.
//!   The directory never computes assignments: rendezvous hashing
//!   ([`orco_serve::fleet_view`]) lets every party derive the owner of
//!   any cluster locally from `(epoch, members)`.
//! * [`GatewayAgent`] — the gateway-side thread that registers,
//!   heartbeats, and feeds every epoch change into the gateway's
//!   [`orco_serve::FleetView`], so a push for a cluster the gateway no
//!   longer owns draws [`orco_serve::Message::Redirect`] instead of a
//!   silent misroute.
//! * [`FleetClient`] — the client side: bootstraps the table from the
//!   directory, routes pushes to locally-computed owners, and chases
//!   redirects. A stale epoch costs one extra round trip, never a
//!   misdelivered frame.
//! * [`run_fleet_scenario`] — the fleet gauntlet: directory + four
//!   gateways + six clients over the [`orco_serve::DesNet`] impaired-link
//!   simulation, with a scripted mid-run gateway kill and join, pinned to
//!   exactly-once delivery and bit-identical decode
//!   (`cargo run -p orco-rollout --bin chaos`).
//!
//! ## Quickstart (in-process directory)
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use orco_fleet::{Directory, DirectoryConfig, DirectoryClient};
//! use orco_serve::{Clock, Loopback};
//!
//! let directory = Arc::new(Directory::new(
//!     DirectoryConfig::default(),
//!     Clock::manual(Duration::ZERO),
//! )?);
//!
//! // Loopback serves any Service — the directory included.
//! let mut admin = DirectoryClient::connect(&Loopback::new(Arc::clone(&directory)))?;
//! let (epoch, members) = admin.register(1, "10.0.0.1:7200", None)?;
//! assert_eq!((epoch, members.len()), (1, 1));
//!
//! let (epoch, members) = admin.query()?;
//! assert_eq!((epoch, members[0].addr.as_str()), (1, "10.0.0.1:7200"));
//! # Ok::<(), orcodcs::OrcoError>(())
//! ```
//!
//! For a full TCP fleet (directory + gateways + agents in one process),
//! see the `fleet_gateway` example at the workspace root and
//! `loadgen --fleet`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod client;
pub mod directory;
pub mod scenarios;

pub use agent::{AgentConfig, GatewayAgent};
pub use client::{DirectoryClient, FleetClient};
pub use directory::{Directory, DirectoryConfig};
pub use scenarios::{replay_fleet_scenario, run_fleet_scenario, FleetOutcome, FLEET_GAUNTLET};
