//! TCP load generator for an `orco-serve` gateway — or a whole
//! `orco-fleet` of them.
//!
//! Spawns N client threads, each owning one cluster: every client pushes
//! M synthetic frames (`--rows-per-push` per message), then drains its
//! decoded reconstructions in `--pull-chunk` chunks, honoring `Busy`
//! backpressure with a capped-exponential, deterministically-jittered
//! backoff (per-client seed from `--seed`, so N clients never retry in
//! lockstep). At the end one control connection prints the gateway's
//! stats snapshot and (with `--shutdown`) asks the gateway to exit.
//!
//! With `--fleet <directory_addr>` the generator bootstraps from the
//! fleet directory instead of dialing one gateway: each client fetches
//! the epoch'd assignment table, routes every push to the owner it
//! computes locally, **chases redirects** when its table goes stale, and
//! the final report breaks throughput down **per gateway**. Keyed fleets
//! take `--auth-secret`.
//!
//! Pair it with the `edge_gateway` or `fleet_gateway` examples:
//!
//! ```sh
//! cargo run --release --example edge_gateway &
//! cargo run --release -p orco-fleet --bin loadgen -- --clients 2 --frames 64 --shutdown
//!
//! cargo run --release --example fleet_gateway &
//! cargo run --release -p orco-fleet --bin loadgen -- \
//!     --fleet 127.0.0.1:7300 --clients 4 --frames 64 --shutdown
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use orco_fleet::FleetClient;
use orco_serve::{Backoff, Client, PushOutcome, Tcp, TcpConnection};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::OrcoError;

struct Args {
    addr: String,
    /// `Some(directory_addr)` switches to fleet mode.
    fleet: Option<String>,
    auth_secret: Option<u64>,
    clients: usize,
    frames: usize,
    rows_per_push: usize,
    pull_chunk: u32,
    shutdown: bool,
    connect_timeout: Duration,
    seed: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:7117".into(),
            fleet: None,
            auth_secret: None,
            clients: 2,
            frames: 64,
            rows_per_push: 1,
            pull_chunk: 64,
            shutdown: false,
            connect_timeout: Duration::from_secs(10),
            seed: 0xC0FFEE,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr"),
                "--fleet" => args.fleet = Some(value("--fleet")),
                "--auth-secret" => {
                    let v = value("--auth-secret");
                    let parsed = v
                        .strip_prefix("0x")
                        .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                    args.auth_secret = Some(parsed.expect("u64 (decimal or 0x-hex)"));
                }
                "--clients" => args.clients = value("--clients").parse().expect("usize"),
                "--frames" => args.frames = value("--frames").parse().expect("usize"),
                "--rows-per-push" => {
                    args.rows_per_push = value("--rows-per-push").parse().expect("usize");
                }
                "--pull-chunk" => args.pull_chunk = value("--pull-chunk").parse().expect("u32"),
                "--connect-timeout-s" => {
                    args.connect_timeout =
                        Duration::from_secs(value("--connect-timeout-s").parse().expect("u64"));
                }
                "--shutdown" => args.shutdown = true,
                "--seed" => args.seed = value("--seed").parse().expect("u64"),
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: loadgen [--addr HOST:PORT | --fleet \
                         HOST:PORT] [--auth-secret N] [--clients N] [--frames M] \
                         [--rows-per-push R] [--pull-chunk K] [--connect-timeout-s S] \
                         [--seed N] [--shutdown]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(args.clients > 0 && args.frames > 0 && args.rows_per_push > 0);
        assert!(args.pull_chunk > 0);
        args
    }
}

/// Dials until the gateway answers or the timeout elapses — the gateway
/// may still be starting when loadgen launches (CI runs them in
/// parallel).
fn connect_with_retry(
    transport: &Tcp,
    timeout: Duration,
) -> Result<Client<TcpConnection>, OrcoError> {
    let start = Instant::now();
    loop {
        match Client::connect(transport) {
            Ok(client) => return Ok(client),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fleet bootstrap with the same patience: the directory may still be
/// starting, and the gateways may not have registered yet (an empty
/// fleet is a retryable condition here).
fn fleet_connect_with_retry(
    directory_addr: &str,
    client_id: u64,
    auth_secret: Option<u64>,
    timeout: Duration,
) -> Result<FleetClient, OrcoError> {
    let start = Instant::now();
    loop {
        match FleetClient::connect(directory_addr, client_id, auth_secret) {
            Ok(fleet) => return Ok(fleet),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

fn run_client(args: &Args, id: usize) -> Result<(usize, usize), OrcoError> {
    let transport = Tcp::new(args.addr.clone());
    let mut client = connect_with_retry(&transport, args.connect_timeout)?;
    client.set_auth_secret(args.auth_secret);
    let info = client.hello(id as u64)?;
    let cluster = 1000 + id as u64;
    let mut rng = OrcoRng::from_seed_u64(args.seed ^ id as u64);
    let frames =
        Matrix::from_fn(args.frames, info.frame_dim as usize, |_, _| rng.uniform(0.0, 1.0));
    // Per-client seed: N clients hitting the same saturated shard back
    // off on decorrelated schedules instead of retrying in lockstep.
    let mut backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(64), args.seed ^ id as u64);

    let mut pushed = 0usize;
    let mut pulled = 0usize;
    while pushed < args.frames {
        let hi = (pushed + args.rows_per_push).min(args.frames);
        match client.push(cluster, frames.view_rows(pushed..hi))? {
            PushOutcome::Accepted(n) => {
                pushed += n as usize;
                backoff.reset();
            }
            PushOutcome::Busy { .. } => {
                // Backpressure: drain some decoded output, then retry
                // after a jittered, exponentially growing wait.
                pulled += client.pull(cluster, args.pull_chunk)?.rows();
                std::thread::sleep(backoff.next_delay());
            }
            PushOutcome::Redirected { epoch, addr } => {
                return Err(OrcoError::Config {
                    detail: format!(
                        "gateway redirected cluster {cluster} to {addr} (epoch {epoch}); \
                         this gateway is part of a fleet — use --fleet <directory_addr>"
                    ),
                });
            }
        }
    }
    while pulled < args.frames {
        let got = client.pull(cluster, args.pull_chunk)?.rows();
        if got == 0 {
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        pulled += got;
        backoff.reset();
    }
    Ok((pushed, pulled))
}

/// What one fleet client reports back: frames pushed, frames pulled,
/// redirects chased, and its per-gateway pushed-row ledger.
type FleetClientReport = (usize, usize, u64, Vec<(String, u64)>);

/// One fleet client's run: push windows to directory-computed owners
/// (redirects chased inside [`FleetClient::push`]), drain each window
/// from the gateway that accepted it before offering the next.
fn run_fleet_client(
    args: &Args,
    directory_addr: &str,
    id: usize,
) -> Result<FleetClientReport, OrcoError> {
    let mut fleet = fleet_connect_with_retry(
        directory_addr,
        id as u64,
        args.auth_secret,
        args.connect_timeout,
    )?;
    let cluster = 1000 + id as u64;
    let mut rng = OrcoRng::from_seed_u64(args.seed ^ id as u64);
    let owner = fleet.owner_addr(cluster)?;
    let frame_dim = fleet.info_of(&owner)?.frame_dim as usize;
    let frames = Matrix::from_fn(args.frames, frame_dim, |_, _| rng.uniform(0.0, 1.0));
    let mut backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(64), args.seed ^ id as u64);

    let mut pushed = 0usize;
    let mut pulled = 0usize;
    while pushed < args.frames {
        let hi = (pushed + args.rows_per_push).min(args.frames);
        let (outcome, addr) = fleet.push(cluster, frames.view_rows(pushed..hi))?;
        match outcome {
            PushOutcome::Accepted(n) => {
                pushed += n as usize;
                backoff.reset();
                // Drain this window where it landed before the next push:
                // a later rebalance must never strand undrained rows.
                while pulled < pushed {
                    let got = fleet.pull_from(&addr, cluster, args.pull_chunk)?.rows();
                    if got == 0 {
                        std::thread::sleep(backoff.next_delay());
                        continue;
                    }
                    pulled += got;
                    backoff.reset();
                }
            }
            PushOutcome::Busy { .. } => {
                pulled += fleet.pull_from(&addr, cluster, args.pull_chunk)?.rows();
                std::thread::sleep(backoff.next_delay());
            }
            PushOutcome::Redirected { .. } => {
                unreachable!("FleetClient::push consumes redirects")
            }
        }
    }
    Ok((pushed, pulled, fleet.redirects_chased(), fleet.pushed_rows_by_gateway()))
}

fn main() {
    let args = Args::parse();
    match args.fleet.clone() {
        Some(directory_addr) => fleet_main(&args, &directory_addr),
        None => single_main(&args),
    }
}

fn single_main(args: &Args) {
    println!(
        "loadgen: {} client(s) x {} frames -> {} (rows/push {}, pull chunk {})",
        args.clients, args.frames, args.addr, args.rows_per_push, args.pull_chunk
    );

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..args.clients).map(|id| scope.spawn(move || run_client(args, id))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = 0usize;
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok((pushed, pulled)) => {
                println!("  client {id}: pushed {pushed}, pulled {pulled}");
                total += pulled;
            }
            Err(e) => {
                eprintln!("  client {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "loadgen: {total} frames served end-to-end in {elapsed:.3}s ({:.0} frames/s)",
        total as f64 / elapsed
    );

    let transport = Tcp::new(args.addr.clone());
    let mut control = connect_with_retry(&transport, args.connect_timeout).expect("control conn");
    print_stats(&args.addr, control.stats());
    if args.shutdown {
        control.shutdown().expect("shutdown accepted");
        println!("loadgen: gateway shutdown requested");
    }
}

fn fleet_main(args: &Args, directory_addr: &str) {
    println!(
        "loadgen: {} client(s) x {} frames -> fleet at {} (rows/push {}, pull chunk {})",
        args.clients, args.frames, directory_addr, args.rows_per_push, args.pull_chunk
    );

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|id| scope.spawn(move || run_fleet_client(args, directory_addr, id)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = 0usize;
    let mut redirects = 0u64;
    let mut per_gateway: BTreeMap<String, u64> = BTreeMap::new();
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok((pushed, pulled, chased, by_gateway)) => {
                println!("  client {id}: pushed {pushed}, pulled {pulled}, redirects {chased}");
                total += pulled;
                redirects += chased;
                for (addr, rows) in by_gateway {
                    *per_gateway.entry(addr.clone()).or_insert(0) += rows;
                }
            }
            Err(e) => {
                eprintln!("  client {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "loadgen: {total} frames served end-to-end in {elapsed:.3}s ({:.0} frames/s), \
         {redirects} redirect(s) chased",
        total as f64 / elapsed
    );
    println!("per-gateway throughput:");
    for (addr, rows) in &per_gateway {
        println!("  {addr}: {rows} rows ({:.0} rows/s)", *rows as f64 / elapsed);
    }

    // Control pass: stats from every registered gateway, then (with
    // --shutdown) take the whole fleet down, directory last.
    let mut control =
        fleet_connect_with_retry(directory_addr, u64::MAX, args.auth_secret, args.connect_timeout)
            .expect("control conn");
    let members: Vec<_> = control.members().to_vec();
    for m in &members {
        print_stats(&m.addr, control.stats_of(&m.addr));
    }
    if args.shutdown {
        for m in &members {
            control.shutdown_gateway(&m.addr).expect("gateway shutdown accepted");
        }
        control.shutdown_directory().expect("directory shutdown accepted");
        println!("loadgen: fleet shutdown requested ({} gateways + directory)", members.len());
    }
}

fn print_stats(addr: &str, stats: Result<orco_serve::StatsSnapshot, OrcoError>) {
    match stats {
        Ok(s) => println!(
            "gateway {addr} stats: frames_in={} frames_out={} batches={} (max batch {}) \
             flushes size/deadline/pull/drain={}/{}/{}/{} busy={} redirects={} p50={:.6}s \
             p99={:.6}s",
            s.frames_in,
            s.frames_out,
            s.batches,
            s.max_batch_rows,
            s.size_flushes,
            s.deadline_flushes,
            s.pull_flushes,
            s.drain_flushes,
            s.busy_rejections,
            s.redirects,
            s.batch_latency_p50_s,
            s.batch_latency_p99_s
        ),
        Err(e) => eprintln!("stats request failed for {addr}: {e}"),
    }
}
