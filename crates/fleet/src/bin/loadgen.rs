//! TCP load generator for an `orco-serve` gateway — or a whole
//! `orco-fleet` of them.
//!
//! Spawns N client threads, each owning one cluster: every client pushes
//! M synthetic frames (`--rows-per-push` per message), then drains its
//! decoded reconstructions in `--pull-chunk` chunks, honoring `Busy`
//! backpressure with a capped-exponential, deterministically-jittered
//! backoff (per-client seed from `--seed`, so N clients never retry in
//! lockstep). At the end one control connection prints the gateway's
//! stats snapshot and (with `--shutdown`) asks the gateway to exit.
//!
//! With `--fleet <directory_addr>` the generator bootstraps from the
//! fleet directory instead of dialing one gateway: each client fetches
//! the epoch'd assignment table, routes every push to the owner it
//! computes locally, **chases redirects** when its table goes stale, and
//! the final report breaks throughput down **per gateway** — plus the
//! directory's aggregated fleet ledger (heartbeat-piggybacked stats,
//! eviction and epoch counters). Keyed fleets take `--auth-secret`.
//!
//! `--drift <frame-idx>` injects the datasets crate's `Bias` field
//! drift into every frame from that index on — the exact transform the
//! rollout gauntlet uses — so a drift-monitoring gateway
//! (`drift_sample_every > 0`) visibly trips its monitor mid-run and a
//! live `orco-rollout` cutover can be rehearsed end to end.
//!
//! `--metrics` skips the load entirely and one-shots the metrics text
//! exposition (every gateway in fleet mode). `--json <path>` writes a
//! machine-readable run report: throughput, Busy rate, redirects, the
//! client-observed push-latency histogram, and the scraped gateway
//! stats.
//!
//! Pair it with the `edge_gateway` or `fleet_gateway` examples:
//!
//! ```sh
//! cargo run --release --example edge_gateway &
//! cargo run --release -p orco-fleet --bin loadgen -- --clients 2 --frames 64 --shutdown
//!
//! cargo run --release --example fleet_gateway &
//! cargo run --release -p orco-fleet --bin loadgen -- \
//!     --fleet 127.0.0.1:7300 --clients 4 --frames 64 --shutdown
//! ```

// A load generator times real sockets; wall-clock reads are its job
// (bin/ targets are likewise exempt from orco-lint's wall-clock rule).
#![allow(clippy::disallowed_methods)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use orco_datasets::drift::{self, Drift};
use orco_fleet::FleetClient;
use orco_obs::{Histogram, HistogramSnapshot};
use orco_serve::{Backoff, Client, GatewayStats, PushOutcome, StatsSnapshot, Tcp, TcpConnection};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::OrcoError;

struct Args {
    addr: String,
    /// `Some(directory_addr)` switches to fleet mode.
    fleet: Option<String>,
    auth_secret: Option<u64>,
    clients: usize,
    frames: usize,
    rows_per_push: usize,
    pull_chunk: u32,
    shutdown: bool,
    connect_timeout: Duration,
    seed: u64,
    /// Bias-shift every frame from this index on (drift injection).
    drift: Option<usize>,
    /// Write a machine-readable run report here.
    json: Option<PathBuf>,
    /// One-shot: scrape and print the metrics exposition, run no load.
    metrics_only: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:7117".into(),
            fleet: None,
            auth_secret: None,
            clients: 2,
            frames: 64,
            rows_per_push: 1,
            pull_chunk: 64,
            shutdown: false,
            connect_timeout: Duration::from_secs(10),
            seed: 0xC0FFEE,
            drift: None,
            json: None,
            metrics_only: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr"),
                "--fleet" => args.fleet = Some(value("--fleet")),
                "--auth-secret" => {
                    let v = value("--auth-secret");
                    let parsed = v
                        .strip_prefix("0x")
                        .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                    args.auth_secret = Some(parsed.expect("u64 (decimal or 0x-hex)"));
                }
                "--clients" => args.clients = value("--clients").parse().expect("usize"),
                "--frames" => args.frames = value("--frames").parse().expect("usize"),
                "--rows-per-push" => {
                    args.rows_per_push = value("--rows-per-push").parse().expect("usize");
                }
                "--pull-chunk" => args.pull_chunk = value("--pull-chunk").parse().expect("u32"),
                "--connect-timeout-s" => {
                    args.connect_timeout =
                        Duration::from_secs(value("--connect-timeout-s").parse().expect("u64"));
                }
                "--shutdown" => args.shutdown = true,
                "--seed" => args.seed = value("--seed").parse().expect("u64"),
                "--drift" => args.drift = Some(value("--drift").parse().expect("usize")),
                "--json" => args.json = Some(PathBuf::from(value("--json"))),
                "--metrics" => args.metrics_only = true,
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: loadgen [--addr HOST:PORT | --fleet \
                         HOST:PORT] [--auth-secret N] [--clients N] [--frames M] \
                         [--rows-per-push R] [--pull-chunk K] [--connect-timeout-s S] \
                         [--seed N] [--drift FRAME_IDX] [--json PATH] [--metrics] [--shutdown]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(args.clients > 0 && args.frames > 0 && args.rows_per_push > 0);
        assert!(args.pull_chunk > 0);
        args
    }
}

/// Dials until the gateway answers or the timeout elapses — the gateway
/// may still be starting when loadgen launches (CI runs them in
/// parallel).
fn connect_with_retry(
    transport: &Tcp,
    timeout: Duration,
) -> Result<Client<TcpConnection>, OrcoError> {
    let start = Instant::now();
    loop {
        match Client::connect(transport) {
            Ok(client) => return Ok(client),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fleet bootstrap with the same patience: the directory may still be
/// starting, and the gateways may not have registered yet (an empty
/// fleet is a retryable condition here).
fn fleet_connect_with_retry(
    directory_addr: &str,
    client_id: u64,
    auth_secret: Option<u64>,
    timeout: Duration,
) -> Result<FleetClient, OrcoError> {
    let start = Instant::now();
    loop {
        match FleetClient::connect(directory_addr, client_id, auth_secret) {
            Ok(fleet) => return Ok(fleet),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

/// What one client thread reports back (fleet-only fields zero/empty in
/// single mode).
struct ClientReport {
    pushed: usize,
    pulled: usize,
    /// `Busy` rejections honored with a backoff-and-retry.
    busy: u64,
    /// Client-observed push round-trip latency, log2-ns buckets.
    latency: HistogramSnapshot,
    redirects: u64,
    by_gateway: Vec<(String, u64)>,
}

/// Bias-shifts every frame from `idx` on — the same deterministic
/// transform `orco-rollout`'s storm scenario injects, so the gateway's
/// drift monitor sees the identical distribution shift.
fn inject_drift(frames: &mut Matrix, idx: usize, seed: u64) {
    let rows = frames.rows();
    if idx >= rows {
        return;
    }
    let mut tail = frames.view_rows(idx..rows).to_matrix();
    let mut rng = OrcoRng::from_seed_u64(seed ^ 0xD21F7);
    drift::apply_matrix(&mut tail, Drift::Bias, 1.0, &mut rng);
    for r in 0..tail.rows() {
        for c in 0..frames.cols() {
            frames.set(idx + r, c, tail.get(r, c).expect("in-bounds copy"));
        }
    }
}

fn run_client(args: &Args, id: usize) -> Result<ClientReport, OrcoError> {
    let transport = Tcp::new(args.addr.clone());
    let mut client = connect_with_retry(&transport, args.connect_timeout)?;
    client.set_auth_secret(args.auth_secret);
    let info = client.hello(id as u64)?;
    let cluster = 1000 + id as u64;
    let mut rng = OrcoRng::from_seed_u64(args.seed ^ id as u64);
    let mut frames =
        Matrix::from_fn(args.frames, info.frame_dim as usize, |_, _| rng.uniform(0.0, 1.0));
    if let Some(idx) = args.drift {
        inject_drift(&mut frames, idx, args.seed ^ id as u64);
    }
    // Per-client seed: N clients hitting the same saturated shard back
    // off on decorrelated schedules instead of retrying in lockstep.
    let mut backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(64), args.seed ^ id as u64);
    let latency = Histogram::new();

    let mut pushed = 0usize;
    let mut pulled = 0usize;
    let mut busy = 0u64;
    while pushed < args.frames {
        let hi = (pushed + args.rows_per_push).min(args.frames);
        let sent = Instant::now();
        let outcome = client.push(cluster, frames.view_rows(pushed..hi))?;
        latency.record_ns(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match outcome {
            PushOutcome::Accepted(n) => {
                pushed += n as usize;
                backoff.reset();
            }
            PushOutcome::Busy { .. } => {
                // Backpressure: drain some decoded output, then retry
                // after a jittered, exponentially growing wait.
                busy += 1;
                pulled += client.pull(cluster, args.pull_chunk)?.rows();
                std::thread::sleep(backoff.next_delay());
            }
            PushOutcome::Redirected { epoch, addr } => {
                return Err(OrcoError::Config {
                    detail: format!(
                        "gateway redirected cluster {cluster} to {addr} (epoch {epoch}); \
                         this gateway is part of a fleet — use --fleet <directory_addr>"
                    ),
                });
            }
        }
    }
    while pulled < args.frames {
        let got = client.pull(cluster, args.pull_chunk)?.rows();
        if got == 0 {
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        pulled += got;
        backoff.reset();
    }
    Ok(ClientReport {
        pushed,
        pulled,
        busy,
        latency: latency.snapshot(),
        redirects: 0,
        by_gateway: Vec::new(),
    })
}

/// One fleet client's run: push windows to directory-computed owners
/// (redirects chased inside [`FleetClient::push`]), drain each window
/// from the gateway that accepted it before offering the next.
fn run_fleet_client(
    args: &Args,
    directory_addr: &str,
    id: usize,
) -> Result<ClientReport, OrcoError> {
    let mut fleet = fleet_connect_with_retry(
        directory_addr,
        id as u64,
        args.auth_secret,
        args.connect_timeout,
    )?;
    let cluster = 1000 + id as u64;
    let mut rng = OrcoRng::from_seed_u64(args.seed ^ id as u64);
    let owner = fleet.owner_addr(cluster)?;
    let frame_dim = fleet.info_of(&owner)?.frame_dim as usize;
    let mut frames = Matrix::from_fn(args.frames, frame_dim, |_, _| rng.uniform(0.0, 1.0));
    if let Some(idx) = args.drift {
        inject_drift(&mut frames, idx, args.seed ^ id as u64);
    }
    let mut backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(64), args.seed ^ id as u64);
    let latency = Histogram::new();

    let mut pushed = 0usize;
    let mut pulled = 0usize;
    let mut busy = 0u64;
    while pushed < args.frames {
        let hi = (pushed + args.rows_per_push).min(args.frames);
        let sent = Instant::now();
        let (outcome, addr) = fleet.push(cluster, frames.view_rows(pushed..hi))?;
        latency.record_ns(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match outcome {
            PushOutcome::Accepted(n) => {
                pushed += n as usize;
                backoff.reset();
                // Drain this window where it landed before the next push:
                // a later rebalance must never strand undrained rows.
                while pulled < pushed {
                    let got = fleet.pull_from(&addr, cluster, args.pull_chunk)?.rows();
                    if got == 0 {
                        std::thread::sleep(backoff.next_delay());
                        continue;
                    }
                    pulled += got;
                    backoff.reset();
                }
            }
            PushOutcome::Busy { .. } => {
                busy += 1;
                pulled += fleet.pull_from(&addr, cluster, args.pull_chunk)?.rows();
                std::thread::sleep(backoff.next_delay());
            }
            PushOutcome::Redirected { .. } => {
                unreachable!("FleetClient::push consumes redirects")
            }
        }
    }
    Ok(ClientReport {
        pushed,
        pulled,
        busy,
        latency: latency.snapshot(),
        redirects: fleet.redirects_chased(),
        by_gateway: fleet.pushed_rows_by_gateway(),
    })
}

fn main() {
    let args = Args::parse();
    if args.metrics_only {
        metrics_main(&args);
        return;
    }
    match args.fleet.clone() {
        Some(directory_addr) => fleet_main(&args, &directory_addr),
        None => single_main(&args),
    }
}

/// `--metrics`: scrape and print the text exposition, run no load.
fn metrics_main(args: &Args) {
    if let Some(directory_addr) = &args.fleet {
        let mut control = fleet_connect_with_retry(
            directory_addr,
            u64::MAX,
            args.auth_secret,
            args.connect_timeout,
        )
        .expect("control conn");
        let members: Vec<_> = control.members().to_vec();
        for m in &members {
            match control.metrics_of(&m.addr) {
                Ok(text) => {
                    println!("# gateway {} ({})", m.id, m.addr);
                    print!("{text}");
                }
                Err(e) => eprintln!("metrics request failed for {}: {e}", m.addr),
            }
        }
        match control.fleet_stats() {
            Ok((epoch, evictions, gateways)) => print_fleet_ledger(epoch, evictions, &gateways),
            Err(e) => eprintln!("fleet stats query failed: {e}"),
        }
    } else {
        let transport = Tcp::new(args.addr.clone());
        let mut control =
            connect_with_retry(&transport, args.connect_timeout).expect("control conn");
        print!("{}", control.metrics().expect("metrics reply"));
    }
}

fn single_main(args: &Args) {
    println!(
        "loadgen: {} client(s) x {} frames -> {} (rows/push {}, pull chunk {})",
        args.clients, args.frames, args.addr, args.rows_per_push, args.pull_chunk
    );

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..args.clients).map(|id| scope.spawn(move || run_client(args, id))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = 0usize;
    let mut busy = 0u64;
    let mut latency = empty_histogram();
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok(rep) => {
                println!(
                    "  client {id}: pushed {}, pulled {}, busy retries {}",
                    rep.pushed, rep.pulled, rep.busy
                );
                total += rep.pulled;
                busy += rep.busy;
                merge_histogram(&mut latency, &rep.latency);
            }
            Err(e) => {
                eprintln!("  client {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "loadgen: {total} frames served end-to-end in {elapsed:.3}s ({:.0} frames/s), \
         busy rate {:.4}",
        total as f64 / elapsed,
        busy_rate(busy, latency.count)
    );

    let transport = Tcp::new(args.addr.clone());
    let mut control = connect_with_retry(&transport, args.connect_timeout).expect("control conn");
    let stats = control.stats();
    print_stats(&args.addr, &stats);
    if let Some(path) = &args.json {
        let metrics_text = control.metrics().expect("metrics reply");
        let mut gateways = String::new();
        if let Ok(s) = &stats {
            gateways = stats_json(&args.addr, s);
        }
        let report = run_report_json(args, "single", total, elapsed, busy, 0, &latency)
            + &format!(
                ",\n  \"gateways\": [{gateways}],\n  \"metrics_text\": \"{}\"\n}}\n",
                json_escape(&metrics_text)
            );
        write_json_report(path, &report);
    }
    if args.shutdown {
        control.shutdown().expect("shutdown accepted");
        println!("loadgen: gateway shutdown requested");
    }
}

fn fleet_main(args: &Args, directory_addr: &str) {
    println!(
        "loadgen: {} client(s) x {} frames -> fleet at {} (rows/push {}, pull chunk {})",
        args.clients, args.frames, directory_addr, args.rows_per_push, args.pull_chunk
    );

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|id| scope.spawn(move || run_fleet_client(args, directory_addr, id)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = 0usize;
    let mut busy = 0u64;
    let mut redirects = 0u64;
    let mut latency = empty_histogram();
    let mut per_gateway: BTreeMap<String, u64> = BTreeMap::new();
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok(rep) => {
                println!(
                    "  client {id}: pushed {}, pulled {}, redirects {}, busy retries {}",
                    rep.pushed, rep.pulled, rep.redirects, rep.busy
                );
                total += rep.pulled;
                busy += rep.busy;
                redirects += rep.redirects;
                merge_histogram(&mut latency, &rep.latency);
                for (addr, rows) in &rep.by_gateway {
                    *per_gateway.entry(addr.clone()).or_insert(0) += rows;
                }
            }
            Err(e) => {
                eprintln!("  client {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "loadgen: {total} frames served end-to-end in {elapsed:.3}s ({:.0} frames/s), \
         {redirects} redirect(s) chased, busy rate {:.4}",
        total as f64 / elapsed,
        busy_rate(busy, latency.count)
    );
    println!("per-gateway throughput:");
    for (addr, rows) in &per_gateway {
        println!("  {addr}: {rows} rows ({:.0} rows/s)", *rows as f64 / elapsed);
    }

    // Control pass: stats from every registered gateway, the directory's
    // aggregated fleet ledger, then (with --shutdown) take the whole
    // fleet down, directory last.
    let mut control =
        fleet_connect_with_retry(directory_addr, u64::MAX, args.auth_secret, args.connect_timeout)
            .expect("control conn");
    let members: Vec<_> = control.members().to_vec();
    let mut gateways_json = Vec::new();
    for m in &members {
        let stats = control.stats_of(&m.addr);
        print_stats(&m.addr, &stats);
        if let Ok(s) = &stats {
            gateways_json.push(stats_json(&m.addr, s));
        }
    }
    let ledger = control.fleet_stats();
    match &ledger {
        Ok((epoch, evictions, gateways)) => print_fleet_ledger(*epoch, *evictions, gateways),
        Err(e) => eprintln!("fleet stats query failed: {e}"),
    }
    if let Some(path) = &args.json {
        let mut report = run_report_json(args, "fleet", total, elapsed, busy, redirects, &latency);
        report.push_str(&format!(",\n  \"gateways\": [{}]", gateways_json.join(", ")));
        if let Ok((epoch, evictions, gateways)) = &ledger {
            report.push_str(&format!(
                ",\n  \"fleet\": {{\"epoch\": {epoch}, \"evictions\": {evictions}, \
                 \"gateways\": [{}]}}",
                gateways.iter().map(ledger_entry_json).collect::<Vec<_>>().join(", ")
            ));
        }
        report.push_str("\n}\n");
        write_json_report(path, &report);
    }
    if args.shutdown {
        for m in &members {
            control.shutdown_gateway(&m.addr).expect("gateway shutdown accepted");
        }
        control.shutdown_directory().expect("directory shutdown accepted");
        println!("loadgen: fleet shutdown requested ({} gateways + directory)", members.len());
    }
}

fn print_stats(addr: &str, stats: &Result<StatsSnapshot, OrcoError>) {
    match stats {
        Ok(s) => println!(
            "gateway {addr} stats: frames_in={} frames_out={} batches={} (max batch {}) \
             flushes size/deadline/pull/drain={}/{}/{}/{} busy={} redirects={} \
             version={} drift={}(trips {}) p50={:.6}s p99={:.6}s",
            s.frames_in,
            s.frames_out,
            s.batches,
            s.max_batch_rows,
            s.size_flushes,
            s.deadline_flushes,
            s.pull_flushes,
            s.drain_flushes,
            s.busy_rejections,
            s.redirects,
            s.active_version,
            s.drift,
            s.drift_trips,
            s.batch_latency_p50_s,
            s.batch_latency_p99_s
        ),
        Err(e) => eprintln!("stats request failed for {addr}: {e}"),
    }
}

/// Renders the directory's aggregated fleet view: one line per gateway
/// (frozen entries are evicted gateways' last reports) plus an
/// alive-only rollup.
fn print_fleet_ledger(epoch: u64, evictions: u64, gateways: &[GatewayStats]) {
    println!("fleet ledger (directory view): epoch {epoch}, {evictions} eviction(s)");
    let mut rollup = (0u64, 0u64, 0u64, 0u64);
    for g in gateways {
        println!(
            "  gateway {} [{}]: frames_in={} frames_out={} batches={} busy={} redirects={} \
             queue_depth={}",
            g.id,
            if g.alive { "alive" } else { "frozen" },
            g.snapshot.frames_in,
            g.snapshot.frames_out,
            g.snapshot.batches,
            g.snapshot.busy_rejections,
            g.snapshot.redirects,
            g.snapshot.queue_depth
        );
        if g.alive {
            rollup.0 += g.snapshot.frames_in;
            rollup.1 += g.snapshot.frames_out;
            rollup.2 += g.snapshot.busy_rejections;
            rollup.3 += g.snapshot.redirects;
        }
    }
    println!(
        "  rollup (alive): frames_in={} frames_out={} busy={} redirects={}",
        rollup.0, rollup.1, rollup.2, rollup.3
    );
}

// ---- JSON report ------------------------------------------------------

fn empty_histogram() -> HistogramSnapshot {
    Histogram::new().snapshot()
}

fn merge_histogram(into: &mut HistogramSnapshot, from: &HistogramSnapshot) {
    for (a, b) in into.buckets.iter_mut().zip(from.buckets.iter()) {
        *a += b;
    }
    into.count += from.count;
    into.sum_ns += from.sum_ns;
}

/// Busy rejections per push round trip (both count one wire exchange).
fn busy_rate(busy: u64, push_round_trips: u64) -> f64 {
    if push_round_trips == 0 {
        0.0
    } else {
        busy as f64 / push_round_trips as f64
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/∞; non-finite floats become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let last = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    let buckets: Vec<String> = (0..last)
        .map(|i| {
            format!(
                "{{\"le_ns\": {}, \"count\": {}}}",
                HistogramSnapshot::upper_bound_ns(i),
                h.buckets[i]
            )
        })
        .collect();
    format!(
        "{{\"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum_ns,
        buckets.join(", ")
    )
}

fn stats_json(addr: &str, s: &StatsSnapshot) -> String {
    format!(
        "{{\"addr\": \"{}\", \"frames_in\": {}, \"frames_out\": {}, \"batches\": {}, \
         \"busy_rejections\": {}, \"redirects\": {}, \"queue_depth\": {}, \
         \"batch_latency_p50_s\": {}, \"batch_latency_p99_s\": {}}}",
        json_escape(addr),
        s.frames_in,
        s.frames_out,
        s.batches,
        s.busy_rejections,
        s.redirects,
        s.queue_depth,
        json_f64(s.batch_latency_p50_s),
        json_f64(s.batch_latency_p99_s)
    )
}

fn ledger_entry_json(g: &GatewayStats) -> String {
    format!(
        "{{\"id\": {}, \"alive\": {}, \"frames_in\": {}, \"frames_out\": {}, \
         \"busy_rejections\": {}, \"redirects\": {}}}",
        g.id,
        g.alive,
        g.snapshot.frames_in,
        g.snapshot.frames_out,
        g.snapshot.busy_rejections,
        g.snapshot.redirects
    )
}

/// The report's common prefix — the caller appends mode-specific fields
/// and the closing brace.
fn run_report_json(
    args: &Args,
    mode: &str,
    total: usize,
    elapsed: f64,
    busy: u64,
    redirects: u64,
    latency: &HistogramSnapshot,
) -> String {
    format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"clients\": {},\n  \"frames_per_client\": {},\n  \
         \"rows_per_push\": {},\n  \"total_rows\": {total},\n  \"elapsed_s\": {},\n  \
         \"rows_per_s\": {},\n  \"busy_retries\": {busy},\n  \"busy_rate\": {},\n  \
         \"redirects\": {redirects},\n  \"push_latency\": {}",
        args.clients,
        args.frames,
        args.rows_per_push,
        json_f64(elapsed),
        json_f64(total as f64 / elapsed),
        json_f64(busy_rate(busy, latency.count)),
        histogram_json(latency)
    )
}

fn write_json_report(path: &PathBuf, report: &str) {
    match std::fs::write(path, report) {
        Ok(()) => println!("loadgen: JSON report written to {}", path.display()),
        Err(e) => {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
