//! The fleet gauntlet: a scripted, deterministic, replayable run of a
//! whole fleet — directory + gateways + clients — over the
//! [`DesNet`] impaired-link simulation, with a **mid-run gateway kill**
//! and a **mid-run join**, asserting the contracts the fleet design
//! promises:
//!
//! * **Exactly-once across failover.** Every client's stream is
//!   delivered back complete and unduplicated even though its owner was
//!   killed mid-push: the client gives up via ARQ, re-queries the
//!   directory, resumes its session on the new owner
//!   ([`DesNet::reconnect_to`]), and re-pushes from its *delivered
//!   watermark* — rows the dead gateway acked but never served are
//!   re-pushed (the dead gateway can no longer deliver them, so this
//!   cannot duplicate).
//! * **Bit-identity.** The delivered rows equal one direct
//!   `encode_batch` + `decode_batch` of the stream on a reference codec:
//!   failover must not perturb the data plane, because every gateway
//!   builds the same codec from the same config.
//! * **No two owners at one epoch.** Every owner observation a client
//!   makes — from an adopted directory view or a [`Message::Redirect`] —
//!   is recorded under its epoch; two different owners under one
//!   `(epoch, cluster)` key fail the run.
//! * **Liveness and cleanliness.** The run terminates, the kill and the
//!   join both actually happened, and every *surviving* gateway ends
//!   drained (zero queue depth, zero stored codes).
//!
//! The kill and the join are triggered by **delivery progress**, not
//! wall-clock hacks, so a run is a pure function of its seed; the
//! recorded [`RunLog`] replays it bit-identically
//! ([`replay_fleet_scenario`]).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use orco_serve::fleet_view::owner_of;
use orco_serve::{
    auth, Backoff, Clock, DesConfig, DesNet, FleetView, Gateway, GatewayConfig, GatewayEntry,
    Message, NetEvent, RunLog, ScenarioError,
};
use orco_sim::{LinkParams, SendRecord};
use orco_tensor::{fnv1a64, Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, GradCompression, OrcoConfig};

use crate::directory::{Directory, DirectoryConfig};

/// The fleet scenario names [`run_fleet_scenario`] accepts.
pub const FLEET_GAUNTLET: [&str; 1] = ["fleet_kill"];

/// Shared secret every party in the simulated fleet is keyed with.
const SECRET: u64 = 0x0f1e_2d3c_4b5a_6978;

/// Golden-ratio multiplier shared with the TCP clients' nonce schedule.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// What a completed fleet scenario run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Scenario name (one of [`FLEET_GAUNTLET`]).
    pub name: String,
    /// Seed the impairment randomness was drawn from.
    pub seed: u64,
    /// Client actors driven.
    pub clients: usize,
    /// Frames each client pushed (and pulled back).
    pub frames_per_client: usize,
    /// Decoded rows delivered back across all clients (must equal
    /// `clients * frames_per_client`: exactly once).
    pub delivered_rows: usize,
    /// `Redirect` replies chased by clients.
    pub redirects: usize,
    /// Requests whose ARQ exhausted its attempts (the kill guarantees
    /// at least one).
    pub gave_ups: usize,
    /// Data connections re-opened (same-endpoint resume or failover).
    pub reconnects: usize,
    /// The directory's epoch when the run settled.
    pub final_epoch: u64,
    /// Encoded `StatsReply` of every *surviving* gateway, ascending id —
    /// the determinism contract is on the wire image.
    pub stats_frames: Vec<Vec<u8>>,
    /// Concatenated trace exports of every surviving gateway, ascending
    /// id, each section prefixed `gateway <id>` — byte-identical between
    /// a live run and its replay.
    pub trace_export: String,
    /// FNV-1a over every delivered row's little-endian bytes, client
    /// order — one u64 pinning the entire decoded output.
    pub decoded_fnv: u64,
    /// The impairment schedule the run drew (replay tape).
    pub trace: Vec<SendRecord>,
}

/// Runs one fleet gauntlet scenario live, drawing impairments from
/// `seed`. `quick` shrinks the per-client stream for CI; the topology
/// and the kill/join schedule are the same either way.
///
/// # Errors
///
/// Returns a [`ScenarioError`] (with its replay log) when a fleet
/// contract is violated, and on an unknown scenario name.
pub fn run_fleet_scenario(
    name: &str,
    seed: u64,
    quick: bool,
) -> Result<FleetOutcome, ScenarioError> {
    drive(name, seed, quick, None)
}

/// Re-runs a recorded fleet scenario, consuming the logged impairment
/// schedule instead of drawing randomness. A correct replay reproduces
/// the original outcome bit for bit (`stats_frames`, `decoded_fnv`,
/// trace).
///
/// # Errors
///
/// As [`run_fleet_scenario`]; additionally, a replay whose send sequence
/// diverges from the tape panics with a `replay divergence` diagnostic.
pub fn replay_fleet_scenario(log: &RunLog) -> Result<FleetOutcome, ScenarioError> {
    drive(&log.name, log.seed, log.quick, Some(log.trace.clone()))
}

/// The same small, fast codec geometry as the serve gauntlet — the fleet
/// gauntlet stresses membership and failover, not the autoencoder.
fn codec_config(seed: u64) -> OrcoConfig {
    OrcoConfig {
        input_dim: 32,
        latent_dim: 8,
        decoder_layers: 1,
        noise_variance: 0.1,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-2,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: GradCompression::default(),
        seed,
    }
}

/// Endpoint layout: the directory is endpoint 0, gateway id `g` is
/// endpoint `g` (ids start at 1), advertised as `des:<endpoint>`.
fn ep_of_addr(addr: &str) -> usize {
    addr.strip_prefix("des:")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("non-DES gateway address {addr:?} in a DES fleet"))
}

const DIRECTORY_EP: usize = 0;
/// Gateway id (== endpoint) killed mid-run.
const VICTIM: u64 = 2;
/// Gateway id (== endpoint) that joins mid-run.
const JOINER: u64 = 4;

/// Heartbeat cadence; the timeout leaves room for a 3-retransmit beat.
const BEAT_EVERY: Duration = Duration::from_millis(20);
const BEAT_TIMEOUT: Duration = Duration::from_millis(120);

const ROWS_PER_PUSH: usize = 3;
const PULL_CHUNK: u32 = 8;

/// Wakeup-token namespaces (client tokens are the client index).
const TOKEN_AGENT: u64 = 1000;
const TOKEN_LATE_RELEASE: u64 = 2000;

/// Who a [`DesNet`] connection belongs to.
#[derive(Debug, Clone, Copy)]
enum Role {
    /// Gateway agent `i`'s directory connection.
    Agent(usize),
    /// Client `i`'s directory connection.
    ClientDir(usize),
    /// Client `i`'s data-plane connection.
    ClientData(usize),
}

/// A gateway-side fleet agent, scripted as a simulation actor (the DES
/// twin of [`crate::GatewayAgent`]'s thread).
struct Agent {
    id: u64,
    ep: usize,
    gateway: Arc<Gateway>,
    conn: usize,
    /// Dead agents submit nothing and ignore stray replies.
    alive: bool,
    epoch: u64,
}

impl Agent {
    fn install_view(&self, epoch: u64, members: Vec<GatewayEntry>) {
        self.gateway.set_fleet_view(Some(FleetView::new(Some(self.id), epoch, members)));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    /// Waiting for the bootstrap `DirectoryReply`.
    Boot,
    /// Greeting the owner (`HelloAck` pending).
    Greet,
    /// The push-window / drain loop against the current owner.
    Stream,
    /// Owner died: waiting for a post-eviction `DirectoryReply`.
    AwaitDir,
    /// The late client parks here until the join releases it.
    Held,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CKind {
    Query,
    Hello,
    Push { lo: usize, hi: usize },
    Pull,
}

struct ClientActor {
    cluster: u64,
    frames: Matrix,
    /// Rows offered and acked (windows are drained before the next push,
    /// so outside an in-flight window `offset == acked`).
    offset: usize,
    acked: usize,
    pulled: Vec<f32>,
    pulled_rows: usize,
    state: CState,
    /// The in-flight request (one per client; dir and data sessions are
    /// never concurrently outstanding by construction).
    pending: Option<(u64, CKind)>,
    dir_conn: usize,
    data_conn: Option<usize>,
    data_ep: usize,
    /// The owner address the client currently routes pushes to.
    cur_addr: String,
    view_epoch: u64,
    members: Vec<GatewayEntry>,
    /// The late client holds after its first window until released.
    late: bool,
    released: bool,
    backoff: Backoff,
    redirects: usize,
    gave_ups: usize,
    reconnects: usize,
    /// Rows delivered to this client per gateway endpoint — the ground
    /// truth the directory's aggregated fleet view must converge to.
    delivered_by_ep: BTreeMap<usize, usize>,
}

impl ClientActor {
    fn done(&self) -> bool {
        self.state == CState::Done
    }
}

/// Picks a cluster id whose rendezvous owner under `initial` is `want`,
/// scanning deterministically from `from`.
fn cluster_owned_by(initial: &[GatewayEntry], want: u64, from: u64) -> u64 {
    (from..from + 10_000)
        .find(|&c| owner_of(initial, c).map(|g| g.id) == Some(want))
        .expect("rendezvous hashing starves no gateway within 10k clusters")
}

/// Picks a cluster owned by `a` under `initial` that moves to the joiner
/// once it registers (and is not owned by the victim meanwhile).
fn cluster_moving_to_joiner(
    initial: &[GatewayEntry],
    survivors: &[GatewayEntry],
    joined: &[GatewayEntry],
    from: u64,
) -> u64 {
    (from..from + 10_000)
        .find(|&c| {
            let o0 = owner_of(initial, c).map(|g| g.id);
            o0 == owner_of(survivors, c).map(|g| g.id)
                && o0 != Some(VICTIM)
                && owner_of(joined, c).map(|g| g.id) == Some(JOINER)
        })
        .expect("some cluster rebalances onto a 4th gateway within 10k clusters")
}

fn drive(
    name: &str,
    seed: u64,
    quick: bool,
    replay: Option<Vec<SendRecord>>,
) -> Result<FleetOutcome, ScenarioError> {
    let fail = |detail: String, trace: Vec<SendRecord>| ScenarioError {
        detail,
        log: RunLog { name: name.to_string(), seed, quick, trace },
    };
    if name != "fleet_kill" {
        return Err(fail(
            format!("unknown fleet scenario (gauntlet: {FLEET_GAUNTLET:?})"),
            Vec::new(),
        ));
    }
    let frames_per_client = if quick { 9 } else { 24 };

    let des = DesConfig {
        link: LinkParams { delay_s: 0.002, jitter_s: 0.001, loss_prob: 0.02 },
        rto: Duration::from_millis(10),
        rto_cap: Duration::from_millis(80),
        max_attempts: 5,
    };
    let net = DesNet::new_multi(des, seed);
    if let Some(trace) = replay {
        net.begin_replay(trace);
    }

    let directory = Arc::new(
        Directory::new(
            DirectoryConfig {
                auth_secret: Some(SECRET),
                heartbeat_timeout: BEAT_TIMEOUT,
                sweep_interval: Duration::from_millis(100),
            },
            Clock::manual(Duration::ZERO),
        )
        .expect("valid directory config"),
    );
    let dir_ep = net.add_service(Arc::clone(&directory) as Arc<dyn orco_serve::Service>);
    assert_eq!(dir_ep, DIRECTORY_EP);

    // Four identical gateways (ids 1..=4); every one builds the same
    // codec from the same config, which is what makes failover
    // bit-transparent to the data plane.
    let codec_cfg = codec_config(11);
    let mut agents: Vec<Agent> = (1..=4u64)
        .map(|id| {
            let gateway = Arc::new(
                Gateway::new(
                    GatewayConfig {
                        shards: 2,
                        batch_max_frames: 8,
                        batch_deadline: Duration::from_millis(5),
                        queue_capacity: 4096,
                        auth_secret: Some(SECRET),
                        trace_capacity: 1 << 16,
                        ..GatewayConfig::default()
                    },
                    Clock::manual(Duration::ZERO),
                    |_| {
                        Box::new(AsymmetricAutoencoder::new(&codec_cfg).expect("valid codec"))
                            as Box<dyn Codec>
                    },
                )
                .expect("valid gateway config"),
            );
            let ep = net.add_service(Arc::clone(&gateway) as Arc<dyn orco_serve::Service>);
            assert_eq!(ep, id as usize);
            Agent {
                id,
                ep,
                gateway,
                conn: 0,             // assigned below
                alive: id != JOINER, // the joiner idles until released
                epoch: 0,
            }
        })
        .collect();

    let mut roles: Vec<Role> = Vec::new();
    let push_role = |roles: &mut Vec<Role>, conn: usize, role: Role| {
        assert_eq!(conn, roles.len(), "connection ids must stay dense");
        roles.push(role);
    };
    for (i, a) in agents.iter_mut().enumerate() {
        a.conn = net.connect_to(DIRECTORY_EP);
        push_role(&mut roles, a.conn, Role::Agent(i));
    }

    // Cluster casting, computed from the same rendezvous function every
    // party uses. `initial` = gateways 1..3, `survivors` = after the
    // kill, `joined` = after the join.
    let entry = |id: u64| GatewayEntry { id, addr: format!("des:{id}") };
    let initial: Vec<GatewayEntry> = (1..=3).map(entry).collect();
    let survivors: Vec<GatewayEntry> = [1, 3].into_iter().map(entry).collect();
    let joined: Vec<GatewayEntry> = [1, 3, 4].into_iter().map(entry).collect();
    let mut clusters = Vec::new();
    // Two clients on the victim (exercise kill-failover), ...
    clusters.push(cluster_owned_by(&initial, VICTIM, 100));
    clusters.push(cluster_owned_by(&initial, VICTIM, clusters[0] + 1));
    // ... two stable clients (never rebalanced), ...
    let mut stable_from = 100;
    for _ in 0..2 {
        let c = (stable_from..stable_from + 10_000)
            .find(|&c| {
                let o0 = owner_of(&initial, c).map(|g| g.id);
                o0 != Some(VICTIM)
                    && o0 == owner_of(&survivors, c).map(|g| g.id)
                    && o0 == owner_of(&joined, c).map(|g| g.id)
            })
            .expect("some cluster keeps its owner through kill and join");
        clusters.push(c);
        stable_from = c + 1;
    }
    // ... one mover (rebalances onto the joiner mid-stream), and one
    // *late* client that pushes its remainder with a stale view after the
    // join, guaranteeing a Redirect chase.
    clusters.push(cluster_moving_to_joiner(&initial, &survivors, &joined, 100));
    clusters.push(cluster_moving_to_joiner(&initial, &survivors, &joined, clusters[4] + 1));
    let late_idx = clusters.len() - 1;

    let input_dim = codec_cfg.input_dim;
    let mut clients: Vec<ClientActor> = clusters
        .iter()
        .enumerate()
        .map(|(i, &cluster)| {
            let mut rng = OrcoRng::from_seed_u64(seed ^ (0xFEE7 + i as u64));
            let dir_conn = net.connect_to(DIRECTORY_EP);
            push_role(&mut roles, dir_conn, Role::ClientDir(i));
            ClientActor {
                cluster,
                frames: Matrix::from_fn(frames_per_client, input_dim, |_, _| rng.uniform(0.0, 1.0)),
                offset: 0,
                acked: 0,
                pulled: Vec::new(),
                pulled_rows: 0,
                state: CState::Boot,
                pending: None,
                dir_conn,
                data_conn: None,
                data_ep: 0,
                cur_addr: String::new(),
                view_epoch: 0,
                members: Vec::new(),
                late: i == late_idx,
                released: false,
                backoff: Backoff::new(
                    Duration::from_millis(2),
                    Duration::from_millis(64),
                    seed.wrapping_mul(GOLDEN) ^ i as u64,
                ),
                redirects: 0,
                gave_ups: 0,
                reconnects: 0,
                delivered_by_ep: BTreeMap::new(),
            }
        })
        .collect();
    let total = clients.len() * frames_per_client;

    // Kick off: gateways 1..3 register at t=0; clients boot staggered so
    // the directory has members by the time they query.
    for (i, a) in agents.iter().enumerate() {
        if a.alive {
            let addr = format!("des:{}", a.ep);
            let nonce = a.id.wrapping_mul(GOLDEN) ^ 0x666C_6565;
            let mac = auth::register_mac(SECRET, a.id, &addr, nonce);
            net.submit(a.conn, &Message::Register { gateway_id: a.id, addr, nonce, mac });
        }
        let _ = i;
    }
    for i in 0..clients.len() {
        net.schedule_wakeup(Duration::from_millis(10 + i as u64), i as u64);
    }

    // Every owner observation, keyed by (epoch, cluster): a second,
    // different owner under one key is the split-brain the epochs exist
    // to prevent.
    let mut owners_seen: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut killed = false;
    let mut join_submitted = false;

    let mut events = 0u64;
    const EVENT_CAP: u64 = 5_000_000;
    while clients.iter().any(|c| !c.done()) {
        events += 1;
        if events > EVENT_CAP {
            return Err(fail(
                format!(
                    "no convergence after {EVENT_CAP} events: {} of {} clients still live",
                    clients.iter().filter(|c| !c.done()).count(),
                    clients.len()
                ),
                net.trace(),
            ));
        }
        match net.poll() {
            NetEvent::Reply { conn, seq } => {
                let reply = net.take_reply(conn, seq).expect("announced reply present");
                match roles[conn] {
                    Role::Agent(i) => {
                        if let Err(d) = on_agent_reply(&net, &mut agents[i], reply) {
                            return Err(fail(d, net.trace()));
                        }
                        // The join is live once the joiner holds its
                        // first view: release the late client soon after,
                        // so its stale-view push draws a Redirect from an
                        // owner that has heartbeat-synced meanwhile.
                        if agents[i].id == JOINER && clients[late_idx].state == CState::Held {
                            net.schedule_wakeup(Duration::from_millis(100), TOKEN_LATE_RELEASE);
                        }
                    }
                    Role::ClientDir(i) => {
                        let r = on_dir_reply(
                            &net,
                            &mut clients[i],
                            i,
                            seq,
                            reply,
                            &mut roles,
                            &mut owners_seen,
                        );
                        if let Err(d) = r {
                            return Err(fail(d, net.trace()));
                        }
                    }
                    Role::ClientData(i) => {
                        let r = on_data_reply(
                            &net,
                            &mut clients[i],
                            i,
                            seq,
                            reply,
                            &mut roles,
                            &mut owners_seen,
                        );
                        match r {
                            Err(d) => return Err(fail(d, net.trace())),
                            Ok(false) => {}
                            Ok(true) => {
                                // Delivery progressed: at 1/3 delivered,
                                // kill the victim; at 2/3, admit the
                                // joiner.
                                let delivered: usize = clients.iter().map(|c| c.pulled_rows).sum();
                                if !killed && delivered * 3 >= total {
                                    killed = true;
                                    net.kill_endpoint(VICTIM as usize);
                                    let victim =
                                        agents.iter_mut().find(|a| a.id == VICTIM).expect("cast");
                                    victim.alive = false;
                                }
                                if killed && !join_submitted && delivered * 3 >= 2 * total {
                                    join_submitted = true;
                                    let joiner =
                                        agents.iter_mut().find(|a| a.id == JOINER).expect("cast");
                                    joiner.alive = true;
                                    let addr = format!("des:{}", joiner.ep);
                                    let nonce = joiner.id.wrapping_mul(GOLDEN) ^ 0x666C_6565;
                                    let mac = auth::register_mac(SECRET, joiner.id, &addr, nonce);
                                    net.submit(
                                        joiner.conn,
                                        &Message::Register {
                                            gateway_id: joiner.id,
                                            addr,
                                            nonce,
                                            mac,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            NetEvent::GaveUp { conn, seq: _ } => match roles[conn] {
                Role::Agent(i) => {
                    // Directory unreachable this instant: resume the
                    // session (the ARQ re-offers the beat) on fresh links.
                    if agents[i].alive {
                        agents[i].conn = net.reconnect(conn);
                        push_role(&mut roles, agents[i].conn, Role::Agent(i));
                    }
                }
                Role::ClientDir(i) => {
                    clients[i].dir_conn = net.reconnect(conn);
                    push_role(&mut roles, clients[i].dir_conn, Role::ClientDir(i));
                }
                Role::ClientData(i) => {
                    let c = &mut clients[i];
                    c.gave_ups += 1;
                    if net.endpoint_alive(c.data_ep) {
                        // Transient loss streak: resume the session on the
                        // same gateway; dedup state survives, the
                        // re-offered request executes at most once.
                        c.reconnects += 1;
                        let new = net.reconnect(conn);
                        c.data_conn = Some(new);
                        push_role(&mut roles, new, Role::ClientData(i));
                    } else {
                        // Owner crashed. Drop the doomed request, rewind
                        // to the delivered watermark (rows the dead owner
                        // held but never served must be re-pushed — it
                        // cannot deliver them, so this cannot duplicate),
                        // and go find the new owner.
                        net.cancel_outstanding(conn);
                        c.pending = None;
                        c.acked = c.pulled_rows;
                        c.offset = c.pulled_rows;
                        c.state = CState::AwaitDir;
                        let seq = net.submit(c.dir_conn, &Message::DirectoryQuery);
                        c.pending = Some((seq, CKind::Query));
                    }
                }
            },
            NetEvent::Wakeup { token } => {
                if token == TOKEN_LATE_RELEASE {
                    let c = &mut clients[late_idx];
                    c.released = true;
                    if c.state == CState::Held {
                        c.state = CState::Stream;
                        advance(&net, c);
                    }
                } else if token >= TOKEN_AGENT {
                    let i = (token - TOKEN_AGENT) as usize;
                    let a = &agents[i];
                    if a.alive {
                        // Every beat piggybacks the gateway's live stats,
                        // feeding the directory's fleet view.
                        net.submit(
                            a.conn,
                            &Message::Heartbeat {
                                gateway_id: a.id,
                                epoch: a.epoch,
                                stats: Some(a.gateway.stats()),
                            },
                        );
                    }
                } else {
                    let i = token as usize;
                    let c = &mut clients[i];
                    if c.pending.is_some() {
                        continue;
                    }
                    match c.state {
                        CState::Boot | CState::AwaitDir => {
                            let seq = net.submit(c.dir_conn, &Message::DirectoryQuery);
                            c.pending = Some((seq, CKind::Query));
                        }
                        CState::Stream => advance(&net, c),
                        CState::Greet | CState::Held | CState::Done => {}
                    }
                }
            }
            NetEvent::Idle => {
                let stuck: Vec<usize> =
                    clients.iter().enumerate().filter(|(_, c)| !c.done()).map(|(i, _)| i).collect();
                return Err(fail(
                    format!(
                        "event queue drained with clients {stuck:?} unfinished — a request \
                         or timer was lost (liveness violation)"
                    ),
                    net.trace(),
                ));
            }
        }
    }

    // ---- Contracts ----------------------------------------------------
    if !killed || !join_submitted {
        return Err(fail(
            format!(
                "the run finished without its chaos: killed={killed} joined={join_submitted} \
                 (progress triggers never fired)"
            ),
            net.trace(),
        ));
    }
    let delivered_rows: usize = clients.iter().map(|c| c.pulled_rows).sum();
    if delivered_rows != total {
        return Err(fail(
            format!(
                "delivered {delivered_rows} rows for {total} pushed — {} (exactly-once \
                 violated across the kill)",
                if delivered_rows < total { "frames lost" } else { "frames duplicated" }
            ),
            net.trace(),
        ));
    }

    // Bit-identity: each client's delivered rows equal one direct
    // encode_batch + decode_batch of its stream, no matter which
    // gateways served which windows.
    let mut reference = AsymmetricAutoencoder::new(&codec_cfg).expect("valid codec config");
    for (i, c) in clients.iter().enumerate() {
        let mut codes = Matrix::zeros(0, 0);
        let mut recon = Matrix::zeros(0, 0);
        reference.encode_batch(c.frames.as_view(), &mut codes).expect("geometry fits");
        reference.decode_batch(codes.as_view(), &mut recon).expect("geometry fits");
        if c.pulled != recon.as_slice() {
            return Err(fail(
                format!("client {i}: decoded bytes diverge from the direct codec path"),
                net.trace(),
            ));
        }
    }

    // Surviving gateways end drained; the victim's orphaned rows died
    // with it.
    let mut stats_frames = Vec::new();
    let mut trace_export = String::new();
    for a in &agents {
        if a.id == VICTIM {
            continue;
        }
        let snap = a.gateway.stats();
        if snap.queue_depth != 0 || snap.stored_codes != 0 {
            return Err(fail(
                format!(
                    "gateway {} not drained: queue_depth {} stored_codes {}",
                    a.id, snap.queue_depth, snap.stored_codes
                ),
                net.trace(),
            ));
        }
        let mut frame = Vec::new();
        Message::StatsReply(snap).encode_into(&mut frame);
        stats_frames.push(frame);
        trace_export.push_str(&format!("gateway {}\n", a.id));
        trace_export.push_str(&a.gateway.trace_export());
    }

    // The directory's aggregated fleet view converges: feed one final
    // in-process beat per survivor (deterministic — no wire hop), then
    // the victim's entry must sit frozen while the survivors' live
    // counters account for every row they delivered.
    for a in &agents {
        if a.id != VICTIM && a.alive {
            match directory.handle(Message::Heartbeat {
                gateway_id: a.id,
                epoch: a.epoch,
                stats: Some(a.gateway.stats()),
            }) {
                Message::HeartbeatAck { .. } => {}
                other => {
                    return Err(fail(
                        format!("settle beat for gateway {} drew {other:?}", a.id),
                        net.trace(),
                    ));
                }
            }
        }
    }
    let victim_delivered: usize = clients
        .iter()
        .map(|c| c.delivered_by_ep.get(&(VICTIM as usize)).copied().unwrap_or(0))
        .sum();
    let (_, evictions, fleet) = directory.fleet_stats();
    if evictions == 0 {
        return Err(fail(
            "the directory never recorded an eviction despite the kill".into(),
            net.trace(),
        ));
    }
    let Some(victim_entry) = fleet.iter().find(|g| g.id == VICTIM) else {
        return Err(fail(
            "the victim never reported stats before dying — its entry is missing".into(),
            net.trace(),
        ));
    };
    if victim_entry.alive {
        return Err(fail(
            "the victim's fleet-view entry is still marked alive after eviction".into(),
            net.trace(),
        ));
    }
    let survivor_out: u64 = fleet.iter().filter(|g| g.alive).map(|g| g.snapshot.frames_out).sum();
    if survivor_out != (total - victim_delivered) as u64 {
        return Err(fail(
            format!(
                "fleet view out of step: survivors report {survivor_out} rows out, clients \
                 pulled {} rows from them ({total} total, {victim_delivered} via the victim)",
                total - victim_delivered
            ),
            net.trace(),
        ));
    }

    let redirects: usize = clients.iter().map(|c| c.redirects).sum();
    if redirects == 0 {
        return Err(fail(
            "no client ever chased a Redirect — the stale-view path went unexercised".into(),
            net.trace(),
        ));
    }

    let mut digest_bytes = Vec::with_capacity(delivered_rows * input_dim * 4);
    for c in &clients {
        for v in &c.pulled {
            digest_bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(FleetOutcome {
        name: name.to_string(),
        seed,
        clients: clients.len(),
        frames_per_client,
        delivered_rows,
        redirects,
        gave_ups: clients.iter().map(|c| c.gave_ups).sum(),
        reconnects: clients.iter().map(|c| c.reconnects).sum(),
        final_epoch: directory.epoch(),
        stats_frames,
        trace_export,
        decoded_fnv: fnv1a64(&digest_bytes),
        trace: net.trace(),
    })
}

/// Handles a reply on an agent's directory connection and schedules its
/// next beat.
fn on_agent_reply(net: &DesNet, a: &mut Agent, reply: Message) -> Result<(), String> {
    if !a.alive {
        return Ok(()); // a straggler reply to a gateway that died meanwhile
    }
    match reply {
        Message::RegisterAck { epoch, members } | Message::HeartbeatAck { epoch, members } => {
            if epoch != a.epoch || a.gateway.fleet_view().is_none() {
                a.epoch = epoch;
                a.install_view(epoch, members);
            }
        }
        Message::ErrorReply { .. } => {
            // Evicted (a heartbeat outlasted the timeout): re-register.
            let addr = format!("des:{}", a.ep);
            let nonce = a.id.wrapping_mul(GOLDEN) ^ 0x666C_6565;
            let mac = auth::register_mac(SECRET, a.id, &addr, nonce);
            net.submit(a.conn, &Message::Register { gateway_id: a.id, addr, nonce, mac });
            return Ok(()); // the ack of that register schedules the next beat
        }
        other => return Err(format!("agent {}: unexpected {}", a.id, other.kind())),
    }
    net.schedule_wakeup(BEAT_EVERY, TOKEN_AGENT + (a.id - 1));
    Ok(())
}

/// Records an owner observation, failing on a second owner under the
/// same `(epoch, cluster)`.
fn observe_owner(
    owners_seen: &mut BTreeMap<(u64, u64), String>,
    epoch: u64,
    cluster: u64,
    addr: &str,
) -> Result<(), String> {
    match owners_seen.get(&(epoch, cluster)) {
        Some(prev) if prev != addr => Err(format!(
            "split brain: cluster {cluster} at epoch {epoch} claimed by both {prev} and {addr}"
        )),
        Some(_) => Ok(()),
        None => {
            owners_seen.insert((epoch, cluster), addr.to_string());
            Ok(())
        }
    }
}

/// Handles a reply on a client's directory connection: adopt the view
/// and (re)greet the owner.
fn on_dir_reply(
    net: &DesNet,
    c: &mut ClientActor,
    i: usize,
    seq: u64,
    reply: Message,
    roles: &mut Vec<Role>,
    owners_seen: &mut BTreeMap<(u64, u64), String>,
) -> Result<(), String> {
    let Some((want, CKind::Query)) = c.pending.take() else {
        return Err(format!("client {i}: directory reply with no query pending"));
    };
    if want != seq {
        return Err(format!("client {i}: expected dir reply seq {want}, got {seq}"));
    }
    let Message::DirectoryReply { epoch, members } = reply else {
        return Err(format!("client {i}: expected DirectoryReply, got {}", reply.kind()));
    };
    let Some(owner) = owner_of(&members, c.cluster).cloned() else {
        // The fleet has no members yet (we queried before the first
        // register landed): back off and ask again.
        net.schedule_wakeup(c.backoff.next_delay(), i as u64);
        return Ok(());
    };
    observe_owner(owners_seen, epoch, c.cluster, &owner.addr)?;
    c.view_epoch = epoch;
    c.members = members;
    let owner_ep = ep_of_addr(&owner.addr);
    if !net.endpoint_alive(owner_ep) {
        // The directory has not noticed the death yet (its epoch still
        // names the corpse): requery after a backoff.
        c.state = CState::AwaitDir;
        net.schedule_wakeup(c.backoff.next_delay(), i as u64);
        return Ok(());
    }
    greet(net, c, i, owner_ep, owner.addr, roles);
    Ok(())
}

/// Dials (or fails over the existing data session to) `owner_ep` and
/// submits the MAC'd `Hello`.
fn greet(
    net: &DesNet,
    c: &mut ClientActor,
    i: usize,
    owner_ep: usize,
    owner_addr: String,
    roles: &mut Vec<Role>,
) {
    let conn = match c.data_conn {
        // Failover keeps the session: sequence state rides to the new
        // owner, dedup memory resets there (DesNet::reconnect_to).
        Some(old) => {
            c.reconnects += 1;
            net.reconnect_to(old, owner_ep)
        }
        None => net.connect_to(owner_ep),
    };
    assert_eq!(conn, roles.len(), "connection ids must stay dense");
    roles.push(Role::ClientData(i));
    c.data_conn = Some(conn);
    c.data_ep = owner_ep;
    c.cur_addr = owner_addr;
    c.state = CState::Greet;
    let client_id = c.cluster;
    let nonce = client_id.wrapping_mul(GOLDEN) ^ 0x6F72_636F;
    let mac = auth::hello_mac(SECRET, client_id, nonce);
    let seq = net.submit(conn, &Message::Hello { client_id, nonce, mac });
    c.pending = Some((seq, CKind::Hello));
}

/// Drives the window loop: drain the last window, push the next, or
/// finish. Only valid in `Stream` with nothing pending.
fn advance(net: &DesNet, c: &mut ClientActor) {
    debug_assert_eq!(c.state, CState::Stream);
    debug_assert!(c.pending.is_none());
    let conn = c.data_conn.expect("streaming requires a data connection");
    if c.pulled_rows < c.offset {
        let seq = net.submit(
            conn,
            &Message::PullDecoded { cluster_id: c.cluster, max_frames: PULL_CHUNK, trace: 0 },
        );
        c.pending = Some((seq, CKind::Pull));
    } else if c.offset < c.frames.rows() {
        if c.late && !c.released && c.offset >= ROWS_PER_PUSH.min(c.frames.rows()) {
            // The late client parks after its first window; the join
            // releases it with a by-then-stale view.
            c.state = CState::Held;
            return;
        }
        let (lo, hi) = (c.offset, (c.offset + ROWS_PER_PUSH).min(c.frames.rows()));
        let seq = net.submit(
            conn,
            &Message::PushFrames {
                cluster_id: c.cluster,
                // One trace id per push window, stable across failover
                // re-pushes of the same window.
                trace: (c.cluster << 20) | (lo as u64 + 1),
                frames: c.frames.view_rows(lo..hi).to_matrix(),
            },
        );
        c.pending = Some((seq, CKind::Push { lo, hi }));
    } else {
        c.state = CState::Done;
    }
}

/// Handles a reply on a client's data connection. `Ok(true)` means
/// delivery progressed (the caller checks the kill/join triggers).
fn on_data_reply(
    net: &DesNet,
    c: &mut ClientActor,
    i: usize,
    seq: u64,
    reply: Message,
    roles: &mut Vec<Role>,
    owners_seen: &mut BTreeMap<(u64, u64), String>,
) -> Result<bool, String> {
    let Some((want, kind)) = c.pending.take() else {
        // A straggler from a connection this client already failed away
        // from (e.g. the dead owner's cached reply raced the failover).
        return Ok(false);
    };
    if want != seq {
        return Err(format!("client {i}: expected data reply seq {want}, got {seq}"));
    }
    match (kind, reply) {
        (CKind::Hello, Message::HelloAck { .. }) => {
            c.state = CState::Stream;
            advance(net, c);
            Ok(false)
        }
        (CKind::Push { lo, hi }, Message::PushAck { accepted }) => {
            if accepted as usize != hi - lo {
                return Err(format!(
                    "client {i}: partial ack {accepted} for a {}-row push",
                    hi - lo
                ));
            }
            c.offset = hi;
            c.acked += accepted as usize;
            c.backoff.reset();
            advance(net, c);
            Ok(false)
        }
        (CKind::Push { .. }, Message::Redirect { cluster_id, epoch, addr }) => {
            if cluster_id != c.cluster {
                return Err(format!(
                    "client {i}: redirect for cluster {cluster_id}, pushed {}",
                    c.cluster
                ));
            }
            // The fleet gauntlet drains every window before the next
            // push, so at redirect time this client stores no rows on the
            // old owner — chase immediately. (A client with undrained
            // rows would drain first: pulls are never redirected.)
            debug_assert_eq!(c.pulled_rows, c.offset);
            c.redirects += 1;
            observe_owner(owners_seen, epoch, c.cluster, &addr)?;
            let owner_ep = ep_of_addr(&addr);
            if !net.endpoint_alive(owner_ep) {
                return Err(format!(
                    "client {i}: redirected to {addr}, which is dead — the redirecting \
                     gateway's view names a corpse at epoch {epoch}"
                ));
            }
            greet(net, c, i, owner_ep, addr, roles);
            Ok(false)
        }
        (CKind::Pull, Message::Decoded { cluster_id, frames, .. }) => {
            if cluster_id != c.cluster {
                return Err(format!(
                    "client {i}: pulled cluster {} got cluster {cluster_id}",
                    c.cluster
                ));
            }
            if frames.rows() == 0 {
                // Batch still pending its deadline flush: poll again
                // after a backoff.
                net.schedule_wakeup(c.backoff.next_delay(), i as u64);
                return Ok(false);
            }
            c.pulled.extend_from_slice(frames.as_slice());
            c.pulled_rows += frames.rows();
            *c.delivered_by_ep.entry(c.data_ep).or_insert(0) += frames.rows();
            if c.pulled_rows > c.acked {
                return Err(format!(
                    "client {i}: pulled {} rows with only {} acked (duplication)",
                    c.pulled_rows, c.acked
                ));
            }
            c.backoff.reset();
            advance(net, c);
            Ok(true)
        }
        (kind, Message::Busy { .. }) => Err(format!(
            "client {i}: {kind:?} drew Busy — the gauntlet sizes queues to never backpressure"
        )),
        (kind, Message::ErrorReply { code, detail }) => {
            Err(format!("client {i}: {kind:?} drew {code:?}: {detail}"))
        }
        (kind, other) => Err(format!("client {i}: {kind:?} drew unexpected {}", other.kind())),
    }
}
