//! The fleet directory: the one authority on *which gateway owns which
//! cluster*, expressed as an epoch'd membership list.
//!
//! The directory does not compute assignments — rendezvous hashing
//! ([`orco_serve::fleet_view`]) lets every gateway and client derive the
//! owner of any cluster locally from `(epoch, members)`. The directory's
//! job is smaller and sharper: admit gateways ([`Message::Register`],
//! MAC-gated when a secret is configured), watch their heartbeats, evict
//! the silent ([`Directory::sweep`]), and bump the **epoch** on every
//! membership change so stale views are detectable. Gateways embed the
//! epoch in redirects; a client holding epoch `e` that draws a redirect
//! stamped `e' > e` knows to refresh before retrying.
//!
//! The directory is a [`Service`]: it runs behind the same three
//! transports as the gateway (loopback, TCP, DES), speaking the same
//! wire protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use orco_serve::protocol::{ErrorCode, GatewayStats, Message};
use orco_serve::stats::StatsSnapshot;
use orco_serve::{auth, Clock, GatewayEntry, Outbox, Service};
use orcodcs::OrcoError;

/// Tunables of a [`Directory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectoryConfig {
    /// Shared secret gating [`Message::Register`]; `None` admits anyone.
    pub auth_secret: Option<u64>,
    /// A gateway silent for longer than this is declared dead on the
    /// next sweep (choose several heartbeat intervals).
    pub heartbeat_timeout: Duration,
    /// How often the TCP background worker sweeps; virtual-time hosts
    /// sweep on every event instead ([`Service::on_time_advance`]).
    pub sweep_interval: Duration,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        Self {
            auth_secret: None,
            heartbeat_timeout: Duration::from_millis(500),
            sweep_interval: Duration::from_millis(100),
        }
    }
}

#[derive(Debug)]
struct Member {
    addr: String,
    /// Clock time of the last register/heartbeat, seconds.
    last_beat_s: f64,
}

/// One gateway's stats as the directory last saw them. Survives
/// eviction (frozen, `alive = false`) so a fleet scrape still accounts
/// for a dead gateway's delivered rows.
#[derive(Debug)]
struct StatsEntry {
    alive: bool,
    snapshot: StatsSnapshot,
}

#[derive(Debug)]
struct DirState {
    epoch: u64,
    members: BTreeMap<u64, Member>,
    /// Latest heartbeat-piggybacked stats per gateway ever seen.
    stats: BTreeMap<u64, StatsEntry>,
    /// Gateways evicted by sweeps over the directory's lifetime.
    evictions: u64,
}

/// The directory service: epoch'd gateway membership over the ORCO wire
/// protocol.
#[derive(Debug)]
pub struct Directory {
    cfg: DirectoryConfig,
    clock: Clock,
    state: Mutex<DirState>,
    shutting_down: AtomicBool,
}

impl Directory {
    /// A directory with no members yet, at epoch 0.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on a non-positive heartbeat timeout.
    pub fn new(cfg: DirectoryConfig, clock: Clock) -> Result<Self, OrcoError> {
        if cfg.heartbeat_timeout.is_zero() {
            return Err(OrcoError::Config {
                detail: "DirectoryConfig: heartbeat_timeout must be positive".into(),
            });
        }
        Ok(Self {
            cfg,
            clock,
            state: Mutex::new(DirState {
                epoch: 0,
                members: BTreeMap::new(),
                stats: BTreeMap::new(),
                evictions: 0,
            }),
            shutting_down: AtomicBool::new(false),
        })
    }

    /// The directory's configuration.
    #[must_use]
    pub fn config(&self) -> &DirectoryConfig {
        &self.cfg
    }

    /// The clock the directory timestamps heartbeats against.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current assignment epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("directory lock").epoch
    }

    /// Snapshot of `(epoch, members)`, members ascending by id.
    #[must_use]
    pub fn view(&self) -> (u64, Vec<GatewayEntry>) {
        let s = self.state.lock().expect("directory lock");
        (s.epoch, members_of(&s))
    }

    /// Whether a `Shutdown` has been accepted.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        // Acquire: pairs with the Release store on Shutdown, so a
        // server loop that sees the flag also sees the ShutdownAck
        // already written to its outbox.
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Evicts every member whose last heartbeat is older than the
    /// configured timeout; one epoch bump covers the whole eviction
    /// (simultaneous deaths do not stutter the epoch). Returns the ids
    /// evicted.
    pub fn sweep(&self) -> Vec<u64> {
        let now_s = self.clock.now_s();
        let timeout_s = self.cfg.heartbeat_timeout.as_secs_f64();
        let mut s = self.state.lock().expect("directory lock");
        let dead: Vec<u64> = s
            .members
            .iter()
            .filter(|(_, m)| now_s - m.last_beat_s > timeout_s)
            .map(|(&id, _)| id)
            .collect();
        if !dead.is_empty() {
            for id in &dead {
                s.members.remove(id);
                // Freeze, don't forget: the dead gateway's last snapshot
                // keeps counting in the fleet rollup.
                if let Some(entry) = s.stats.get_mut(id) {
                    entry.alive = false;
                }
            }
            s.evictions += dead.len() as u64;
            s.epoch += 1;
        }
        dead
    }

    /// The aggregated fleet view: `(epoch, evictions, per-gateway
    /// stats)`, gateways ascending by id. Evicted gateways appear with
    /// `alive = false` and their last-seen snapshot frozen.
    #[must_use]
    pub fn fleet_stats(&self) -> (u64, u64, Vec<GatewayStats>) {
        let s = self.state.lock().expect("directory lock");
        let gateways = s
            .stats
            .iter()
            .map(|(&id, e)| GatewayStats { id, alive: e.alive, snapshot: e.snapshot.clone() })
            .collect();
        (s.epoch, s.evictions, gateways)
    }

    /// Handles one request; the typed core of [`Service::handle_frame`].
    pub fn handle(&self, msg: Message) -> Message {
        match msg {
            Message::DirectoryQuery => {
                let s = self.state.lock().expect("directory lock");
                Message::DirectoryReply { epoch: s.epoch, members: members_of(&s) }
            }
            Message::Register { gateway_id, addr, nonce, mac } => {
                if let Some(secret) = self.cfg.auth_secret {
                    if auth::register_mac(secret, gateway_id, &addr, nonce) != mac {
                        return Message::ErrorReply {
                            code: ErrorCode::Unauthorized,
                            detail: "Register MAC does not verify against the shared secret".into(),
                        };
                    }
                }
                if self.is_shutting_down() {
                    return Message::ErrorReply {
                        code: ErrorCode::ShuttingDown,
                        detail: "directory is shutting down; not admitting gateways".into(),
                    };
                }
                let now_s = self.clock.now_s();
                let mut s = self.state.lock().expect("directory lock");
                // Idempotent re-register (same id, same addr) refreshes
                // the heartbeat without disturbing the epoch; a new
                // member or a moved address is a real membership change.
                let changed = s.members.get(&gateway_id).is_none_or(|m| m.addr != addr);
                s.members.insert(gateway_id, Member { addr, last_beat_s: now_s });
                if changed {
                    s.epoch += 1;
                }
                Message::RegisterAck { epoch: s.epoch, members: members_of(&s) }
            }
            Message::Heartbeat { gateway_id, epoch: _, stats } => {
                let now_s = self.clock.now_s();
                let mut s = self.state.lock().expect("directory lock");
                match s.members.get_mut(&gateway_id) {
                    Some(m) => {
                        m.last_beat_s = now_s;
                        if let Some(snapshot) = stats {
                            s.stats.insert(gateway_id, StatsEntry { alive: true, snapshot });
                        }
                        Message::HeartbeatAck { epoch: s.epoch, members: members_of(&s) }
                    }
                    // Evicted (or never admitted): the ack would imply
                    // membership. Tell it to re-register instead.
                    None => Message::ErrorReply {
                        code: ErrorCode::BadRequest,
                        detail: format!(
                            "heartbeat from gateway {gateway_id}, which is not a member \
                             (evicted after missed heartbeats?); re-register"
                        ),
                    },
                }
            }
            Message::FleetStatsQuery => {
                let (epoch, evictions, gateways) = self.fleet_stats();
                Message::FleetStatsReply { epoch, evictions, gateways }
            }
            Message::Shutdown => {
                // Release: publishes everything done under the state
                // lock before the flag; pairs with the Acquire load in
                // is_shutting_down.
                self.shutting_down.store(true, Ordering::Release);
                Message::ShutdownAck
            }
            other => Message::ErrorReply {
                code: ErrorCode::BadRequest,
                detail: format!(
                    "the directory serves membership, not the data plane ({} is not a \
                     directory request)",
                    other.kind()
                ),
            },
        }
    }
}

fn members_of(s: &DirState) -> Vec<GatewayEntry> {
    s.members.iter().map(|(&id, m)| GatewayEntry { id, addr: m.addr.clone() }).collect()
}

impl Service for Directory {
    fn handle_frame(&self, frame: &[u8], reply: &mut Vec<u8>, _outbox: Option<&Arc<Outbox>>) {
        let msg = match Message::decode(frame) {
            Ok(msg) => msg,
            Err(e) => {
                let err = Message::ErrorReply {
                    code: ErrorCode::BadRequest,
                    detail: format!("malformed frame: {e}"),
                };
                err.encode_into(reply);
                return;
            }
        };
        self.handle(msg).encode_into(reply);
    }

    fn clock(&self) -> &Clock {
        &self.clock
    }

    fn is_shutting_down(&self) -> bool {
        Directory::is_shutting_down(self)
    }

    fn on_time_advance(&self) {
        self.sweep();
    }

    fn worker_count(&self) -> usize {
        1
    }

    /// The heartbeat sweeper: on a real clock, evictions must not wait
    /// for the next request to arrive.
    fn run_worker(&self, _idx: usize) {
        while !self.is_shutting_down() {
            std::thread::sleep(self.cfg.sweep_interval);
            self.sweep();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(timeout_ms: u64) -> Directory {
        Directory::new(
            DirectoryConfig {
                heartbeat_timeout: Duration::from_millis(timeout_ms),
                ..DirectoryConfig::default()
            },
            Clock::manual(Duration::ZERO),
        )
        .expect("valid config")
    }

    fn register(d: &Directory, id: u64, addr: &str) -> Message {
        d.handle(Message::Register { gateway_id: id, addr: addr.into(), nonce: 0, mac: 0 })
    }

    #[test]
    fn register_bumps_epoch_and_reregister_does_not() {
        let d = dir(100);
        assert!(matches!(register(&d, 1, "gw:1"), Message::RegisterAck { epoch: 1, .. }));
        assert!(matches!(register(&d, 2, "gw:2"), Message::RegisterAck { epoch: 2, .. }));
        // Same id, same addr: heartbeat-equivalent, no epoch bump.
        assert!(matches!(register(&d, 2, "gw:2"), Message::RegisterAck { epoch: 2, .. }));
        // Same id, moved addr: membership change.
        assert!(matches!(register(&d, 2, "gw:9"), Message::RegisterAck { epoch: 3, .. }));
        let (epoch, members) = d.view();
        assert_eq!(epoch, 3);
        assert_eq!(members.len(), 2);
        assert_eq!(members[1].addr, "gw:9");
    }

    #[test]
    fn missed_heartbeats_evict_with_one_epoch_bump() {
        let d = dir(50);
        register(&d, 1, "gw:1");
        register(&d, 2, "gw:2");
        register(&d, 3, "gw:3");
        assert_eq!(d.epoch(), 3);
        d.clock().advance(Duration::from_millis(40));
        // Only gateway 3 beats inside the window.
        assert!(matches!(
            d.handle(Message::Heartbeat { gateway_id: 3, epoch: 3, stats: None }),
            Message::HeartbeatAck { epoch: 3, .. }
        ));
        d.clock().advance(Duration::from_millis(20)); // 1 and 2 are now 60ms silent
        let mut dead = d.sweep();
        dead.sort_unstable();
        assert_eq!(dead, vec![1, 2]);
        assert_eq!(d.epoch(), 4, "simultaneous deaths cost one epoch, not two");
        // The evicted gateway's next heartbeat is refused.
        assert!(matches!(
            d.handle(Message::Heartbeat { gateway_id: 1, epoch: 4, stats: None }),
            Message::ErrorReply { code: ErrorCode::BadRequest, .. }
        ));
        // And its re-register re-admits it at a fresh epoch.
        assert!(matches!(register(&d, 1, "gw:1"), Message::RegisterAck { epoch: 5, .. }));
    }

    #[test]
    fn register_requires_mac_when_keyed() {
        let d = Directory::new(
            DirectoryConfig { auth_secret: Some(0xfeed), ..DirectoryConfig::default() },
            Clock::manual(Duration::ZERO),
        )
        .expect("valid config");
        assert!(matches!(
            register(&d, 1, "gw:1"),
            Message::ErrorReply { code: ErrorCode::Unauthorized, .. }
        ));
        let mac = auth::register_mac(0xfeed, 1, "gw:1", 77);
        assert!(matches!(
            d.handle(Message::Register { gateway_id: 1, addr: "gw:1".into(), nonce: 77, mac }),
            Message::RegisterAck { epoch: 1, .. }
        ));
    }

    #[test]
    fn data_plane_requests_are_refused() {
        let d = dir(100);
        assert!(matches!(
            d.handle(Message::PullDecoded { cluster_id: 1, max_frames: 4, trace: 0 }),
            Message::ErrorReply { code: ErrorCode::BadRequest, .. }
        ));
    }

    #[test]
    fn fleet_stats_freeze_on_eviction() {
        let d = dir(50);
        register(&d, 1, "gw:1");
        register(&d, 2, "gw:2");
        let snap = StatsSnapshot { frames_out: 7, ..StatsSnapshot::default() };
        assert!(matches!(
            d.handle(Message::Heartbeat { gateway_id: 1, epoch: 2, stats: Some(snap) }),
            Message::HeartbeatAck { .. }
        ));
        // A heartbeat without stats refreshes liveness but keeps the
        // last snapshot.
        assert!(matches!(
            d.handle(Message::Heartbeat { gateway_id: 1, epoch: 2, stats: None }),
            Message::HeartbeatAck { .. }
        ));
        let (_, evictions, gateways) = d.fleet_stats();
        assert_eq!(evictions, 0);
        assert_eq!(gateways.len(), 1, "gateway 2 never reported stats");
        assert!(gateways[0].alive);
        assert_eq!(gateways[0].snapshot.frames_out, 7);
        // Silence both past the timeout: gateway 1's entry freezes.
        d.clock().advance(Duration::from_millis(60));
        d.sweep();
        let (_, evictions, gateways) = d.fleet_stats();
        assert_eq!(evictions, 2);
        assert_eq!(gateways.len(), 1);
        assert!(!gateways[0].alive, "evicted gateway's stats freeze, not vanish");
        assert_eq!(gateways[0].snapshot.frames_out, 7);
        // The wire view matches the in-process accessor.
        match d.handle(Message::FleetStatsQuery) {
            Message::FleetStatsReply { evictions, gateways, .. } => {
                assert_eq!(evictions, 2);
                assert_eq!(gateways.len(), 1);
                assert!(!gateways[0].alive);
            }
            other => panic!("expected FleetStatsReply, got {}", other.kind()),
        }
    }
}
