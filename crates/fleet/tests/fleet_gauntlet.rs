//! The fleet gauntlet as a test: the `fleet_kill` DES scenario (mid-run
//! gateway kill + late join over impaired links) must deliver every row
//! exactly once, be deterministic in its seed, and replay bit-identically
//! from its recorded log.

use orco_fleet::{replay_fleet_scenario, run_fleet_scenario, FLEET_GAUNTLET};
use orco_serve::RunLog;

const SEED: u64 = 0xF1EE7;

#[test]
fn fleet_kill_delivers_exactly_once_through_kill_and_join() {
    let o = run_fleet_scenario("fleet_kill", SEED, true).expect("contracts hold");
    // Success already pins: the kill fired, the join fired, no client
    // ever observed two owners at one epoch, every surviving gateway
    // drained, and per-client output is bit-identical to direct
    // encode_batch + decode_batch. Re-assert the headline numbers.
    assert_eq!(o.delivered_rows, o.clients * o.frames_per_client, "exactly once");
    assert!(o.redirects > 0, "the rebalance must be observed via Redirect, not misrouting");
    assert!(o.reconnects > 0, "orphans of the dead owner must resume elsewhere");
    // Epoch history: 3 joins at t=0, the kill's eviction, the late join.
    assert_eq!(o.final_epoch, 5);
    assert!(!o.stats_frames.is_empty(), "surviving gateways must report stats");
    assert!(
        o.trace_export.contains("orco-trace v1"),
        "surviving gateways must export their span rings"
    );
}

#[test]
fn fleet_kill_is_deterministic_in_its_seed() {
    let a = run_fleet_scenario("fleet_kill", SEED, true).expect("contracts hold");
    let b = run_fleet_scenario("fleet_kill", SEED, true).expect("contracts hold");
    assert_eq!(a, b, "same seed must be bit-identical, trace included");

    let c = run_fleet_scenario("fleet_kill", SEED + 1, true).expect("contracts hold");
    assert_ne!(a.trace, c.trace, "a different seed must draw a different schedule");
}

#[test]
fn fleet_kill_replays_bit_identically_from_its_log() {
    let live = run_fleet_scenario("fleet_kill", SEED, true).expect("contracts hold");
    let log =
        RunLog { name: live.name.clone(), seed: live.seed, quick: true, trace: live.trace.clone() };

    // The log must survive its own text serialization...
    let reparsed = RunLog::from_text(&log.to_text()).expect("log reparses");
    assert_eq!(reparsed, log, "text round trip must be lossless");

    // ...and replaying it must reproduce the run bit for bit: same
    // decoded bytes, same per-gateway stats wire images, same epochs.
    let replayed = replay_fleet_scenario(&reparsed).expect("replay holds the same contracts");
    assert_eq!(replayed, live);
}

#[test]
fn gauntlet_names_resolve_and_unknown_names_do_not() {
    for name in FLEET_GAUNTLET {
        // Wrong name errors are immediate; contract errors carry a log.
        assert!(!name.is_empty());
    }
    let err = run_fleet_scenario("no_such_scenario", SEED, true).expect_err("unknown name");
    assert!(err.detail.contains("unknown fleet scenario"), "got: {err}");
}
