//! Directory + redirect integration tests over the in-process loopback
//! transport: the epoch'd membership lifecycle end to end through the
//! wire protocol, MAC-gated admission, eviction sweeps, and the
//! stale-owner redirect a misrouted push must draw.

use std::sync::Arc;
use std::time::Duration;

use orco_fleet::{Directory, DirectoryClient, DirectoryConfig};
use orco_serve::fleet_view::owner_of;
use orco_serve::{
    Client, Clock, FleetView, Gateway, GatewayConfig, GatewayEntry, Loopback, PushOutcome, Service,
};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

const SECRET: u64 = 0x005E_C2E7;

fn directory(cfg: DirectoryConfig) -> Arc<Directory> {
    Arc::new(Directory::new(cfg, Clock::manual(Duration::ZERO)).expect("valid directory"))
}

fn dir_client(d: &Arc<Directory>) -> DirectoryClient<orco_serve::LoopbackConnection<Directory>> {
    DirectoryClient::connect(&Loopback::new(Arc::clone(d))).expect("loopback connects")
}

#[test]
fn register_query_heartbeat_epoch_lifecycle() {
    let d = directory(DirectoryConfig::default());
    let mut c = dir_client(&d);

    // An empty fleet is epoch 0.
    assert_eq!(c.query().expect("query"), (0, vec![]));

    // Each join bumps the epoch; the table stays ascending by id.
    let (e1, m1) = c.register(7, "10.0.0.7:7100", None).expect("register 7");
    assert_eq!((e1, m1.len()), (1, 1));
    let (e2, m2) = c.register(3, "10.0.0.3:7100", None).expect("register 3");
    assert_eq!(e2, 2);
    assert_eq!(m2.iter().map(|m| m.id).collect::<Vec<_>>(), vec![3, 7]);

    // Idempotent re-registration (same id, same addr) bumps nothing.
    let (e3, _) = c.register(7, "10.0.0.7:7100", None).expect("re-register 7");
    assert_eq!(e3, 2);
    // A moved address is a real membership change.
    let (e4, m4) = c.register(7, "10.0.0.8:7100", None).expect("move 7");
    assert_eq!(e4, 3);
    assert_eq!(m4.iter().find(|m| m.id == 7).expect("present").addr, "10.0.0.8:7100");

    // Heartbeats answer with the current table without bumping.
    let (e5, m5) = c.heartbeat(3, e4, None).expect("heartbeat");
    assert_eq!((e5, m5.len()), (3, 2));
    assert_eq!(c.query().expect("query"), (e5, m5));

    // A heartbeat from a gateway the directory never admitted is an
    // explicit "re-register" error, not a silent admission.
    assert!(c.heartbeat(99, e5, None).is_err(), "unknown member must be told to re-register");
}

#[test]
fn bad_register_mac_never_admits() {
    let d = directory(DirectoryConfig { auth_secret: Some(SECRET), ..DirectoryConfig::default() });
    let mut c = dir_client(&d);

    // No MAC and a wrong-secret MAC are both rejected before admission.
    let unauthenticated = c.register(1, "10.0.0.1:7100", None);
    assert!(unauthenticated.is_err(), "keyed directory must reject a zero MAC");
    let wrong = c.register(1, "10.0.0.1:7100", Some(SECRET ^ 1));
    assert!(wrong.is_err(), "keyed directory must reject a wrong-secret MAC");
    assert_eq!(c.query().expect("query"), (0, vec![]), "rejections must not admit or bump");

    // The right secret still joins.
    let (epoch, members) = c.register(1, "10.0.0.1:7100", Some(SECRET)).expect("register");
    assert_eq!((epoch, members.len()), (1, 1));
}

#[test]
fn missed_heartbeats_evict_with_one_epoch_bump() {
    let cfg = DirectoryConfig {
        heartbeat_timeout: Duration::from_millis(50),
        ..DirectoryConfig::default()
    };
    let d = directory(cfg);
    let mut c = dir_client(&d);
    c.register(1, "10.0.0.1:7100", None).expect("register 1");
    c.register(2, "10.0.0.2:7100", None).expect("register 2");
    let (epoch, _) = c.register(3, "10.0.0.3:7100", None).expect("register 3");
    assert_eq!(epoch, 3);

    // Only gateway 2 keeps beating; 1 and 3 fall silent past the
    // timeout. The sweep (run by virtual-time hosts on every event)
    // must evict both with ONE epoch bump, not one per corpse.
    d.clock().advance(Duration::from_millis(40));
    c.heartbeat(2, epoch, None).expect("heartbeat 2");
    d.clock().advance(Duration::from_millis(20));
    d.on_time_advance();

    let (after, members) = c.query().expect("query");
    assert_eq!(after, epoch + 1, "a sweep is one membership change");
    assert_eq!(members.iter().map(|m| m.id).collect::<Vec<_>>(), vec![2]);

    // The evictee re-registers and rejoins at a fresh epoch.
    let (rejoin, members) = c.register(1, "10.0.0.1:7100", None).expect("re-register");
    assert_eq!(rejoin, after + 1);
    assert_eq!(members.iter().map(|m| m.id).collect::<Vec<_>>(), vec![1, 2]);
}

fn codec_factory() -> impl Fn(usize) -> Box<dyn Codec> + Send + Sync + 'static {
    let cfg = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_seed(11);
    move |_| Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid config")) as Box<dyn Codec>
}

fn fleet_gateway(self_id: u64, members: &[GatewayEntry]) -> Arc<Gateway> {
    let gw = Arc::new(
        Gateway::new(
            GatewayConfig::default(),
            Clock::manual(Duration::from_micros(100)),
            codec_factory(),
        )
        .expect("valid gateway"),
    );
    gw.set_fleet_view(Some(FleetView::new(Some(self_id), 1, members.to_vec())));
    gw
}

#[test]
fn stale_owner_push_draws_redirect_never_misroutes() {
    let members = vec![
        GatewayEntry { id: 1, addr: "gw-1".to_string() },
        GatewayEntry { id: 2, addr: "gw-2".to_string() },
    ];
    let gw1 = fleet_gateway(1, &members);
    let gw2 = fleet_gateway(2, &members);

    // Find a cluster rendezvous-assigned to gateway 2.
    let cluster = (0u64..).find(|&c| owner_of(&members, c).expect("non-empty").id == 2).unwrap();

    let mut c1 = Client::connect(&Loopback::new(Arc::clone(&gw1))).expect("connects");
    c1.hello(0).expect("hello");
    let mut c2 = Client::connect(&Loopback::new(Arc::clone(&gw2))).expect("connects");
    c2.hello(0).expect("hello");

    let mut rng = OrcoRng::from_seed_u64(5);
    let frames = Matrix::from_fn(2, 784, |_, _| rng.uniform(0.0, 1.0));

    // The non-owner refuses the push and names the owner + epoch.
    match c1.push(cluster, frames.as_view()).expect("push") {
        PushOutcome::Redirected { epoch, addr } => {
            assert_eq!((epoch, addr.as_str()), (1, "gw-2"));
        }
        other => panic!("stale push must redirect, got {other:?}"),
    }
    assert_eq!(gw1.stats().redirects, 1);
    assert_eq!(gw1.stats().frames_in, 0, "a redirected push stores nothing");

    // The owner accepts the same push; pulls are served where rows live.
    assert_eq!(c2.push(cluster, frames.as_view()).expect("push"), PushOutcome::Accepted(2));
    let mut got = 0;
    while got < 2 {
        let chunk = c2.pull(cluster, 8).expect("pull").rows();
        assert!(chunk > 0, "owner must eventually serve its stored rows");
        got += chunk;
    }
}
