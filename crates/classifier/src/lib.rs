//! # orco-classifier
//!
//! The follow-up IoT application of the paper's evaluation (§IV-E): a
//! simple **2-layer convolutional neural network** trained on data
//! *reconstructed* by a compressed-sensing framework. The paper's Figure 5
//! compares the accuracy/loss of classifiers trained on OrcoDCS
//! reconstructions against DCSNet-30/50/70% reconstructions — the claim
//! being that OrcoDCS's noisy-latent training produces reconstructions
//! that are *better training data*, not merely lower-MSE pixels.
//!
//! ## Quick start
//!
//! ```
//! use orco_classifier::{Cnn, TrainConfig};
//! use orco_datasets::mnist_like;
//! use orco_tensor::OrcoRng;
//!
//! let train = mnist_like::generate(40, 0);
//! let test = mnist_like::generate(20, 1);
//! let mut rng = OrcoRng::from_label("doc-clf", 0);
//! let mut cnn = Cnn::new(train.kind(), &mut rng);
//! let curve = cnn.train_epochs(
//!     &train,
//!     &test,
//!     &TrainConfig { epochs: 2, batch_size: 8, learning_rate: 1e-3 },
//!     &mut rng,
//! );
//! assert_eq!(curve.len(), 2);
//! assert!(curve[1].test_accuracy >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnn;

pub use cnn::{Cnn, EpochPoint, TrainConfig};
