//! The 2-conv-layer CNN and its training loop.

use orco_datasets::{Dataset, DatasetKind};
use orco_nn::{metrics, Activation, Conv2d, Dense, Loss, MaxPool2d, Optimizer, Sequential};
use orco_tensor::{Matrix, OrcoRng};

/// Training hyperparameters for the classifier.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, learning_rate: 1e-3 }
    }
}

/// One point of the Figure-5 training curve.
#[derive(Debug, Clone, Copy)]
pub struct EpochPoint {
    /// Epoch number, starting at 1.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Accuracy on the held-out test set.
    pub test_accuracy: f32,
    /// Cross-entropy loss on the held-out test set.
    pub test_loss: f32,
}

/// The paper's follow-up classifier: conv→pool→conv→pool→dense.
///
/// Architecture per dataset kind:
/// * MNIST-like: `1×28×28 → conv8 → pool2 → conv16 → pool2 → dense(10)`
/// * GTSRB-like: `3×32×32 → conv8 → pool2 → conv16 → pool2 → dense(43)`
#[derive(Debug)]
pub struct Cnn {
    model: Sequential,
    kind: DatasetKind,
}

impl Cnn {
    /// Builds the classifier for a dataset kind.
    #[must_use]
    pub fn new(kind: DatasetKind, rng: &mut OrcoRng) -> Self {
        let c = kind.channels();
        let side = kind.height();
        let mut model = Sequential::new();
        model.push(Conv2d::new(c, side, side, 8, 3, 1, 1, Activation::Relu, rng));
        model.push(MaxPool2d::new(8, side, side, 2));
        let half = side / 2;
        model.push(Conv2d::new(8, half, half, 16, 3, 1, 1, Activation::Relu, rng));
        model.push(MaxPool2d::new(16, half, half, 2));
        let quarter = half / 2;
        model.push(Dense::new(16 * quarter * quarter, kind.classes(), Activation::Identity, rng));
        Self { model, kind }
    }

    /// The dataset kind this classifier was built for.
    #[must_use]
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.model.param_count()
    }

    /// Logits for a batch (inference mode).
    pub fn predict(&mut self, x: &Matrix) -> Matrix {
        self.model.forward(x, false)
    }

    /// Accuracy on a dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> f32 {
        let logits = self.predict(data.x());
        metrics::accuracy(&logits, data.labels())
    }

    /// Cross-entropy loss on a dataset.
    pub fn loss(&mut self, data: &Dataset) -> f32 {
        let logits = self.predict(data.x());
        let targets = metrics::one_hot(data.labels(), self.kind.classes());
        Loss::SoftmaxCrossEntropy.value(&logits, &targets)
    }

    /// Trains for `config.epochs`, recording the test curve after every
    /// epoch (the series plotted in the paper's Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or kinds mismatch.
    pub fn train_epochs(
        &mut self,
        train: &Dataset,
        test: &Dataset,
        config: &TrainConfig,
        rng: &mut OrcoRng,
    ) -> Vec<EpochPoint> {
        assert!(!train.is_empty(), "train_epochs: empty training set");
        assert_eq!(train.kind(), self.kind, "train_epochs: dataset kind mismatch");
        assert_eq!(test.kind(), self.kind, "train_epochs: test kind mismatch");
        let loss = Loss::SoftmaxCrossEntropy;
        let mut opt = Optimizer::adam(config.learning_rate).with_grad_clip(5.0);
        let targets = metrics::one_hot(train.labels(), self.kind.classes());
        let n = train.len();
        let bs = config.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut curve = Vec::with_capacity(config.epochs);
        for epoch in 1..=config.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let xb = train.x().select_rows(chunk);
                let yb = targets.select_rows(chunk);
                total += f64::from(self.model.train_batch(&xb, &yb, &loss, &mut opt));
                batches += 1;
            }
            curve.push(EpochPoint {
                epoch,
                train_loss: (total / batches as f64) as f32,
                test_accuracy: self.accuracy(test),
                test_loss: self.loss(test),
            });
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::mnist_like;

    #[test]
    fn architecture_shapes() {
        let mut rng = OrcoRng::from_label("cnn-shape", 0);
        let mut cnn = Cnn::new(DatasetKind::MnistLike, &mut rng);
        let logits = cnn.predict(&Matrix::zeros(2, 784));
        assert_eq!(logits.shape(), (2, 10));
        let mut g = Cnn::new(DatasetKind::GtsrbLike, &mut rng);
        let logits = g.predict(&Matrix::zeros(1, 3072));
        assert_eq!(logits.shape(), (1, 43));
    }

    #[test]
    fn learns_digits_above_chance() {
        let mut rng = OrcoRng::from_label("cnn-learn", 0);
        let train = mnist_like::generate(120, 0);
        let test = mnist_like::generate(40, 99);
        let mut cnn = Cnn::new(DatasetKind::MnistLike, &mut rng);
        let curve = cnn.train_epochs(
            &train,
            &test,
            &TrainConfig { epochs: 6, batch_size: 16, learning_rate: 2e-3 },
            &mut rng,
        );
        let final_acc = curve.last().unwrap().test_accuracy;
        assert!(final_acc > 0.3, "accuracy {final_acc} should beat 10% chance clearly");
        // Training loss decreases.
        assert!(curve.last().unwrap().train_loss < curve[0].train_loss);
    }

    #[test]
    fn curve_has_one_point_per_epoch() {
        let mut rng = OrcoRng::from_label("cnn-curve", 0);
        let train = mnist_like::generate(20, 0);
        let test = mnist_like::generate(10, 1);
        let mut cnn = Cnn::new(DatasetKind::MnistLike, &mut rng);
        let curve = cnn.train_epochs(
            &train,
            &test,
            &TrainConfig { epochs: 3, batch_size: 8, learning_rate: 1e-3 },
            &mut rng,
        );
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].epoch, 1);
        assert_eq!(curve[2].epoch, 3);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn rejects_wrong_dataset_kind() {
        let mut rng = OrcoRng::from_label("cnn-bad", 0);
        let mut cnn = Cnn::new(DatasetKind::GtsrbLike, &mut rng);
        let ds = mnist_like::generate(4, 0);
        let _ = cnn.train_epochs(&ds, &ds, &TrainConfig::default(), &mut rng);
    }
}
