//! Determinism properties of the discrete-event simulator.
//!
//! 1. **Event-order invariance**: the queue's pop order is a function of
//!    the `(time, tie)` keys alone — scheduling the same distinct-keyed
//!    event set in any insertion order pops identically.
//! 2. **Replay determinism**: driving the same deployment, parameters,
//!    scenario, and seed twice reproduces byte counts, energy totals,
//!    latency percentiles, and the simulated clock bit for bit.

use proptest::prelude::*;

use orco_sim::{DesNetwork, EventQueue, MacMode, Scenario, SimParams, SimSpec};
use orco_wsn::{DeploymentBackend, NetworkConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn event_pop_order_is_invariant_under_insertion_order(
        raw in prop::collection::vec((0u32..500, 0u64..16), 2..40),
        swap_seed in 0u64..1000,
    ) {
        // Distinct (time, tie) keys: the queue's contract says nothing
        // about exact duplicates beyond scheduling order.
        let mut keys: Vec<(u32, u64)> = raw.clone();
        keys.sort_unstable();
        keys.dedup();

        let mut forward = EventQueue::new();
        for (t, tie) in &keys {
            forward.schedule(f64::from(*t) * 0.01, *tie, (*t, *tie));
        }

        // A deterministic shuffle of the same key set.
        let mut shuffled_keys = keys.clone();
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(swap_seed);
        rng.shuffle(&mut shuffled_keys);
        let mut shuffled = EventQueue::new();
        for (t, tie) in &shuffled_keys {
            shuffled.schedule(f64::from(*t) * 0.01, *tie, (*t, *tie));
        }

        let a: Vec<_> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| shuffled.pop()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn replaying_the_same_scenario_and_seed_is_bit_identical(
        seed in 0u64..50,
        devices in 3usize..10,
        mac_pick in 0u32..4,
        loss_pct in 0u32..40,
        kill_index in 0usize..3,
    ) {
        let mac = match mac_pick {
            0 => MacMode::Sequential,
            1 => MacMode::Fifo,
            2 => MacMode::Tdma { slot_s: 0.02 },
            _ => MacMode::Csma { cca_s: 1e-3, max_backoff_s: 0.01 },
        };
        let spec = SimSpec {
            params: SimParams { mac, ..SimParams::ideal() },
            scenario: Scenario::new()
                .degrade_sensor_link(0.05..0.5, f64::from(loss_pct) / 100.0)
                .kill_at(0.3, kill_index)
                .burst_at(0.1, kill_index, 64, 2),
        };
        let run = || {
            let mut des = DesNetwork::new(
                NetworkConfig { num_devices: devices, seed, ..Default::default() },
                spec.clone(),
            );
            for _ in 0..4 {
                des.raw_aggregation_round(8).expect("round runs");
                des.compressed_aggregation_round(64, 100).expect("round runs");
            }
            des.broadcast_encoder_columns(32).expect("round runs");
            let stats = des.accounting().link_stats();
            (
                des.now_s().to_bits(),
                des.accounting().total_tx_bytes(),
                des.accounting().total_rx_bytes(),
                des.accounting().total_tx_energy_j().to_bits(),
                stats.delivered_packets,
                stats.dropped_packets,
                stats.retransmitted_frames,
                stats.airtime_s.to_bits(),
                stats.latency_p50_s.to_bits(),
                stats.latency_p99_s.to_bits(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn concurrent_modes_overlap_computation() {
    // The event-driven chain round overlaps per-device computation that
    // the sequential schedule serializes; with heavy per-device compute
    // the concurrent round must finish strictly earlier.
    let config = || NetworkConfig { num_devices: 16, seed: 0, ..Default::default() };
    let mut seq = DesNetwork::new(config(), SimSpec::ideal());
    let mut fifo = DesNetwork::new(
        config(),
        SimSpec {
            params: SimParams { mac: MacMode::Fifo, ..SimParams::ideal() },
            ..Default::default()
        },
    );
    let flops = 5_000_000; // 0.1 s per device at 50 MFLOP/s
    let t_seq = seq.compressed_aggregation_round(256, flops).unwrap();
    let t_fifo = fifo.compressed_aggregation_round(256, flops).unwrap();
    assert!(
        t_fifo < t_seq * 0.5,
        "concurrent compute should collapse the round: fifo {t_fifo:.3}s vs seq {t_seq:.3}s"
    );
    // Same physics: identical bytes and energy either way.
    assert_eq!(seq.accounting().total_tx_bytes(), fifo.accounting().total_tx_bytes());
    assert_eq!(
        seq.accounting().total_tx_energy_j().to_bits(),
        fifo.accounting().total_tx_energy_j().to_bits()
    );
}

#[test]
fn tdma_slotting_stretches_rounds_but_moves_the_same_bytes() {
    let config = || NetworkConfig { num_devices: 8, seed: 1, ..Default::default() };
    let mut fifo = DesNetwork::new(
        config(),
        SimSpec {
            params: SimParams { mac: MacMode::Fifo, ..SimParams::ideal() },
            ..Default::default()
        },
    );
    let mut tdma = DesNetwork::new(
        config(),
        SimSpec {
            params: SimParams { mac: MacMode::Tdma { slot_s: 0.05 }, ..SimParams::ideal() },
            ..Default::default()
        },
    );
    let t_fifo = fifo.raw_aggregation_round(16).unwrap();
    let t_tdma = tdma.raw_aggregation_round(16).unwrap();
    assert!(t_tdma > t_fifo, "slot alignment costs time: tdma {t_tdma:.3}s vs fifo {t_fifo:.3}s");
    assert_eq!(fifo.accounting().total_tx_bytes(), tdma.accounting().total_tx_bytes());
}

#[test]
fn duty_cycled_radios_defer_transmissions() {
    let config = || NetworkConfig { num_devices: 4, seed: 2, ..Default::default() };
    let mut always_on = DesNetwork::new(
        config(),
        SimSpec {
            params: SimParams { mac: MacMode::Fifo, ..SimParams::ideal() },
            ..Default::default()
        },
    );
    let mut cycled = DesNetwork::new(
        config(),
        SimSpec {
            params: SimParams {
                mac: MacMode::Fifo,
                duty_cycle: Some(orco_sim::DutyCycle::new(0.5, 0.1)),
                ..SimParams::ideal()
            },
            ..Default::default()
        },
    );
    // Push time past the first awake window, then transmit.
    always_on.wait(0.08);
    cycled.wait(0.08);
    let d = cycled.devices()[0];
    let agg = cycled.aggregator();
    let t_on = always_on.transmit(d, agg, 512, orco_wsn::PacketKind::RawData).unwrap();
    let t_cycled = cycled.transmit(d, agg, 512, orco_wsn::PacketKind::RawData).unwrap();
    assert!(
        t_cycled > t_on,
        "sleeping radio defers the burst: cycled {t_cycled:.3}s vs on {t_on:.3}s"
    );
}

#[test]
fn wait_interleaves_scenario_actions_with_spawned_events() {
    // A traffic burst at t = 1 from device 2 and a kill of device 2 at
    // t = 3 both sit inside one wait window. The burst must be granted
    // with the world as scripted at t = 1 (device alive), not with the
    // later kill pre-applied.
    let spec = SimSpec::with_scenario(Scenario::new().burst_at(1.0, 2, 64, 4).kill_at(3.0, 2));
    let mut des =
        DesNetwork::new(NetworkConfig { num_devices: 4, seed: 0, ..Default::default() }, spec);
    let victim = des.devices()[2];
    des.wait(5.0);
    let stats = des.accounting().link_stats();
    assert_eq!(stats.dropped_packets, 0, "burst predates the kill: {stats:?}");
    assert_eq!(stats.delivered_packets, 4);
    assert!(des.accounting().node(victim).tx_bytes > 0);
    assert!(!des.alive_devices().contains(&victim), "the kill still lands afterwards");
    assert_eq!(des.now_s(), 5.0);
}

#[test]
#[should_panic(expected = "references device 30")]
fn out_of_range_scenario_index_is_rejected() {
    let _ = DesNetwork::new(
        NetworkConfig { num_devices: 4, ..Default::default() },
        SimSpec::with_scenario(Scenario::new().kill_at(1.0, 30)),
    );
}

#[test]
fn csma_contention_collides_and_recovers() {
    // Many devices all report at once under CSMA: collisions must occur
    // (retransmissions observed) yet every packet eventually lands.
    let mut csma = DesNetwork::new(
        NetworkConfig { num_devices: 12, seed: 3, ..Default::default() },
        SimSpec {
            params: SimParams {
                mac: MacMode::Csma { cca_s: 2e-3, max_backoff_s: 0.02 },
                ..SimParams::ideal()
            },
            ..Default::default()
        },
    );
    csma.raw_aggregation_round(16).unwrap();
    let stats = csma.accounting().link_stats();
    assert!(stats.delivered_packets >= 12, "all reports land: {stats:?}");
    assert!(stats.retransmitted_frames > 0, "simultaneous senders must collide: {stats:?}");
}
