//! Simulation parameters: medium-access mode, duty cycling, jitter.

/// How the shared intra-cluster radio medium is arbitrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MacMode {
    /// **Contention-free, analytic-order schedule** — the equivalence mode.
    /// Every round's transmissions and computations execute one at a time
    /// in exactly the order the analytic [`orco_wsn::Network`] iterates
    /// them, and the medium is held for the full transmission time
    /// (latency included). With zero loss and zero jitter this reproduces
    /// the analytic byte, energy, *and* clock totals exactly.
    Sequential,
    /// Work-conserving FIFO medium: transmissions are granted in request
    /// order, concurrency across nodes is real (computes overlap, link
    /// latency pipelines behind the next sender's airtime), but nobody
    /// backs off and nothing collides.
    Fifo,
    /// TDMA: the cluster shares a slotted schedule (devices + aggregator,
    /// one slot each, round-robin by node id). A transmission may start
    /// only at a slot boundary its sender owns; bursts hold the medium to
    /// completion.
    Tdma {
        /// Slot duration, seconds.
        slot_s: f64,
    },
    /// CSMA-style contention: senders sniff the medium and defer with a
    /// random backoff while it is busy; two senders starting within the
    /// clear-channel-assessment window collide and both bursts are lost
    /// (then retried through the normal ARQ path).
    Csma {
        /// Clear-channel-assessment window, seconds: grants closer
        /// together than this collide.
        cca_s: f64,
        /// Maximum random backoff after sensing a busy medium, seconds.
        max_backoff_s: f64,
    },
}

/// Periodic radio duty cycle: a device's radio is awake for the first
/// `on_fraction` of every `period_s` window and asleep otherwise.
/// Transmissions wait for a window in which both endpoints are awake (the
/// aggregator and edge are mains-powered and always on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Cycle period, seconds.
    pub period_s: f64,
    /// Fraction of the period the radio is awake, in `(0, 1]`.
    pub on_fraction: f64,
}

impl DutyCycle {
    /// Creates a duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive or `on_fraction` is outside
    /// `(0, 1]`.
    #[must_use]
    pub fn new(period_s: f64, on_fraction: f64) -> Self {
        assert!(period_s > 0.0, "DutyCycle: period must be positive");
        assert!(
            on_fraction > 0.0 && on_fraction <= 1.0,
            "DutyCycle: on_fraction must be in (0, 1]"
        );
        Self { period_s, on_fraction }
    }

    /// The earliest time ≥ `t_s` at which the radio is awake.
    #[must_use]
    pub fn next_active_s(&self, t_s: f64) -> f64 {
        if self.on_fraction >= 1.0 {
            return t_s;
        }
        let cycle = (t_s / self.period_s).floor();
        let phase = t_s - cycle * self.period_s;
        if phase < self.on_fraction * self.period_s {
            t_s
        } else {
            (cycle + 1.0) * self.period_s
        }
    }
}

/// Event-driven backend configuration.
///
/// The default is [`SimParams::ideal`]: the contention-free schedule whose
/// totals are regression-tested to match the analytic backend exactly.
/// Concurrency, contention, duty cycling, and jitter are opt-in knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Medium-access mode for the shared intra-cluster radio.
    pub mac: MacMode,
    /// Radio duty cycle of the IoT devices (`None` = always on).
    pub duty_cycle: Option<DutyCycle>,
    /// Maximum uniform random addition to every delivery latency, seconds
    /// (0 = deterministic links).
    pub latency_jitter_s: f64,
    /// Extra seed folded into the simulator's private RNG stream (backoff,
    /// jitter, per-frame loss draws), independent of the deployment seed.
    pub seed: u64,
}

impl SimParams {
    /// The equivalence mode: [`MacMode::Sequential`], always-on radios,
    /// zero jitter. With zero-loss links this reproduces the analytic
    /// backend's byte, energy, and clock totals exactly.
    #[must_use]
    pub fn ideal() -> Self {
        Self { mac: MacMode::Sequential, duty_cycle: None, latency_jitter_s: 0.0, seed: 0 }
    }

    /// A realistic contended deployment: TDMA slots of 20 ms with
    /// concurrent per-node execution.
    #[must_use]
    pub fn contended() -> Self {
        Self { mac: MacMode::Tdma { slot_s: 0.02 }, ..Self::ideal() }
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_next_active() {
        let d = DutyCycle::new(1.0, 0.25);
        assert_eq!(d.next_active_s(0.0), 0.0);
        assert_eq!(d.next_active_s(0.2), 0.2);
        assert_eq!(d.next_active_s(0.25), 1.0);
        assert_eq!(d.next_active_s(0.9), 1.0);
        assert_eq!(d.next_active_s(1.1), 1.1);
        let always = DutyCycle::new(1.0, 1.0);
        assert_eq!(always.next_active_s(0.7), 0.7);
    }

    #[test]
    #[should_panic(expected = "on_fraction")]
    fn duty_cycle_rejects_zero_on_fraction() {
        let _ = DutyCycle::new(1.0, 0.0);
    }

    #[test]
    fn default_is_ideal() {
        assert_eq!(SimParams::default(), SimParams::ideal());
        assert_eq!(SimParams::ideal().mac, MacMode::Sequential);
        assert!(matches!(SimParams::contended().mac, MacMode::Tdma { .. }));
    }
}
