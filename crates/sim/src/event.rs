//! The totally ordered event queue at the heart of the simulator.
//!
//! Discrete-event simulation is only deterministic if event *ordering* is:
//! two events at the same simulated instant must pop in an order that does
//! not depend on incidental facts like heap internals or insertion history.
//! [`EventQueue`] orders by a three-part key:
//!
//! 1. **time** (simulated seconds, ascending),
//! 2. a caller-chosen **tie key** (ascending) — e.g. the acting node's id —
//!    so simultaneous events at different actors have a meaningful order,
//! 3. a monotone **sequence number** (ascending) assigned at scheduling
//!    time, breaking exact `(time, tie)` collisions by scheduling order.
//!
//! Because scheduling order inside the simulator is itself a deterministic
//! function of the seed and scenario, the pop order — and therefore every
//! simulation output — is reproducible bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use orco_wsn::clock::assert_monotone_dt;

/// One scheduled entry (internal; callers see `(time, payload)` on pop).
#[derive(Debug)]
struct Entry<T> {
    time_s: f64,
    tie: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Entry<T> {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.time_s
            .total_cmp(&other.time_s)
            .then(self.tie.cmp(&other.tie))
            .then(self.seq.cmp(&other.seq))
    }
}

// BinaryHeap is a max-heap; invert so the *earliest* key pops first.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_key(other).reverse()
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use orco_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, 0, "late");
/// q.schedule(1.0, 0, "early");
/// q.schedule(1.0, 1, "early-but-bigger-tie");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-but-bigger-tie")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` at absolute simulated time `time_s` with the
    /// given tie key. Returns the assigned sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is not a finite number of seconds ≥ 0.
    pub fn schedule(&mut self, time_s: f64, tie: u64, payload: T) -> u64 {
        assert_monotone_dt(time_s);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time_s, tie, seq, payload });
        seq
    }

    /// Removes and returns the earliest event as `(time_s, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time_s, e.payload))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time_s(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time_s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_tie_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 5, "t1-tie5-first");
        q.schedule(1.0, 5, "t1-tie5-second");
        q.schedule(1.0, 2, "t1-tie2");
        q.schedule(0.5, 9, "t0.5");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, ["t0.5", "t1-tie2", "t1-tie5-first", "t1-tie5-second"]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(3.0, 0, ());
        q.schedule(2.0, 0, ());
        assert_eq!(q.peek_time_s(), Some(2.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().0, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        EventQueue::new().schedule(f64::NAN, 0, ());
    }
}
