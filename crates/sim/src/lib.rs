//! # orco-sim
//!
//! A deterministic **discrete-event** WSN simulator, pluggable wherever the
//! analytic [`orco_wsn::Network`] runs today via the
//! [`orco_wsn::DeploymentBackend`] trait.
//!
//! Where the analytic model accumulates costs on one global clock, this
//! backend schedules them: a total-ordered [`EventQueue`] (simulated time +
//! deterministic tie-break), per-node clocks, a TDMA-slotted intra-cluster
//! radio with a CSMA-style contention fallback, ARQ retransmissions and
//! packet fragmentation as first-class events, duty-cycled radios, and a
//! [`Scenario`] scripting API for node death/recovery, link-degradation
//! windows, straggler compute multipliers, and traffic bursts.
//!
//! ## Quick start
//!
//! Build a [`DesNetwork`] from the same [`orco_wsn::NetworkConfig`] the
//! analytic backend uses, plus a [`SimSpec`] (parameters + scenario), and
//! drive it through the [`orco_wsn::DeploymentBackend`] primitives — or let
//! `orcodcs::ExperimentBuilder::deployment` do that for you:
//!
//! ```
//! use orco_sim::{DesNetwork, MacMode, Scenario, SimParams, SimSpec};
//! use orco_wsn::{DeploymentBackend, NetworkConfig};
//!
//! // A TDMA-slotted cluster where device 3 dies at t = 2 s and the sensor
//! // link degrades to 20% loss for a window.
//! let spec = SimSpec {
//!     params: SimParams { mac: MacMode::Tdma { slot_s: 0.02 }, ..SimParams::ideal() },
//!     scenario: Scenario::new().kill_at(2.0, 3).degrade_sensor_link(4.0..8.0, 0.2),
//! };
//! let mut des = DesNetwork::new(NetworkConfig { num_devices: 8, ..Default::default() }, spec);
//! for _ in 0..600 {
//!     des.raw_aggregation_round(4)?; // every device reports 4 raw bytes
//! }
//! let stats = des.accounting().link_stats();
//! assert!(stats.delivered_packets > 0);
//! assert!(stats.retransmitted_frames > 0, "the lossy window forces ARQ retries");
//! assert!(stats.latency_p99_s >= stats.latency_p50_s);
//! # Ok::<(), orco_wsn::WsnError>(())
//! ```
//!
//! ## The event queue
//!
//! Every transmission burst, ARQ retry, computation, and scenario action is
//! an entry in one [`EventQueue`] ordered by `(time, tie-key, sequence)` —
//! a **total** order, so the simulation is a pure function of its inputs:
//! replaying the same config, [`SimParams`], [`Scenario`], and seed
//! reproduces every byte count, energy total, and latency percentile bit
//! for bit (property-tested).
//!
//! ## Scenario scripting
//!
//! [`Scenario`] is a time-ordered script applied as simulated time crosses
//! each action's timestamp — see its docs for the builder API.
//!
//! ## Impaired links for arbitrary protocols
//!
//! [`NetSim`] exposes the same deterministic event machinery as a generic
//! point-to-point link layer: callers add links, send opaque payloads, and
//! script per-link loss/latency/partition windows with [`NetScenario`].
//! Every impairment decision is recorded as a [`SendRecord`], and
//! [`NetSim::begin_replay`] re-applies a recorded trace so a failing run
//! reproduces bit-identically from its log. The `orco-serve` gateway's
//! DES transport and chaos gauntlet are built on it.
//!
//! ## Analytic-vs-DES equivalence contract
//!
//! With [`SimParams::ideal`] (contention-free [`MacMode::Sequential`]
//! schedule, zero loss, zero jitter, always-on radios, no scenario) the
//! event-driven backend reproduces the analytic backend's traffic-ledger
//! byte counts, per-node energy totals, and simulated-clock totals
//! **exactly** — same formulas, same floating-point operation order. The
//! workspace test `tests/des_equivalence.rs` pins this contract. Any other
//! parameterization trades that equivalence for expressiveness the
//! analytic model cannot offer: overlapping computation, MAC contention,
//! partial-packet ARQ, duty-cycle stalls, and scripted faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod des;
mod event;
mod netsim;
mod params;
mod scenario;

pub use des::{DesNetwork, SimSpec};
pub use event::EventQueue;
pub use netsim::{LinkAction, LinkParams, NetScenario, NetSim, SendRecord, SendVerdict};
pub use params::{DutyCycle, MacMode, SimParams};
pub use scenario::{Scenario, ScenarioAction};
