//! Scripted fault and workload scenarios.
//!
//! A [`Scenario`] is a time-ordered script of deployment perturbations —
//! device deaths and recoveries, link-degradation windows, straggler
//! compute multipliers, background traffic bursts — that the event-driven
//! backend applies as simulated time crosses each action's timestamp.
//! Scripts replace hand-wired mid-test mutations: the same scenario drives
//! failure drills, figure sweeps, and examples, and replaying it with the
//! same seed reproduces every statistic bit for bit.
//!
//! Devices are addressed by **index into the deployment's device list**
//! (`0..num_devices`) rather than by [`orco_wsn::NodeId`], so a scenario is
//! meaningful independent of any concrete deployment.

/// One scripted perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioAction {
    /// Kill device `device` (index into the device list).
    KillDevice {
        /// Device index.
        device: usize,
    },
    /// Revive device `device` with a fresh battery of `energy_j` joules
    /// and rebuild the aggregation routes around it.
    ReviveDevice {
        /// Device index.
        device: usize,
        /// Battery budget after recovery, joules.
        energy_j: f64,
    },
    /// Override the intra-cluster sensor link's loss probability.
    DegradeSensorLink {
        /// Per-frame loss probability in `[0, 1)`.
        loss_prob: f64,
    },
    /// Override the aggregator→edge uplink's loss probability.
    DegradeUplink {
        /// Per-frame loss probability in `[0, 1)`.
        loss_prob: f64,
    },
    /// Clear the sensor-link degradation override (loss returns to the
    /// deployment's configured value).
    RestoreSensorLink,
    /// Clear the uplink degradation override.
    RestoreUplink,
    /// Clear all link-degradation overrides (losses return to the
    /// deployment's configured values).
    RestoreLinks,
    /// Multiply device `device`'s compute time by `multiplier` (straggler).
    SetStraggler {
        /// Device index.
        device: usize,
        /// Compute-time multiplier (> 0; 1.0 = nominal).
        multiplier: f64,
    },
    /// Reset device `device`'s compute-time multiplier to 1.
    ClearStraggler {
        /// Device index.
        device: usize,
    },
    /// Inject `packets` background packets of `payload_bytes` each from
    /// device `device` to the aggregator (they contend for the medium like
    /// any other traffic).
    TrafficBurst {
        /// Device index.
        device: usize,
        /// Payload per packet, bytes.
        payload_bytes: u64,
        /// Number of packets.
        packets: u32,
    },
}

/// A time-ordered script of [`ScenarioAction`]s.
///
/// # Examples
///
/// ```
/// use orco_sim::Scenario;
///
/// let scenario = Scenario::new()
///     .kill_at(5.0, 3)
///     .revive_at(20.0, 3, 1.0)
///     .degrade_sensor_link(10.0..15.0, 0.3)
///     .straggler(0.0..30.0, 7, 4.0)
///     .burst_at(12.0, 1, 256, 8);
/// assert_eq!(scenario.len(), 7); // window helpers script start + end
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    actions: Vec<(f64, ScenarioAction)>,
}

impl Scenario {
    /// An empty scenario (the healthy deployment).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scripted actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the scenario scripts nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Schedules `action` at simulated time `t_s`.
    ///
    /// # Panics
    ///
    /// Panics if `t_s` is not a finite number of seconds ≥ 0.
    #[must_use]
    pub fn at(mut self, t_s: f64, action: ScenarioAction) -> Self {
        orco_wsn::clock::assert_monotone_dt(t_s);
        self.actions.push((t_s, action));
        self
    }

    /// Kills device `device` at time `t_s`.
    #[must_use]
    pub fn kill_at(self, t_s: f64, device: usize) -> Self {
        self.at(t_s, ScenarioAction::KillDevice { device })
    }

    /// Revives device `device` at time `t_s` with `energy_j` joules.
    #[must_use]
    pub fn revive_at(self, t_s: f64, device: usize, energy_j: f64) -> Self {
        self.at(t_s, ScenarioAction::ReviveDevice { device, energy_j })
    }

    /// Degrades the sensor link to `loss_prob` over `window` (only the
    /// sensor override is restored at the window's end, so a concurrent
    /// uplink window is unaffected).
    #[must_use]
    pub fn degrade_sensor_link(self, window: std::ops::Range<f64>, loss_prob: f64) -> Self {
        self.at(window.start, ScenarioAction::DegradeSensorLink { loss_prob })
            .at(window.end, ScenarioAction::RestoreSensorLink)
    }

    /// Degrades the uplink to `loss_prob` over `window` (only the uplink
    /// override is restored at the window's end, so a concurrent sensor
    /// window is unaffected).
    #[must_use]
    pub fn degrade_uplink(self, window: std::ops::Range<f64>, loss_prob: f64) -> Self {
        self.at(window.start, ScenarioAction::DegradeUplink { loss_prob })
            .at(window.end, ScenarioAction::RestoreUplink)
    }

    /// Makes device `device` a straggler (compute time × `multiplier`)
    /// over `window`.
    #[must_use]
    pub fn straggler(self, window: std::ops::Range<f64>, device: usize, multiplier: f64) -> Self {
        self.at(window.start, ScenarioAction::SetStraggler { device, multiplier })
            .at(window.end, ScenarioAction::ClearStraggler { device })
    }

    /// Injects a background traffic burst at time `t_s`.
    #[must_use]
    pub fn burst_at(self, t_s: f64, device: usize, payload_bytes: u64, packets: u32) -> Self {
        self.at(t_s, ScenarioAction::TrafficBurst { device, payload_bytes, packets })
    }

    /// The script sorted by time (stable: same-time actions keep their
    /// scripting order).
    #[must_use]
    pub fn sorted_actions(&self) -> Vec<(f64, ScenarioAction)> {
        let mut sorted = self.actions.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        sorted
    }

    /// Checks every device index the script references against a
    /// deployment of `num_devices` devices. A fault script with a typo'd
    /// index would otherwise silently perturb nothing — and a drill
    /// asserting survival would pass vacuously.
    ///
    /// # Panics
    ///
    /// Panics naming the first out-of-range index.
    pub fn validate_device_indices(&self, num_devices: usize) {
        for (t, action) in &self.actions {
            let device = match *action {
                ScenarioAction::KillDevice { device }
                | ScenarioAction::ReviveDevice { device, .. }
                | ScenarioAction::SetStraggler { device, .. }
                | ScenarioAction::ClearStraggler { device }
                | ScenarioAction::TrafficBurst { device, .. } => Some(device),
                ScenarioAction::DegradeSensorLink { .. }
                | ScenarioAction::DegradeUplink { .. }
                | ScenarioAction::RestoreSensorLink
                | ScenarioAction::RestoreUplink
                | ScenarioAction::RestoreLinks => None,
            };
            if let Some(device) = device {
                assert!(
                    device < num_devices,
                    "scenario action at t = {t} s references device {device}, but the \
                     deployment has only {num_devices} devices (indices 0..{num_devices})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_actions_are_stable_by_time() {
        let s = Scenario::new().kill_at(5.0, 1).burst_at(1.0, 0, 10, 1).kill_at(5.0, 2);
        let sorted = s.sorted_actions();
        assert_eq!(sorted.len(), 3);
        assert_eq!(sorted[0].0, 1.0);
        assert_eq!(sorted[1].1, ScenarioAction::KillDevice { device: 1 });
        assert_eq!(sorted[2].1, ScenarioAction::KillDevice { device: 2 });
    }

    #[test]
    fn window_helpers_script_both_edges() {
        let s = Scenario::new().degrade_uplink(2.0..4.0, 0.5);
        let sorted = s.sorted_actions();
        assert_eq!(sorted[0], (2.0, ScenarioAction::DegradeUplink { loss_prob: 0.5 }));
        assert_eq!(sorted[1], (4.0, ScenarioAction::RestoreUplink));
    }

    #[test]
    fn overlapping_windows_restore_only_their_own_link() {
        // A sensor window ending inside an uplink window must not clear
        // the uplink override.
        let s = Scenario::new().degrade_sensor_link(0.0..10.0, 0.3).degrade_uplink(5.0..20.0, 0.1);
        let sorted = s.sorted_actions();
        assert_eq!(sorted[2], (10.0, ScenarioAction::RestoreSensorLink));
        assert_eq!(sorted[3], (20.0, ScenarioAction::RestoreUplink));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_times() {
        let _ = Scenario::new().kill_at(-1.0, 0);
    }
}
