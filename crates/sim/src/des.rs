//! The event-driven deployment backend.
//!
//! [`DesNetwork`] implements [`DeploymentBackend`] over a totally ordered
//! event queue: transmissions become bursts of radio frames granted by a
//! MAC ([`MacMode`]), losses trigger per-frame ARQ retransmissions,
//! computations finish on per-node clocks, and a [`Scenario`] perturbs the
//! deployment as simulated time crosses its scripted timestamps.
//!
//! It reuses the analytic [`Network`] as its *world state* — topology,
//! batteries, traffic ledger, cost formulas — while scheduling time itself.
//! That shared substrate is what makes the equivalence contract tight: in
//! [`MacMode::Sequential`] with zero loss and zero jitter, every energy and
//! byte total lands in the ledger through the very same arithmetic, in the
//! very same order, as the analytic backend.

use std::collections::BTreeMap;

use orco_tensor::OrcoRng;
use orco_wsn::packet::MAX_PAYLOAD_BYTES;
use orco_wsn::{
    DeploymentBackend, DeviceClass, Network, NetworkConfig, NodeId, Packet, PacketKind,
    TrafficAccounting, WsnError,
};

use crate::event::EventQueue;
use crate::params::{MacMode, SimParams};
use crate::scenario::{Scenario, ScenarioAction};

/// Everything that configures one event-driven deployment: simulator
/// parameters plus the scripted scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimSpec {
    /// MAC, duty-cycle, and jitter knobs.
    pub params: SimParams,
    /// Scripted perturbations (empty = healthy deployment).
    pub scenario: Scenario,
}

impl SimSpec {
    /// The equivalence configuration: [`SimParams::ideal`] and no scenario.
    #[must_use]
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A spec with the given scenario on otherwise-ideal parameters.
    #[must_use]
    pub fn with_scenario(scenario: Scenario) -> Self {
        Self { params: SimParams::ideal(), scenario }
    }
}

/// Why a transfer finished.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    Delivered,
    /// Retry budget exhausted.
    Lost,
    /// The sender's battery died mid-send.
    Energy,
    /// An endpoint was dead when the transfer was granted or delivered.
    EndpointDead(NodeId),
}

/// What a transfer's completion should unblock.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tag {
    /// Nothing (background traffic / broadcast fan-out).
    Background,
    /// A direct [`DeploymentBackend::transmit`] call awaiting the outcome.
    Direct,
    /// A raw-aggregation hop into `parent`.
    RawHop { parent: NodeId },
    /// Chain hop at `index` in the chain order.
    ChainHop { index: usize },
}

/// One logical packet in flight (possibly across several ARQ bursts).
#[derive(Debug)]
struct Transfer {
    from: NodeId,
    to: NodeId,
    payload: u64,
    kind: PacketKind,
    last_frame_payload: u64,
    submitted_s: f64,
    retries_used: u32,
    attempt_collided: bool,
    tag: Tag,
    outcome: Option<Outcome>,
}

#[derive(Debug)]
enum Event {
    /// A burst of `full_frames` MTU-sized frames (+ the final partial frame
    /// if `last_frame`) wants the medium.
    Request { tid: usize, full_frames: u64, last_frame: bool, retry: bool },
    /// A granted burst reaches the receiver; `lost_*` were drawn at grant.
    Delivery {
        tid: usize,
        full_frames: u64,
        last_frame: bool,
        lost_full: u64,
        lost_last: bool,
        attempt_wire: u64,
    },
    /// A scheduled computation finished at chain position `index`.
    ComputeDone { index: usize },
}

/// Per-round dependency state for the concurrent MAC modes.
#[derive(Debug)]
enum RoundState {
    Raw {
        parent: BTreeMap<NodeId, NodeId>,
        expected: BTreeMap<NodeId, usize>,
        resolved: BTreeMap<NodeId, usize>,
        received: BTreeMap<NodeId, u64>,
        own: BTreeMap<NodeId, u64>,
    },
    Chain {
        latent_bytes: u64,
        order: Vec<NodeId>,
        computed: Vec<bool>,
        arrived: Vec<bool>,
        sent: Vec<bool>,
    },
}

/// The deterministic discrete-event deployment backend.
///
/// # Examples
///
/// ```
/// use orco_sim::{DesNetwork, Scenario, SimSpec};
/// use orco_wsn::{DeploymentBackend, NetworkConfig, PacketKind};
///
/// let spec = SimSpec::with_scenario(Scenario::new().kill_at(1_000.0, 0));
/// let mut des =
///     DesNetwork::new(NetworkConfig { num_devices: 8, ..Default::default() }, spec);
/// let d = des.devices()[1];
/// let agg = des.aggregator();
/// let t = des.transmit(d, agg, 96, PacketKind::RawData)?;
/// assert!(t > 0.0);
/// assert_eq!(des.accounting().link_stats().delivered_packets, 1);
/// # Ok::<(), orco_wsn::WsnError>(())
/// ```
#[derive(Debug)]
pub struct DesNetwork {
    world: Network,
    params: SimParams,
    actions: Vec<(f64, ScenarioAction)>,
    next_action: usize,
    queue: EventQueue<Event>,
    now_s: f64,
    node_free_s: Vec<f64>,
    medium_free_s: f64,
    last_csma_grant: Option<(usize, f64)>,
    sensor_loss_override: Option<f64>,
    uplink_loss_override: Option<f64>,
    straggle: Vec<f64>,
    transfers: Vec<Transfer>,
    round: Option<RoundState>,
    rng: OrcoRng,
}

impl DesNetwork {
    /// Builds an event-driven deployment over the same topology (and seed)
    /// the analytic backend would build from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario references a device index outside
    /// `0..config.num_devices` (see
    /// [`Scenario::validate_device_indices`]).
    #[must_use]
    pub fn new(config: NetworkConfig, spec: SimSpec) -> Self {
        spec.scenario.validate_device_indices(config.num_devices);
        let seed = config.seed;
        let world = Network::new(config);
        let n = world.devices().len() + 2;
        Self {
            world,
            params: spec.params,
            actions: spec.scenario.sorted_actions(),
            next_action: 0,
            queue: EventQueue::new(),
            now_s: 0.0,
            node_free_s: vec![0.0; n],
            medium_free_s: 0.0,
            last_csma_grant: None,
            sensor_loss_override: None,
            uplink_loss_override: None,
            straggle: vec![1.0; n],
            transfers: Vec::new(),
            round: None,
            rng: OrcoRng::from_label(
                "orco-sim",
                seed ^ spec.params.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// The world state (topology, batteries, ledger) backing the simulation.
    #[must_use]
    pub fn world(&self) -> &Network {
        &self.world
    }

    /// The simulator parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    // ------------------------------------------------------------------
    // Scenario application
    // ------------------------------------------------------------------

    fn device_id(&self, index: usize) -> Option<NodeId> {
        self.world.devices().get(index).copied()
    }

    fn apply_actions_upto(&mut self, t_s: f64) -> bool {
        let mut fired = false;
        while self.next_action < self.actions.len() && self.actions[self.next_action].0 <= t_s {
            let (at, action) = self.actions[self.next_action];
            self.next_action += 1;
            fired = true;
            match action {
                ScenarioAction::KillDevice { device } => {
                    if let Some(id) = self.device_id(device) {
                        let _ = self.world.kill_device(id);
                    }
                }
                ScenarioAction::ReviveDevice { device, energy_j } => {
                    if let Some(id) = self.device_id(device) {
                        let _ = self.world.revive_device(id, energy_j);
                    }
                }
                ScenarioAction::DegradeSensorLink { loss_prob } => {
                    self.sensor_loss_override = Some(loss_prob);
                }
                ScenarioAction::DegradeUplink { loss_prob } => {
                    self.uplink_loss_override = Some(loss_prob);
                }
                ScenarioAction::RestoreSensorLink => {
                    self.sensor_loss_override = None;
                }
                ScenarioAction::RestoreUplink => {
                    self.uplink_loss_override = None;
                }
                ScenarioAction::RestoreLinks => {
                    self.sensor_loss_override = None;
                    self.uplink_loss_override = None;
                }
                ScenarioAction::SetStraggler { device, multiplier } => {
                    if let Some(id) = self.device_id(device) {
                        assert!(multiplier > 0.0, "straggler multiplier must be positive");
                        self.straggle[id.0] = multiplier;
                    }
                }
                ScenarioAction::ClearStraggler { device } => {
                    if let Some(id) = self.device_id(device) {
                        self.straggle[id.0] = 1.0;
                    }
                }
                ScenarioAction::TrafficBurst { device, payload_bytes, packets } => {
                    if let Some(id) = self.device_id(device) {
                        let agg = self.world.aggregator();
                        let ready = at.max(self.now_s);
                        for _ in 0..packets {
                            self.submit_at(
                                ready,
                                id,
                                agg,
                                payload_bytes,
                                PacketKind::Control,
                                Tag::Background,
                            );
                        }
                    }
                }
            }
        }
        fired
    }

    // ------------------------------------------------------------------
    // Transfer plumbing
    // ------------------------------------------------------------------

    fn is_alive(&self, id: NodeId) -> bool {
        self.world.node(id).map(orco_wsn::Node::is_alive).unwrap_or(false)
    }

    fn is_intra(&self, from: NodeId, to: NodeId) -> bool {
        from != self.world.edge() && to != self.world.edge()
    }

    fn effective_loss(&self, from: NodeId, to: NodeId) -> f64 {
        let link = self.world.link_between(from, to);
        let over = if self.is_intra(from, to) {
            self.sensor_loss_override
        } else if to == self.world.edge() {
            self.uplink_loss_override
        } else {
            None
        };
        over.unwrap_or(link.loss_prob)
    }

    fn submit_at(
        &mut self,
        ready_s: f64,
        from: NodeId,
        to: NodeId,
        payload: u64,
        kind: PacketKind,
        tag: Tag,
    ) -> usize {
        let packet = Packet::new(from, to, payload, kind);
        let frames = packet.frame_count();
        let last_frame_payload =
            if payload == 0 { 0 } else { payload - (frames - 1) * MAX_PAYLOAD_BYTES };
        let tid = self.transfers.len();
        self.transfers.push(Transfer {
            from,
            to,
            payload,
            kind,
            last_frame_payload,
            submitted_s: ready_s,
            retries_used: 0,
            attempt_collided: false,
            tag,
            outcome: None,
        });
        self.queue.schedule(
            ready_s,
            from.0 as u64,
            Event::Request { tid, full_frames: frames - 1, last_frame: true, retry: false },
        );
        tid
    }

    /// Wire bytes of a burst of `full_frames` MTU frames plus the final
    /// partial frame if `last_frame`.
    fn burst_wire(&self, tid: usize, full_frames: u64, last_frame: bool) -> u64 {
        let t = &self.transfers[tid];
        let header = orco_wsn::HEADER_BYTES;
        let mut wire = full_frames * (MAX_PAYLOAD_BYTES + header);
        if last_frame {
            wire += t.last_frame_payload + header;
        }
        wire
    }

    fn next_owned_slot(&self, from: NodeId, t_s: f64, slot_s: f64) -> f64 {
        let n_slots = (self.world.devices().len() + 1) as f64; // devices + aggregator
        let idx = from.0 as f64;
        let frame = n_slots * slot_s;
        let cycle = (t_s / frame).floor();
        let base = cycle * frame + idx * slot_s;
        if t_s >= base && t_s < base + slot_s {
            t_s // already inside an owned slot
        } else if base >= t_s {
            base
        } else {
            base + frame
        }
    }

    fn duty_aligned_start(&self, from: NodeId, to: NodeId, mut start: f64) -> f64 {
        let Some(duty) = self.params.duty_cycle else { return start };
        let duty_bound = |id: NodeId, t: f64, world: &Network| -> f64 {
            match world.node(id).map(orco_wsn::Node::class) {
                Ok(DeviceClass::IotDevice) => duty.next_active_s(t),
                _ => t, // aggregator/edge are always on
            }
        };
        for _ in 0..16 {
            let s = duty_bound(to, duty_bound(from, start, &self.world), &self.world);
            if s == start {
                break;
            }
            start = s;
        }
        start
    }

    fn on_request(
        &mut self,
        treq: f64,
        tid: usize,
        full_frames: u64,
        last_frame: bool,
        retry: bool,
    ) {
        if self.transfers[tid].outcome.is_some() {
            return;
        }
        let (from, to, kind) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.kind)
        };
        if !self.is_alive(from) {
            self.finish(tid, Outcome::EndpointDead(from), treq);
            return;
        }
        if !self.is_alive(to) {
            self.finish(tid, Outcome::EndpointDead(to), treq);
            return;
        }
        let link = self.world.link_between(from, to);
        let intra = self.is_intra(from, to);
        let wire = self.burst_wire(tid, full_frames, last_frame);

        // Earliest start: sender free, medium access, duty cycle.
        let mut start = treq.max(self.node_free_s[from.0]);
        let mut collided = false;
        if intra {
            match self.params.mac {
                MacMode::Sequential => {}
                MacMode::Fifo | MacMode::Tdma { .. } => {
                    start = start.max(self.medium_free_s);
                }
                MacMode::Csma { cca_s, max_backoff_s } => {
                    if self.medium_free_s > treq {
                        // Sensed busy: defer with a random backoff.
                        let backoff = self.rng.next_f64() * max_backoff_s;
                        self.queue.schedule(
                            self.medium_free_s + backoff,
                            from.0 as u64,
                            Event::Request { tid, full_frames, last_frame, retry },
                        );
                        return;
                    }
                    if let Some((prev_tid, prev_start)) = self.last_csma_grant {
                        if start - prev_start < cca_s && self.transfers[prev_tid].outcome.is_none()
                        {
                            // Two senders inside the CCA window: both bursts
                            // are corrupted and go through the ARQ path.
                            collided = true;
                            self.transfers[prev_tid].attempt_collided = true;
                        }
                    }
                }
            }
            if let MacMode::Tdma { slot_s } = self.params.mac {
                start = self.next_owned_slot(from, start, slot_s);
            }
        }
        let start = self.duty_aligned_start(from, to, start);
        if let MacMode::Csma { .. } = self.params.mac {
            if intra {
                self.last_csma_grant = Some((tid, start));
            }
        }

        // Charge the burst to the sender and the ledger.
        let dist = self.world.radio_distance_m(from, to).expect("validated endpoints");
        let survived = self.world.charge_tx(from, wire, dist, kind).expect("validated endpoints");
        self.world.accounting_mut().record_airtime(link.airtime_s(wire));
        if retry {
            self.world.accounting_mut().record_retransmits(full_frames + u64::from(last_frame));
        }

        // Occupy sender and medium.
        let airtime = link.airtime_s(wire);
        let duration = link.transmission_time_s(wire);
        self.node_free_s[from.0] = start + airtime;
        if intra {
            // Sequential mode holds the medium for the full transmission
            // time so round totals accumulate exactly like the analytic
            // global clock; concurrent modes pipeline the link latency.
            self.medium_free_s = start
                + match self.params.mac {
                    MacMode::Sequential => duration,
                    _ => airtime,
                };
        }
        if !survived {
            // Analytic parity: the fatal attempt still takes its full
            // transmission time before the death is observed.
            let t_fail = start + duration;
            if t_fail > self.now_s {
                self.now_s = t_fail;
            }
            self.finish(tid, Outcome::Energy, t_fail);
            return;
        }

        // Per-frame loss draws (deterministic stream).
        let loss = self.effective_loss(from, to);
        let mut lost_full = 0u64;
        let mut lost_last = false;
        if loss > 0.0 {
            for _ in 0..full_frames {
                if self.rng.bernoulli_f64(loss) {
                    lost_full += 1;
                }
            }
            if last_frame && self.rng.bernoulli_f64(loss) {
                lost_last = true;
            }
        }
        let mut delivery = start + duration;
        if self.params.latency_jitter_s > 0.0 {
            delivery += self.rng.next_f64() * self.params.latency_jitter_s;
        }
        self.transfers[tid].attempt_collided = collided;
        self.queue.schedule(
            delivery,
            from.0 as u64,
            Event::Delivery {
                tid,
                full_frames,
                last_frame,
                lost_full,
                lost_last,
                attempt_wire: wire,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_delivery(
        &mut self,
        tdel: f64,
        tid: usize,
        full_frames: u64,
        last_frame: bool,
        lost_full: u64,
        lost_last: bool,
        attempt_wire: u64,
    ) {
        if self.transfers[tid].outcome.is_some() {
            return;
        }
        let (from, to, kind) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.kind)
        };
        if !self.is_alive(to) {
            self.finish(tid, Outcome::EndpointDead(to), tdel);
            return;
        }
        let collided = std::mem::take(&mut self.transfers[tid].attempt_collided);
        let (lost_full, lost_last) =
            if collided { (full_frames, last_frame) } else { (lost_full, lost_last) };

        // Receiver hears whatever arrived intact.
        let lost_wire = self.burst_wire(tid, lost_full, lost_last);
        let delivered_wire = attempt_wire - lost_wire;
        if delivered_wire > 0 {
            self.world.charge_rx(to, delivered_wire, kind).expect("validated endpoints");
        }
        self.node_free_s[to.0] = self.node_free_s[to.0].max(tdel);

        if lost_full == 0 && !lost_last {
            let latency = tdel - self.transfers[tid].submitted_s;
            self.world.accounting_mut().record_delivery(latency);
            self.finish(tid, Outcome::Delivered, tdel);
            return;
        }
        // ARQ: retry only the lost frames, within the packet's budget.
        let retries_used = {
            let t = &mut self.transfers[tid];
            t.retries_used += 1;
            t.retries_used
        };
        if retries_used > self.world.config().max_retries {
            self.finish(tid, Outcome::Lost, tdel);
            return;
        }
        self.queue.schedule(
            tdel,
            from.0 as u64,
            Event::Request { tid, full_frames: lost_full, last_frame: lost_last, retry: true },
        );
    }

    /// Marks a transfer finished and unblocks whatever waited on it.
    fn finish(&mut self, tid: usize, outcome: Outcome, t_s: f64) {
        self.transfers[tid].outcome = Some(outcome);
        if outcome != Outcome::Delivered {
            self.world.accounting_mut().record_drop();
        }
        let tag = self.transfers[tid].tag;
        let delivered = outcome == Outcome::Delivered;
        match tag {
            Tag::Background | Tag::Direct => {}
            Tag::RawHop { parent } => {
                let payload = self.transfers[tid].payload;
                self.resolve_raw_child(parent, if delivered { payload } else { 0 }, t_s);
            }
            Tag::ChainHop { index } => self.resolve_chain_hop(index, t_s),
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn run_until_idle(&mut self) {
        while let Some(peek) = self.queue.peek_time_s() {
            // Scenario actions scheduled before the next event fire first
            // (they may enqueue earlier events, e.g. traffic bursts), so
            // re-peek whenever any fired.
            if self.apply_actions_upto(peek) {
                continue;
            }
            let (t, event) = self.queue.pop().expect("peeked");
            if t > self.now_s {
                self.now_s = t;
            }
            match event {
                Event::Request { tid, full_frames, last_frame, retry } => {
                    self.on_request(t, tid, full_frames, last_frame, retry);
                }
                Event::Delivery {
                    tid,
                    full_frames,
                    last_frame,
                    lost_full,
                    lost_last,
                    attempt_wire,
                } => {
                    self.on_delivery(
                        t,
                        tid,
                        full_frames,
                        last_frame,
                        lost_full,
                        lost_last,
                        attempt_wire,
                    );
                }
                Event::ComputeDone { index } => self.on_compute_done(index, t),
            }
        }
        self.world.advance_clock_to(self.now_s);
    }

    // ------------------------------------------------------------------
    // Sequential (analytic-order) primitives — the equivalence mode
    // ------------------------------------------------------------------

    /// Runs one transfer to completion on the event queue, sequentially.
    fn execute_transfer_now(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError> {
        let t0 = self.now_s;
        let tid = self.submit_at(self.now_s, from, to, payload, kind, Tag::Direct);
        self.run_until_idle();
        match self.transfers[tid].outcome.expect("idle queue resolves all transfers") {
            Outcome::Delivered => Ok(self.now_s - t0),
            Outcome::Lost => Err(WsnError::TransmissionFailed {
                from,
                to,
                attempts: self.transfers[tid].retries_used + 1,
            }),
            Outcome::Energy => Err(WsnError::EnergyExhausted { id: from }),
            Outcome::EndpointDead(id) => Err(WsnError::NodeDead { id }),
        }
    }

    /// Round-primitive wrapper around [`Self::execute_transfer_now`]:
    /// faults that only a richer-than-analytic schedule can produce — a
    /// scenario killing an endpoint while a packet is in flight, a lossy
    /// window running a packet's retries dry — are recorded as drops and
    /// the round goes on (a live deployment does not abort a whole
    /// aggregation round because one hop failed). Faults the analytic
    /// backend also produces and propagates (battery exhaustion, unknown
    /// nodes) propagate identically, preserving the ideal-mode error
    /// surface. Returns whether the hop was delivered.
    fn hop_transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: u64,
        kind: PacketKind,
    ) -> Result<bool, WsnError> {
        match self.execute_transfer_now(from, to, payload, kind) {
            Ok(_) => Ok(true),
            Err(e @ (WsnError::UnknownNode { .. } | WsnError::EnergyExhausted { .. })) => Err(e),
            Err(_) => Ok(false), // drop already recorded by `finish`
        }
    }

    fn compute_inline(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        let dt = self.world.charge_compute(at, flops)? * self.straggle[at.0];
        self.now_s += dt;
        self.node_free_s[at.0] = self.node_free_s[at.0].max(self.now_s);
        self.world.advance_clock_to(self.now_s);
        Ok(dt)
    }

    fn raw_round_sequential(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        let start = self.now_s;
        let mut carried: BTreeMap<NodeId, u64> = BTreeMap::new();
        for id in self.world.alive_devices() {
            carried.insert(id, bytes_per_device);
        }
        let aggregator = self.world.aggregator();
        for id in self.world.tree().bottom_up_order() {
            if !self.is_alive(id) {
                continue;
            }
            let payload = carried.get(&id).copied().unwrap_or(0);
            if payload == 0 {
                continue;
            }
            // Mid-round scenario deaths repair the tree, so the parent is
            // looked up per hop, exactly like the analytic loop.
            let Some(parent) = self.world.tree().parent(id) else {
                continue; // reparented out of the tree mid-round
            };
            if self.hop_transfer(id, parent, payload, PacketKind::RawData)? && parent != aggregator
            {
                *carried.entry(parent).or_insert(0) += payload;
            }
        }
        Ok(self.now_s - start)
    }

    fn broadcast_sequential(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        let start = self.now_s;
        let aggregator = self.world.aggregator();
        for id in self.world.alive_devices() {
            self.hop_transfer(aggregator, id, column_bytes, PacketKind::EncoderColumn)?;
        }
        Ok(self.now_s - start)
    }

    fn chain_round_sequential(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        let start = self.now_s;
        let order: Vec<NodeId> = self.world.chain().order().to_vec();
        for id in &order {
            if self.is_alive(*id) {
                self.compute_inline(*id, flops_per_device)?;
            }
        }
        for (from, to) in self.world.chain().device_hops() {
            if self.is_alive(from) && self.is_alive(to) {
                self.hop_transfer(from, to, latent_bytes, PacketKind::CompressedElement)?;
            }
        }
        let last = self.world.chain().last();
        let aggregator = self.world.aggregator();
        if self.is_alive(last) {
            self.hop_transfer(last, aggregator, latent_bytes, PacketKind::CompressedElement)?;
        }
        Ok(self.now_s - start)
    }

    // ------------------------------------------------------------------
    // Concurrent primitives — Fifo / Tdma / Csma
    // ------------------------------------------------------------------

    /// Submits a raw-round node's accumulated payload (or skips it) once
    /// all its children resolved.
    fn send_raw_node(&mut self, node: NodeId, t_s: f64) {
        let Some(RoundState::Raw { parent, received, own, .. }) = &self.round else {
            return;
        };
        let Some(&p) = parent.get(&node) else { return };
        let payload =
            own.get(&node).copied().unwrap_or(0) + received.get(&node).copied().unwrap_or(0);
        if payload == 0 || !self.is_alive(node) {
            self.resolve_raw_child(p, 0, t_s);
            return;
        }
        self.submit_at(
            t_s.max(self.now_s),
            node,
            p,
            payload,
            PacketKind::RawData,
            Tag::RawHop { parent: p },
        );
    }

    /// Accounts one resolved child transmission toward `parent` (payload 0
    /// for drops/skips) and fires the parent when all its children are in.
    fn resolve_raw_child(&mut self, parent: NodeId, payload: u64, t_s: f64) {
        let fire = {
            let Some(RoundState::Raw { expected, resolved, received, .. }) = &mut self.round else {
                return;
            };
            if payload > 0 {
                *received.entry(parent).or_insert(0) += payload;
            }
            let r = resolved.entry(parent).or_insert(0);
            *r += 1;
            match expected.get(&parent) {
                Some(e) => *r >= *e,
                None => false, // the aggregator: nothing to forward
            }
        };
        if fire {
            self.send_raw_node(parent, t_s);
        }
    }

    fn raw_round_concurrent(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        let start = self.now_s;
        let order = self.world.tree().bottom_up_order();
        let aggregator = self.world.aggregator();
        let mut parent = BTreeMap::new();
        let mut expected: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut own = BTreeMap::new();
        for id in &order {
            let p = self.world.tree().parent(*id).expect("non-root nodes have parents");
            parent.insert(*id, p);
            if p != aggregator {
                *expected.entry(p).or_insert(0) += 1;
            }
            if self.is_alive(*id) {
                own.insert(*id, bytes_per_device);
            }
        }
        self.round = Some(RoundState::Raw {
            parent,
            expected: expected.clone(),
            resolved: BTreeMap::new(),
            received: BTreeMap::new(),
            own,
        });
        // Leaves (no expected children) fire immediately, in bottom-up
        // order so the grant sequence is deterministic.
        for id in &order {
            if expected.get(id).copied().unwrap_or(0) == 0 {
                self.send_raw_node(*id, start);
            }
        }
        self.run_until_idle();
        self.round = None;
        Ok(self.now_s - start)
    }

    fn broadcast_concurrent(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        let start = self.now_s;
        let aggregator = self.world.aggregator();
        for id in self.world.alive_devices() {
            self.submit_at(
                start,
                aggregator,
                id,
                column_bytes,
                PacketKind::EncoderColumn,
                Tag::Background,
            );
        }
        self.run_until_idle();
        Ok(self.now_s - start)
    }

    /// Fires chain hop `index` if its node has computed and the upstream
    /// partial sum has resolved.
    fn try_chain_hop(&mut self, index: usize, t_s: f64) {
        let (from, to, latent_bytes) = {
            let Some(RoundState::Chain { latent_bytes, order, computed, arrived, sent }) =
                &mut self.round
            else {
                return;
            };
            if index >= order.len() || sent[index] || !computed[index] || !arrived[index] {
                return;
            }
            sent[index] = true;
            let from = order[index];
            let to = if index + 1 < order.len() { Some(order[index + 1]) } else { None };
            (from, to, *latent_bytes)
        };
        let to = to.unwrap_or_else(|| self.world.aggregator());
        if !self.is_alive(from) {
            // The node (and its partial sum) is gone; downstream devices
            // still forward their own contributions.
            self.resolve_chain_hop(index, t_s);
            return;
        }
        self.submit_at(
            t_s.max(self.now_s),
            from,
            to,
            latent_bytes,
            PacketKind::CompressedElement,
            Tag::ChainHop { index },
        );
    }

    fn resolve_chain_hop(&mut self, index: usize, t_s: f64) {
        let next = {
            let Some(RoundState::Chain { order, arrived, .. }) = &mut self.round else {
                return;
            };
            if index + 1 < order.len() {
                arrived[index + 1] = true;
                Some(index + 1)
            } else {
                None
            }
        };
        if let Some(next) = next {
            self.try_chain_hop(next, t_s);
        }
    }

    fn on_compute_done(&mut self, index: usize, t_s: f64) {
        {
            let Some(RoundState::Chain { computed, .. }) = &mut self.round else {
                return;
            };
            if index < computed.len() {
                computed[index] = true;
            }
        }
        self.try_chain_hop(index, t_s);
    }

    fn chain_round_concurrent(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        let start = self.now_s;
        let order: Vec<NodeId> = self.world.chain().order().to_vec();
        let n = order.len();
        let mut computed = vec![false; n];
        let mut arrived = vec![false; n];
        if n > 0 {
            arrived[0] = true;
        }
        // Per-node clocks: every device computes concurrently; stragglers
        // finish later and stall only their own chain position.
        for (i, id) in order.iter().enumerate() {
            if self.is_alive(*id) && flops_per_device > 0 {
                let dt = self.world.charge_compute(*id, flops_per_device)? * self.straggle[id.0];
                let begin = start.max(self.node_free_s[id.0]);
                let done = begin + dt;
                self.node_free_s[id.0] = done;
                self.queue.schedule(done, id.0 as u64, Event::ComputeDone { index: i });
            } else {
                computed[i] = true;
            }
        }
        self.round = Some(RoundState::Chain {
            latent_bytes,
            order,
            computed,
            arrived,
            sent: vec![false; n],
        });
        // Kick positions that are already unblocked (dead or zero-flop
        // nodes at the chain head).
        for i in 0..n {
            self.try_chain_hop(i, start);
        }
        self.run_until_idle();
        self.round = None;
        Ok(self.now_s - start)
    }
}

impl DeploymentBackend for DesNetwork {
    fn backend_name(&self) -> &'static str {
        "event-driven"
    }

    fn now_s(&self) -> f64 {
        self.now_s
    }

    fn accounting(&self) -> &TrafficAccounting {
        self.world.accounting()
    }

    fn reset_accounting(&mut self) {
        self.world.reset_accounting();
    }

    fn wait(&mut self, dt_s: f64) {
        orco_wsn::clock::assert_monotone_dt(dt_s);
        let target = self.now_s + dt_s;
        // Interleave scripted actions with the events they spawn in strict
        // time order: fire the next in-window action only once the queue is
        // idle (the run loop itself applies actions due before each event),
        // so a traffic burst at t=1 sees the world as scripted at t=1 even
        // when a kill at t=3 is also inside the wait window.
        loop {
            self.run_until_idle();
            let next_action = (self.next_action < self.actions.len())
                .then(|| self.actions[self.next_action].0)
                .filter(|t| *t <= target);
            match next_action {
                Some(t) => {
                    self.apply_actions_upto(t);
                }
                None => break,
            }
        }
        if target > self.now_s {
            self.now_s = target;
        }
        self.world.advance_clock_to(self.now_s);
    }

    fn aggregator(&self) -> NodeId {
        self.world.aggregator()
    }

    fn edge(&self) -> NodeId {
        self.world.edge()
    }

    fn devices(&self) -> &[NodeId] {
        self.world.devices()
    }

    fn alive_devices(&self) -> Vec<NodeId> {
        self.world.alive_devices()
    }

    fn node_energy_j(&self, id: NodeId) -> Result<f64, WsnError> {
        Ok(self.world.node(id)?.energy_j())
    }

    fn kill_device(&mut self, id: NodeId) -> Result<(), WsnError> {
        self.world.kill_device(id)
    }

    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError> {
        self.apply_actions_upto(self.now_s);
        // Analytic-parity endpoint validation.
        if !self.world.node(from)?.is_alive() {
            return Err(WsnError::NodeDead { id: from });
        }
        if !self.world.node(to)?.is_alive() {
            return Err(WsnError::NodeDead { id: to });
        }
        self.execute_transfer_now(from, to, payload_bytes, kind)
    }

    fn compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        self.apply_actions_upto(self.now_s);
        self.compute_inline(at, flops)
    }

    fn raw_aggregation_round(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        self.apply_actions_upto(self.now_s);
        match self.params.mac {
            MacMode::Sequential => self.raw_round_sequential(bytes_per_device),
            _ => self.raw_round_concurrent(bytes_per_device),
        }
    }

    fn broadcast_encoder_columns(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        self.apply_actions_upto(self.now_s);
        match self.params.mac {
            MacMode::Sequential => self.broadcast_sequential(column_bytes),
            _ => self.broadcast_concurrent(column_bytes),
        }
    }

    fn compressed_aggregation_round(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        self.apply_actions_upto(self.now_s);
        match self.params.mac {
            MacMode::Sequential => self.chain_round_sequential(latent_bytes, flops_per_device),
            _ => self.chain_round_concurrent(latent_bytes, flops_per_device),
        }
    }
}
