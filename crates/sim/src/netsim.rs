//! A deterministic impaired-link layer for point-to-point message
//! traffic: the event-injection API the serving layer runs over.
//!
//! Where [`crate::DesNetwork`] simulates a whole WSN deployment,
//! [`NetSim`] simulates just the *links* between arbitrary endpoints — a
//! client and a gateway, say — so any request/reply protocol can be run
//! under scripted loss, latency, jitter (which opens a reordering
//! window), and partitions, all on the same total-ordered
//! [`crate::EventQueue`] and therefore bit-reproducibly.
//!
//! Three ideas make it composable:
//!
//! * **Links are indices.** Callers [`NetSim::add_link`] as many
//!   unidirectional links as they need and [`NetSim::send`] payloads down
//!   them; the sim decides drop/delay per send and delivers via
//!   [`NetSim::next`] in virtual-time order.
//! * **Impairments are scripted.** A [`NetScenario`] is a time-ordered
//!   script of per-link [`LinkAction`]s (loss override, delay override,
//!   partition/heal) applied as virtual time crosses each timestamp —
//!   the exact idiom of [`crate::Scenario`], aimed at links instead of
//!   devices.
//! * **Every impairment decision is recorded.** Each send appends a
//!   [`SendRecord`] to the trace; a sim rebuilt with
//!   [`NetSim::begin_replay`] re-applies the recorded verdicts instead of
//!   drawing fresh randomness, so a failing run replays **bit-identically
//!   from its log** even across RNG or parameter drift.
//!
//! Timers and other caller-owned events enter the same queue through
//! [`NetSim::schedule_in`]; they are never impaired and never recorded
//! (the caller's control flow is already deterministic).

use std::collections::VecDeque;

use orco_tensor::OrcoRng;

use crate::event::EventQueue;

/// Static parameters of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Minimum one-way delivery delay, seconds.
    pub delay_s: f64,
    /// Extra uniformly-drawn delay in `[0, jitter_s)`, seconds. A
    /// nonzero jitter opens a **reordering window**: two sends issued
    /// back-to-back may deliver in either order.
    pub jitter_s: f64,
    /// Per-send Bernoulli loss probability in `[0, 1)`.
    pub loss_prob: f64,
}

impl LinkParams {
    /// A perfect link: zero delay, zero jitter, zero loss.
    #[must_use]
    pub fn ideal() -> Self {
        Self { delay_s: 0.0, jitter_s: 0.0, loss_prob: 0.0 }
    }

    fn assert_valid(&self) {
        assert!(
            self.delay_s.is_finite() && self.delay_s >= 0.0,
            "LinkParams: delay_s must be finite and >= 0 (got {})",
            self.delay_s
        );
        assert!(
            self.jitter_s.is_finite() && self.jitter_s >= 0.0,
            "LinkParams: jitter_s must be finite and >= 0 (got {})",
            self.jitter_s
        );
        assert!(
            (0.0..1.0).contains(&self.loss_prob),
            "LinkParams: loss_prob must be in [0, 1) (got {})",
            self.loss_prob
        );
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::ideal()
    }
}

/// One scripted perturbation of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAction {
    /// Override the link's loss probability.
    SetLoss {
        /// Per-send loss probability in `[0, 1)`.
        loss_prob: f64,
    },
    /// Clear the loss override (loss returns to the link's base value).
    ClearLoss,
    /// Override the link's delay and jitter.
    SetDelay {
        /// Minimum one-way delay, seconds.
        delay_s: f64,
        /// Extra uniform delay bound, seconds.
        jitter_s: f64,
    },
    /// Clear the delay override.
    ClearDelay,
    /// Partition the link: every send is dropped until [`LinkAction::Heal`].
    Partition,
    /// Heal a partition.
    Heal,
}

/// A time-ordered script of per-link [`LinkAction`]s.
///
/// # Examples
///
/// ```
/// use orco_sim::NetScenario;
///
/// let script = NetScenario::new()
///     .lossy(0, 1.0..3.0, 0.25)   // link 0 drops 25% for two seconds
///     .partition(1, 2.0..2.5)     // link 1 is cut for 500 ms
///     .slow(0, 4.0..5.0, 0.050, 0.010);
/// assert_eq!(script.len(), 6); // window helpers script start + end
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetScenario {
    actions: Vec<(f64, usize, LinkAction)>,
}

impl NetScenario {
    /// An empty script (all links stay at their base parameters).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scripted actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the script is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Schedules `action` on `link` at virtual time `t_s`.
    ///
    /// # Panics
    ///
    /// Panics if `t_s` is not a finite number of seconds ≥ 0.
    #[must_use]
    pub fn at(mut self, t_s: f64, link: usize, action: LinkAction) -> Self {
        orco_wsn::clock::assert_monotone_dt(t_s);
        self.actions.push((t_s, link, action));
        self
    }

    /// Degrades `link` to `loss_prob` over `window`.
    #[must_use]
    pub fn lossy(self, link: usize, window: std::ops::Range<f64>, loss_prob: f64) -> Self {
        self.at(window.start, link, LinkAction::SetLoss { loss_prob }).at(
            window.end,
            link,
            LinkAction::ClearLoss,
        )
    }

    /// Slows `link` to `delay_s` (+ uniform `jitter_s`) over `window`.
    #[must_use]
    pub fn slow(
        self,
        link: usize,
        window: std::ops::Range<f64>,
        delay_s: f64,
        jitter_s: f64,
    ) -> Self {
        self.at(window.start, link, LinkAction::SetDelay { delay_s, jitter_s }).at(
            window.end,
            link,
            LinkAction::ClearDelay,
        )
    }

    /// Partitions `link` over `window` (every send in it is dropped).
    #[must_use]
    pub fn partition(self, link: usize, window: std::ops::Range<f64>) -> Self {
        self.at(window.start, link, LinkAction::Partition).at(window.end, link, LinkAction::Heal)
    }

    /// Cuts `link` at `from_t_s` and never heals it — the script of a
    /// crashed endpoint's links (fleet kill scenarios), where a healing
    /// window would be a lie.
    #[must_use]
    pub fn cut(self, link: usize, from_t_s: f64) -> Self {
        self.at(from_t_s, link, LinkAction::Partition)
    }

    /// The script sorted by time (stable: same-time actions keep their
    /// scripting order).
    #[must_use]
    pub fn sorted_actions(&self) -> Vec<(f64, usize, LinkAction)> {
        let mut sorted = self.actions.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        sorted
    }

    /// Checks every link index the script references against a sim with
    /// `num_links` links (a typo'd index would silently impair nothing).
    ///
    /// # Panics
    ///
    /// Panics naming the first out-of-range index.
    pub fn validate_links(&self, num_links: usize) {
        for (t, link, _) in &self.actions {
            assert!(
                *link < num_links,
                "net scenario action at t = {t} s references link {link}, but the sim has \
                 only {num_links} links (indices 0..{num_links})"
            );
        }
    }
}

/// The impairment decision made for one send, in send order. The trace of
/// these is the **event log** of a run: replaying it with
/// [`NetSim::begin_replay`] reproduces the run bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendRecord {
    /// The link the send went down.
    pub link: u32,
    /// What happened to it.
    pub verdict: SendVerdict,
}

/// What the sim decided to do with a send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendVerdict {
    /// Delivered after `delay_s` seconds.
    Delivered {
        /// The drawn one-way delay, seconds.
        delay_s: f64,
    },
    /// Dropped by the link's Bernoulli loss draw.
    Lost,
    /// Dropped because the link was partitioned.
    Partitioned,
}

#[derive(Debug)]
struct LinkState {
    base: LinkParams,
    loss_override: Option<f64>,
    delay_override: Option<(f64, f64)>,
    partitioned: bool,
}

impl LinkState {
    fn loss_prob(&self) -> f64 {
        self.loss_override.unwrap_or(self.base.loss_prob)
    }

    fn delay(&self) -> (f64, f64) {
        self.delay_override.unwrap_or((self.base.delay_s, self.base.jitter_s))
    }
}

/// A deterministic impaired-link simulator over caller-defined links.
///
/// Payloads are opaque to the sim; delivery order is the total
/// `(time, tie, sequence)` order of [`EventQueue`], so a run is a pure
/// function of its seed, links, script, and the caller's send/schedule
/// sequence — and of the recorded trace alone under replay.
#[derive(Debug)]
pub struct NetSim<T> {
    queue: EventQueue<T>,
    links: Vec<LinkState>,
    /// Scripted actions not yet applied, ascending in time.
    actions: VecDeque<(f64, usize, LinkAction)>,
    rng: OrcoRng,
    now_s: f64,
    trace: Vec<SendRecord>,
    replay: Option<VecDeque<SendRecord>>,
}

impl<T> NetSim<T> {
    /// An empty sim drawing impairment randomness from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            queue: EventQueue::new(),
            links: Vec::new(),
            actions: VecDeque::new(),
            rng: OrcoRng::from_seed_u64(seed),
            now_s: 0.0,
            trace: Vec::new(),
            replay: None,
        }
    }

    /// Adds a unidirectional link and returns its index.
    ///
    /// # Panics
    ///
    /// Panics when `params` are out of range (negative delay, loss ≥ 1).
    pub fn add_link(&mut self, params: LinkParams) -> usize {
        params.assert_valid();
        self.links.push(LinkState {
            base: params,
            loss_override: None,
            delay_override: None,
            partitioned: false,
        });
        self.links.len() - 1
    }

    /// Number of links added so far.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Merges `scenario` into the pending impairment script. Actions
    /// whose time has already passed apply immediately.
    ///
    /// # Panics
    ///
    /// Panics if the script references a link index this sim does not
    /// have (add links first).
    pub fn script(&mut self, scenario: &NetScenario) {
        scenario.validate_links(self.links.len());
        let mut merged: Vec<_> = self.actions.drain(..).collect();
        merged.extend(scenario.sorted_actions());
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.actions = merged.into();
        self.apply_actions_until(self.now_s);
    }

    /// Switches the sim into replay mode: subsequent sends consume the
    /// recorded verdicts (in order) instead of drawing randomness. The
    /// caller must re-issue the same send sequence; a mismatched link is
    /// a replay divergence and panics with a diagnostic.
    pub fn begin_replay(&mut self, trace: Vec<SendRecord>) {
        self.replay = Some(trace.into());
    }

    /// Current virtual time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// The impairment decisions recorded so far, in send order.
    #[must_use]
    pub fn trace(&self) -> &[SendRecord] {
        &self.trace
    }

    /// Sends `payload` down `link` at the current virtual time. The
    /// verdict (and, when delivered, the drawn delay) is recorded in the
    /// trace; delivered payloads surface from [`NetSim::next`] at
    /// `now + delay`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link index, or in replay mode when the
    /// send sequence diverges from the recorded trace.
    pub fn send(&mut self, link: usize, tie: u64, payload: T) -> SendVerdict {
        self.apply_actions_until(self.now_s);
        assert!(link < self.links.len(), "send on unknown link {link}");
        let verdict = match &mut self.replay {
            Some(tape) => {
                let rec = tape.pop_front().unwrap_or_else(|| {
                    panic!(
                        "replay divergence: trace exhausted at send #{} (link {link})",
                        self.trace.len()
                    )
                });
                assert!(
                    rec.link as usize == link,
                    "replay divergence at send #{}: live run uses link {link}, trace says \
                     link {}",
                    self.trace.len(),
                    rec.link
                );
                rec.verdict
            }
            None => {
                let state = &self.links[link];
                if state.partitioned {
                    SendVerdict::Partitioned
                } else if self.rng.bernoulli_f64(state.loss_prob()) {
                    SendVerdict::Lost
                } else {
                    let (delay, jitter) = state.delay();
                    let extra = if jitter > 0.0 { jitter * self.rng.next_f64() } else { 0.0 };
                    SendVerdict::Delivered { delay_s: delay + extra }
                }
            }
        };
        self.trace.push(SendRecord { link: link as u32, verdict });
        if let SendVerdict::Delivered { delay_s } = verdict {
            self.queue.schedule(self.now_s + delay_s, tie, payload);
        }
        verdict
    }

    /// Injects a caller-owned event (a timer, say) `dt_s` seconds from
    /// now. Never impaired, never recorded.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not a finite number of seconds ≥ 0.
    pub fn schedule_in(&mut self, dt_s: f64, tie: u64, payload: T) {
        orco_wsn::clock::assert_monotone_dt(dt_s);
        self.queue.schedule(self.now_s + dt_s, tie, payload);
    }

    /// Pops the earliest pending event, advancing virtual time to it and
    /// applying any scripted actions whose time has come.
    ///
    /// Not an [`Iterator`]: stepping mutates link/partition state and
    /// callers interleave `send`s between pops.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(f64, T)> {
        let (t, payload) = self.queue.pop()?;
        self.now_s = t;
        self.apply_actions_until(t);
        Some((t, payload))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time_s(&self) -> Option<f64> {
        self.queue.peek_time_s()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn apply_actions_until(&mut self, t_s: f64) {
        while let Some(&(at, link, action)) = self.actions.front() {
            if at > t_s {
                break;
            }
            self.actions.pop_front();
            let state = &mut self.links[link];
            match action {
                LinkAction::SetLoss { loss_prob } => {
                    assert!(
                        (0.0..1.0).contains(&loss_prob),
                        "SetLoss: loss_prob must be in [0, 1) (got {loss_prob})"
                    );
                    state.loss_override = Some(loss_prob);
                }
                LinkAction::ClearLoss => state.loss_override = None,
                LinkAction::SetDelay { delay_s, jitter_s } => {
                    assert!(
                        delay_s.is_finite()
                            && delay_s >= 0.0
                            && jitter_s.is_finite()
                            && jitter_s >= 0.0,
                        "SetDelay: delay/jitter must be finite and >= 0"
                    );
                    state.delay_override = Some((delay_s, jitter_s));
                }
                LinkAction::ClearDelay => state.delay_override = None,
                LinkAction::Partition => state.partitioned = true,
                LinkAction::Heal => state.partitioned = false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with_link(params: LinkParams, seed: u64) -> NetSim<u32> {
        let mut sim = NetSim::new(seed);
        sim.add_link(params);
        sim
    }

    #[test]
    fn ideal_link_delivers_in_order_with_zero_delay() {
        let mut sim = sim_with_link(LinkParams::ideal(), 1);
        sim.send(0, 0, 10);
        sim.send(0, 0, 20);
        assert_eq!(sim.next(), Some((0.0, 10)));
        assert_eq!(sim.next(), Some((0.0, 20)));
        assert_eq!(sim.next(), None);
    }

    #[test]
    fn loss_drops_and_records() {
        let mut sim = sim_with_link(LinkParams { loss_prob: 0.5, ..LinkParams::ideal() }, 42);
        let mut lost = 0;
        for i in 0..200 {
            if sim.send(0, 0, i) == SendVerdict::Lost {
                lost += 1;
            }
        }
        assert!((50..150).contains(&lost), "loss draw wildly off: {lost}/200");
        assert_eq!(sim.trace().len(), 200);
    }

    #[test]
    fn partition_window_cuts_and_heals() {
        let mut sim = sim_with_link(LinkParams::ideal(), 3);
        sim.script(&NetScenario::new().partition(0, 1.0..2.0));
        sim.send(0, 0, 1); // before the window: delivered at t = 0
        sim.schedule_in(1.5, 0, 99); // timer inside the window
        assert_eq!(sim.next(), Some((0.0, 1)));
        assert_eq!(sim.next(), Some((1.5, 99)));
        assert_eq!(sim.send(0, 0, 2), SendVerdict::Partitioned);
        sim.schedule_in(1.0, 0, 100); // t = 2.5: window over
        assert_eq!(sim.next(), Some((2.5, 100)));
        assert!(matches!(sim.send(0, 0, 3), SendVerdict::Delivered { .. }));
    }

    #[test]
    fn jitter_opens_a_reordering_window() {
        let mut sim =
            sim_with_link(LinkParams { delay_s: 0.01, jitter_s: 0.05, ..LinkParams::ideal() }, 7);
        // Send a burst; with jitter some later send must overtake an
        // earlier one at this seed (and any reasonable one).
        for i in 0..32u32 {
            sim.send(0, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| sim.next()).map(|(_, p)| p).collect();
        assert_eq!(order.len(), 32);
        assert!(order.windows(2).any(|w| w[0] > w[1]), "no reordering observed: {order:?}");
    }

    #[test]
    fn replay_reproduces_verdicts_bitwise() {
        let params = LinkParams { delay_s: 0.002, jitter_s: 0.004, loss_prob: 0.3 };
        let mut live = sim_with_link(params, 1234);
        let mut verdicts = Vec::new();
        for i in 0..100 {
            verdicts.push(live.send(0, 0, i));
        }
        let deliveries: Vec<(f64, u32)> = std::iter::from_fn(|| live.next()).collect();
        let trace = live.trace().to_vec();

        // Different seed, different base params: the tape wins anyway.
        let mut replayed =
            sim_with_link(LinkParams { delay_s: 9.9, jitter_s: 9.9, loss_prob: 0.9 }, 999);
        replayed.begin_replay(trace.clone());
        for i in 0..100 {
            assert_eq!(replayed.send(0, 0, i), verdicts[i as usize]);
        }
        let replay_deliveries: Vec<(f64, u32)> = std::iter::from_fn(|| replayed.next()).collect();
        assert_eq!(replay_deliveries, deliveries, "replay must reproduce delivery schedule");
        assert_eq!(replayed.trace(), &trace[..], "replay re-records the same trace");
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn replay_divergence_is_loud() {
        let mut live = sim_with_link(LinkParams::ideal(), 5);
        live.send(0, 0, 1);
        let trace = live.trace().to_vec();
        let mut replayed = NetSim::new(5);
        replayed.add_link(LinkParams::ideal());
        replayed.add_link(LinkParams::ideal());
        replayed.begin_replay(trace);
        replayed.send(1, 0, 1); // trace says link 0
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn script_validates_link_indices() {
        let mut sim = sim_with_link(LinkParams::ideal(), 0);
        sim.script(&NetScenario::new().lossy(3, 0.0..1.0, 0.5));
    }
}
