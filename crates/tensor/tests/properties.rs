//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic laws the rest of the workspace silently relies
//! on: GEMM distributivity/associativity (within f32 tolerance), transpose
//! identities, im2col/col2im adjointness, and serializer round-trips.

use orco_tensor::{col2im, im2col, serialize, Conv2dGeom, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with dims in [1, max_dim] and small-magnitude entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a pair of matrices with compatible inner dimension for matmul.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = prop::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d).unwrap());
        let b = prop::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d).unwrap());
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_matmul((a, b) in matmul_pair(8)) {
        // (AB)ᵀ == Bᵀ Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3), "max diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn t_matmul_equals_explicit((a, b) in matmul_pair(8)) {
        // aᵀ·(a·b) two ways
        let prod = a.matmul(&b);
        let lhs = a.t_matmul(&prod);
        let rhs = a.transpose().matmul(&prod);
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn matmul_t_equals_explicit((a, b) in matmul_pair(8)) {
        // a · (bᵀ)ᵀ computed via matmul_t must equal a · b.
        let lhs = a.matmul_t(&b.transpose());
        let rhs = a.matmul(&b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn view_kernels_bit_identical_to_owning_api((a, b) in matmul_pair(8)) {
        // The `_into` kernels over borrowed views must reproduce the
        // allocating products **bit for bit** — same kernels, same
        // summation order — even into a dirty reused buffer.
        let mut out = Matrix::filled(3, 3, f32::NAN);
        out.reset(a.rows(), b.cols());
        a.as_view().matmul_into(b.as_view(), out.as_view_mut());
        prop_assert_eq!(&out, &a.matmul(&b));

        out.reset(a.cols(), b.cols());
        let ab = a.matmul(&b);
        a.as_view().t_matmul_into(ab.as_view(), out.as_view_mut());
        prop_assert_eq!(&out, &a.t_matmul(&ab));

        out.reset(a.rows(), b.cols());
        let bt = b.transpose();
        a.as_view().matmul_t_into(bt.as_view(), out.as_view_mut());
        prop_assert_eq!(&out, &a.matmul_t(&bt));
    }

    #[test]
    fn matvec_into_variants_bit_identical(m in matrix_strategy(12), seed in 0u64..1000) {
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(seed);
        let v_cols: Vec<f32> = (0..m.cols()).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let v_rows: Vec<f32> = (0..m.rows()).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let mut out = vec![f32::NAN; m.rows()];
        m.matvec_into(&v_cols, &mut out);
        prop_assert_eq!(&out, &m.matvec(&v_cols));
        let mut out_t = vec![f32::NAN; m.cols()];
        m.t_matvec_into(&v_rows, &mut out_t);
        prop_assert_eq!(&out_t, &m.transpose().matvec(&v_rows));
    }

    #[test]
    fn row_range_views_and_col_iter_agree(m in matrix_strategy(10), seed in 0u64..1000) {
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(seed);
        let lo = (rng.next_u64() as usize) % m.rows();
        let hi = lo + (rng.next_u64() as usize) % (m.rows() - lo + 1);
        prop_assert_eq!(m.view_rows(lo..hi).to_matrix(), m.slice_rows(lo..hi));
        let c = (rng.next_u64() as usize) % m.cols();
        let lazy: Vec<f32> = m.col_iter(c).collect();
        prop_assert_eq!(lazy, m.col(c));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matmul_pair(8), seed in 0u64..1000) {
        // a(b + c) == ab + ac, with c the same shape as b.
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(seed);
        let c = Matrix::from_fn(b.rows(), b.cols(), |_, _| rng.uniform(-5.0, 5.0));
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-2), "max diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn addition_commutes(m in matrix_strategy(12), seed in 0u64..1000) {
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(seed);
        let n = Matrix::from_fn(m.rows(), m.cols(), |_, _| rng.uniform(-10.0, 10.0));
        prop_assert_eq!(&m + &n, &n + &m);
    }

    #[test]
    fn scale_then_sum_is_linear(m in matrix_strategy(12), k in -4.0f32..4.0) {
        let scaled_sum = m.scale(k).sum();
        prop_assert!((scaled_sum - k * m.sum()).abs() <= 1e-2 * (1.0 + m.sum().abs() * k.abs()));
    }

    #[test]
    fn vstack_preserves_rows(m in matrix_strategy(8)) {
        let v = m.vstack(&m);
        prop_assert_eq!(v.rows(), 2 * m.rows());
        for r in 0..m.rows() {
            prop_assert_eq!(v.row(r), m.row(r));
            prop_assert_eq!(v.row(r + m.rows()), m.row(r));
        }
    }

    #[test]
    fn serializer_roundtrips(m in matrix_strategy(10)) {
        let text = serialize::matrix_to_text(&m);
        let back = serialize::matrix_from_text(&text).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn col_sums_match_transpose_row_sums(m in matrix_strategy(12)) {
        let cs = m.col_sums();
        let rs = m.transpose().row_sums();
        for (a, b) in cs.iter().zip(&rs) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        (c, h, w, k, stride, pad) in (1usize..=2, 3usize..=6, 3usize..=6, 1usize..=3, 1usize..=2, 0usize..=1),
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = Conv2dGeom::new(c, h, w, k, stride, pad);
        let mut rng = orco_tensor::OrcoRng::from_seed_u64(seed);
        let x: Vec<f32> = (0..geom.input_len()).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let p = Matrix::from_fn(geom.patch_len(), geom.out_positions(), |_, _| rng.uniform(-1.0, 1.0));
        let lhs = im2col(&x, &geom).dot(&p);
        let scattered = col2im(&p, &geom);
        let rhs: f32 = x.iter().zip(&scattered).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "adjoint violated: {} vs {}", lhs, rhs);
    }

    #[test]
    fn argmax_rows_is_maximal(m in matrix_strategy(10)) {
        let idx = m.argmax_rows();
        for (r, &i) in idx.iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[i] >= v);
            }
        }
    }
}
