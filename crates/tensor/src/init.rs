//! Weight initialization schemes for neural-network layers.
//!
//! The OrcoDCS encoder/decoder and the baselines all initialize their weight
//! matrices through this module so experiments are reproducible: every
//! scheme takes an explicit [`OrcoRng`].

use crate::matrix::Matrix;
use crate::rng::OrcoRng;

/// Weight initialization scheme.
///
/// # Examples
///
/// ```
/// use orco_tensor::{init::Init, OrcoRng};
///
/// let mut rng = OrcoRng::from_label("doc", 0);
/// let w = Init::XavierUniform.matrix(64, 128, &mut rng);
/// assert_eq!(w.shape(), (64, 128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Every element set to the given constant.
    Constant(f32),
    /// Uniform in `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`
    /// (Glorot & Bengio 2010). Suits sigmoid/tanh layers — the paper's
    /// encoder/decoder use sigmoid activations.
    XavierUniform,
    /// Normal with `std = sqrt(2 / fan_in)` (He et al. 2015). Suits ReLU
    /// layers — used in the conv stacks of DCSNet and the classifier.
    HeNormal,
    /// Uniform in `[lo, hi]`.
    Uniform(f32, f32),
    /// Normal with the given mean and standard deviation.
    Normal(f32, f32),
}

impl Init {
    /// Materializes a `rows`×`cols` weight matrix.
    ///
    /// For the fan-based schemes, `cols` is treated as fan-in and `rows` as
    /// fan-out, matching the `output = W · input` convention used by the
    /// dense layers in `orco-nn`.
    #[must_use]
    pub fn matrix(self, rows: usize, cols: usize, rng: &mut OrcoRng) -> Matrix {
        let fan_in = cols.max(1) as f32;
        let fan_out = rows.max(1) as f32;
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Constant(v) => Matrix::filled(rows, cols, v),
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out)).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.uniform(-limit, limit))
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, std))
            }
            Init::Uniform(lo, hi) => Matrix::from_fn(rows, cols, |_, _| rng.uniform(lo, hi)),
            Init::Normal(mean, std) => Matrix::from_fn(rows, cols, |_, _| rng.normal(mean, std)),
        }
    }

    /// Materializes a length-`n` vector (used for biases).
    #[must_use]
    pub fn vector(self, n: usize, rng: &mut OrcoRng) -> Vec<f32> {
        self.matrix(1, n, rng).into_vec()
    }

    /// Materializes weights with explicit fan-in/fan-out, for layers whose
    /// matrix shape does not equal `(fan_out, fan_in)` — e.g. convolution
    /// kernels stored as `(out_c, in_c*k*k)` where fan-in is `in_c*k*k`.
    #[must_use]
    pub fn matrix_with_fans(
        self,
        rows: usize,
        cols: usize,
        fan_in: usize,
        fan_out: usize,
        rng: &mut OrcoRng,
    ) -> Matrix {
        match self {
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in.max(1) + fan_out.max(1)) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.uniform(-limit, limit))
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, std))
            }
            other => other.matrix(rows, cols, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let mut rng = OrcoRng::from_label("init", 0);
        assert!(Init::Zeros.matrix(3, 3, &mut rng).as_slice().iter().all(|&v| v == 0.0));
        assert!(Init::Constant(2.5).vector(4, &mut rng).iter().all(|&v| v == 2.5));
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = OrcoRng::from_label("init", 1);
        let w = Init::XavierUniform.matrix(100, 200, &mut rng);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not degenerate: should use most of the range.
        assert!(w.max() > limit * 0.8);
        assert!(w.min() < -limit * 0.8);
    }

    #[test]
    fn he_normal_std_plausible() {
        let mut rng = OrcoRng::from_label("init", 2);
        let w = Init::HeNormal.matrix(200, 100, &mut rng);
        let mean = w.mean();
        let var = w.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 100.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - expected).abs() < expected * 0.15, "var {var} vs {expected}");
    }

    #[test]
    fn deterministic_given_same_rng() {
        let mut a = OrcoRng::from_label("init-det", 0);
        let mut b = OrcoRng::from_label("init-det", 0);
        let wa = Init::Normal(0.0, 1.0).matrix(5, 5, &mut a);
        let wb = Init::Normal(0.0, 1.0).matrix(5, 5, &mut b);
        assert_eq!(wa, wb);
    }

    #[test]
    fn matrix_with_fans_uses_given_fans() {
        let mut rng = OrcoRng::from_label("init-fans", 0);
        // out_c=8 kernels of size in_c*k*k=27: fan_in 27.
        let w = Init::HeNormal.matrix_with_fans(8, 27, 27, 8, &mut rng);
        assert_eq!(w.shape(), (8, 27));
        let std = (2.0f32 / 27.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() < 6.0 * std));
    }
}
