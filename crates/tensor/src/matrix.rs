use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::error::TensorError;

/// A dense, row-major matrix of `f32`.
///
/// `Matrix` is the workhorse type of the OrcoDCS reproduction: batches of
/// sensing data are stored one sample per row, weight matrices of dense
/// layers are `Matrix`, and convolutions are lowered to matrix products via
/// [`crate::im2col()`].
///
/// # Shape conventions
///
/// * `rows` indexes samples (for data) or output features (for weights).
/// * `cols` indexes features (for data) or input features (for weights).
///
/// # Panics vs. errors
///
/// Constructors that take caller-supplied buffers are fallible and return
/// [`TensorError`]. Arithmetic operations **panic** on shape mismatch: a
/// mismatched GEMM is a logic error, and the panic message names the
/// operation and both shapes.
///
/// # Examples
///
/// ```
/// use orco_tensor::Matrix;
///
/// let eye = Matrix::identity(3);
/// let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0])?;
/// assert_eq!(eye.matmul(&x).as_slice(), x.as_slice());
/// # Ok::<(), orco_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows`×`cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows`×`cols` matrix filled with ones.
    #[must_use]
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows`×`cols` matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n`×`n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    #[must_use]
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a single-column matrix from a slice.
    #[must_use]
    pub fn col_vector(values: &[f32]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Stacks equal-length rows into a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if rows have differing lengths,
    /// or [`TensorError::EmptyDimension`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        let first = rows.first().ok_or(TensorError::EmptyDimension { dim: "rows" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    left: (1, cols),
                    right: (1, r.len()),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diag(diag: &[f32]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix contains no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major buffer.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "set({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        let start = r * self.cols;
        let end = start + self.cols;
        &mut self.data[start..end]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Iterates over column `c` top to bottom without allocating (the
    /// lazy twin of [`Matrix::col`]).
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(move |r| self.data[r * self.cols + c])
    }

    /// A borrowed view of the whole matrix (the entry point into the
    /// zero-copy [`crate::MatView`] batch API).
    #[must_use]
    pub fn as_view(&self) -> crate::MatView<'_> {
        crate::MatView::new(self.rows, self.cols, &self.data)
            .expect("matrix buffer length is consistent by construction")
    }

    /// A mutable borrowed view of the whole matrix.
    #[must_use]
    pub fn as_view_mut(&mut self) -> crate::MatViewMut<'_> {
        crate::MatViewMut::new(self.rows, self.cols, &mut self.data)
            .expect("matrix buffer length is consistent by construction")
    }

    /// A zero-copy view of rows `range.start..range.end` (the borrowing
    /// twin of [`Matrix::slice_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds the number of rows.
    #[must_use]
    pub fn view_rows(&self, range: std::ops::Range<usize>) -> crate::MatView<'_> {
        self.as_view().rows_range(range)
    }

    /// Copies `other` into `self`, reusing the existing allocation when it
    /// is large enough (unlike `clone_from`, which re-allocates through
    /// `clone`).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reshapes in place to `rows`×`cols` with every element zeroed,
    /// reusing the existing allocation when it is large enough. This is
    /// how batch pipelines recycle one output buffer across rounds
    /// instead of allocating per call.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns a new matrix containing rows `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds the number of rows.
    #[must_use]
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.rows, "slice_rows range end {} > rows {}", range.end, self.rows);
        let data = self.data[range.start * self.cols..range.end * self.cols].to_vec();
        Matrix { rows: range.len(), cols: self.cols, data }
    }

    /// Returns a new matrix containing the rows selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Returns a new matrix containing the columns selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        for &c in indices {
            assert!(c < self.cols, "select_cols index {c} out of bounds for {} cols", self.cols);
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.data[r * indices.len() + j] = self.data[r * self.cols + c];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape matrices element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    #[must_use]
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element, returning a new matrix.
    #[must_use]
    pub fn shift(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// `self + alpha * other`, the BLAS `axpy` pattern.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, alpha: f32) {
        self.assert_same_shape(other, "add_scaled_inplace");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    // ------------------------------------------------------------------
    // Matrix products
    // ------------------------------------------------------------------

    /// Matrix product `self * other`.
    ///
    /// Blocked (4-row tiles over a streamed `B`) and row-parallel across the
    /// [`crate::parallel`] thread budget. Every output element accumulates
    /// in ascending-`k` order regardless of tiling or thread count, so
    /// results are bit-identical from 1 to N threads. Shares its kernel
    /// with [`crate::MatView::matmul_into`], which writes the same result
    /// into a caller-owned buffer instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert!(
            self.cols == other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        crate::view::matmul_kernel(&self.data, k, &other.data, n, &mut out);
        Matrix { rows: m, cols: n, data: out }
    }

    /// Matrix product `selfᵀ * other` without materializing the transpose.
    ///
    /// Row-parallel over output rows (columns of `self`); each output
    /// element accumulates in ascending-`k` order, so results are
    /// bit-identical at any thread count. Shares its kernel with
    /// [`crate::MatView::t_matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert!(
            self.rows == other.rows,
            "t_matmul shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = vec![0.0f32; m * n];
        crate::view::t_matmul_kernel(&self.data, m, k, &other.data, n, &mut out);
        Matrix { rows: m, cols: n, data: out }
    }

    /// Matrix product `self * otherᵀ` without materializing the transpose.
    ///
    /// Row-parallel; each output element is one dot product computed in
    /// ascending-`k` order, bit-identical at any thread count. Shares its
    /// kernel with [`crate::MatView::matmul_t_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert!(
            self.cols == other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        crate::view::matmul_t_kernel(&self.data, k, &other.data, n, &mut out);
        Matrix { rows: m, cols: n, data: out }
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec: vector length {} != cols {}", v.len(), self.cols);
        self.iter_rows().map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Dot product of two equally-shaped matrices viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn dot(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "dot");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Writes the transpose into a caller-owned matrix (reusing its
    /// allocation) instead of allocating like [`Matrix::transpose`].
    ///
    /// Batched encoders use this to materialize `Wᵀ` once per batch so the
    /// blocked [`Matrix::matmul`] kernel can stream it row-wise.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// `out = self · v` into a caller-owned buffer; see
    /// [`crate::MatView::matvec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f32], out: &mut [f32]) {
        self.as_view().matvec_into(v, out);
    }

    /// `out = selfᵀ · v` without materializing the transpose; see
    /// [`crate::MatView::t_matvec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn t_matvec_into(&self, v: &[f32], out: &mut [f32]) {
        self.as_view().t_matvec_into(v, out);
    }

    /// Reinterprets the buffer with a new shape (row-major order preserved).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `rows * cols != self.len()`.
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Matrix, TensorError> {
        if rows * cols != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.data.len(),
                actual: rows * cols,
            });
        }
        Ok(Matrix { rows, cols, data: self.data.clone() })
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    #[must_use]
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: col mismatch {} vs {}", self.cols, other.cols);
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Concatenates `self` and `other` side by side.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    #[must_use]
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch {} vs {}", self.rows, other.rows);
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    // ------------------------------------------------------------------
    // Broadcasting
    // ------------------------------------------------------------------

    /// Adds a length-`cols` row vector to every row, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(
            bias.len(),
            self.cols,
            "add_row_broadcast: bias len {} != cols {}",
            bias.len(),
            self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    /// Sums over rows, producing a length-`cols` vector.
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Means over rows, producing a length-`cols` vector.
    ///
    /// Returns zeros when the matrix has no rows.
    #[must_use]
    pub fn col_means(&self) -> Vec<f32> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let inv = 1.0 / self.rows as f32;
        self.col_sums().into_iter().map(|s| s * inv).collect()
    }

    /// Sums over columns, producing a length-`rows` vector.
    #[must_use]
    pub fn row_sums(&self) -> Vec<f32> {
        self.iter_rows().map(|r| r.iter().sum()).collect()
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`+inf` for an empty matrix).
    #[must_use]
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for an empty matrix).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm_l1(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// L2 (Frobenius) norm.
    #[must_use]
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in each row.
    ///
    /// Ties resolve to the first maximum; an empty row yields index 0.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold(
                        (0usize, f32::NEG_INFINITY),
                        |(bi, bv), (i, &v)| {
                            if v > bv {
                                (i, v)
                            } else {
                                (bi, bv)
                            }
                        },
                    )
                    .0
            })
            .collect()
    }

    /// Whether any element is NaN or infinite.
    #[must_use]
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// Whether `self` and `other` agree element-wise within `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert!(
            self.shape() == other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "sub_assign");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl MulAssign<f32> for Matrix {
    fn mul_assign(&mut self, rhs: f32) {
        self.map_inplace(|v| v * rhs);
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_SHOW: usize = 8;
        for (i, row) in self.iter_rows().enumerate().take(MAX_SHOW) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate().take(MAX_SHOW) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:8.4}")?;
            }
            if self.cols > MAX_SHOW {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
            if i + 1 == MAX_SHOW && self.rows > MAX_SHOW {
                writeln!(f, "  …")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn zeros_ones_filled() {
        assert!(Matrix::zeros(2, 2).as_slice().iter().all(|&v| v == 0.0));
        assert!(Matrix::ones(2, 2).as_slice().iter().all(|&v| v == 1.0));
        assert!(Matrix::filled(3, 1, 7.5).as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::from_vec(2, 3, vec![0.0; 5]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 6, actual: 5 });
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_checks_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
        assert!(matches!(Matrix::from_rows(&[]).unwrap_err(), TensorError::EmptyDimension { .. }));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = sample();
        let left = Matrix::identity(2).matmul(&m);
        let right = m.matmul(&Matrix::identity(3));
        assert_eq!(left, m);
        assert_eq!(right, m);
    }

    #[test]
    fn matmul_known_values() {
        let a = sample();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let _ = sample().matmul(&sample());
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_vec(2, 4, (0..8).map(|v| v as f32).collect()).unwrap();
        assert!(a.t_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect()).unwrap();
        assert!(a.matmul_t(&b).approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, -1.0, 2.0];
        let expected = a.matmul(&Matrix::col_vector(&v));
        assert_eq!(a.matvec(&v), expected.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn reshape_preserves_order() {
        let m = sample().reshape(3, 2).unwrap();
        assert_eq!(m.as_slice(), sample().as_slice());
        assert!(sample().reshape(4, 2).is_err());
    }

    #[test]
    fn stack_operations() {
        let a = sample();
        let v = a.vstack(&a);
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), a.row(0));
        let h = a.hstack(&a);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(&h.row(0)[3..], a.row(0));
    }

    #[test]
    fn broadcasting_and_reductions() {
        let m = sample();
        let b = m.add_row_broadcast(&[1.0, 0.0, -1.0]);
        assert_eq!(b.as_slice(), &[2.0, 2.0, 2.0, 5.0, 5.0, 5.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_means(), vec![2.5, 3.5, 4.5]);
        assert_eq!(m.sum(), 21.0);
        assert!((m.mean() - 3.5).abs() < 1e-6);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 6.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]).unwrap();
        assert_eq!(m.norm_l1(), 7.0);
        assert_eq!(m.norm_l2(), 5.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 3.0, 3.0, -1.0, -5.0, -2.0]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = sample();
        let r = m.select_rows(&[1, 0, 1]);
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r.row(0), m.row(1));
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.as_slice(), &[3.0, 1.0, 6.0, 4.0]);
    }

    #[test]
    fn operators() {
        let m = sample();
        let sum = &m + &m;
        assert_eq!(sum, m.scale(2.0));
        let diff = &sum - &m;
        assert_eq!(diff, m);
        let neg = -&m;
        assert_eq!(neg, m.scale(-1.0));
        let mut acc = m.clone();
        acc += &m;
        acc -= &m;
        acc *= 3.0;
        assert_eq!(acc, m.scale(3.0));
    }

    #[test]
    fn hadamard_and_dot() {
        let m = sample();
        assert_eq!(m.hadamard(&m).as_slice(), &[1.0, 4.0, 9.0, 16.0, 25.0, 36.0]);
        assert_eq!(m.dot(&m), 91.0);
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut m = sample();
        let other = Matrix::ones(2, 3);
        m.add_scaled_inplace(&other, -2.0);
        assert_eq!(m.as_slice(), &[-1.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reset_and_copy_from_reuse_buffers() {
        let mut m = sample();
        let cap_before = m.as_slice().len();
        m.reset(1, 2);
        assert_eq!(m.shape(), (1, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(cap_before >= m.len());
        m.copy_from(&sample());
        assert_eq!(m, sample());
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m.set(0, 0, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let big = Matrix::zeros(20, 20);
        let s = format!("{big}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    fn get_set_and_index() {
        let mut m = sample();
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
        m.set(0, 1, 9.0);
        assert_eq!(m[(0, 1)], 9.0);
        m[(0, 1)] = 10.0;
        assert_eq!(m.get(0, 1), Some(10.0));
    }

    #[test]
    fn diag_matrix() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let v = d.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let m = sample();
        let mut n = m.clone();
        n.set(1, 1, 5.001);
        assert!(m.approx_eq(&n, 0.01));
        assert!(!m.approx_eq(&n, 0.0001));
        assert!((m.max_abs_diff(&n) - 0.001).abs() < 1e-4);
    }
}
