//! # orco-tensor
//!
//! Dense linear-algebra primitives for the OrcoDCS reproduction.
//!
//! This crate is the computational foundation of the workspace: a row-major
//! [`Matrix`] of `f32` with the operations needed by a small neural-network
//! library (GEMM in all transpose flavours, broadcasting, reductions), a
//! 4-dimensional [`Tensor4`] in `(N, C, H, W)` layout for image batches,
//! [`im2col()`]/[`col2im()`] lowering for convolutions, deterministic random
//! number generation ([`rng::OrcoRng`]), weight [`init`]ializers, and
//! descriptive [`stats`] (PSNR, mean/variance, histograms).
//!
//! No external BLAS or ML framework is used; everything is implemented from
//! scratch so the whole OrcoDCS system — encoder, decoder, baselines,
//! classifier — runs on exactly this code.
//!
//! ## Quick start
//!
//! ```
//! use orco_tensor::Matrix;
//!
//! let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])?;
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), (2, 2));
//! assert_eq!(c[(0, 0)], 58.0);
//! # Ok::<(), orco_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod tensor4;
mod view;

pub mod im2col;
pub mod init;
pub mod parallel;
pub mod rng;
pub mod serialize;
pub mod stats;

pub use error::TensorError;
pub use im2col::{col2im, im2col, Conv2dGeom};
pub use matrix::Matrix;
pub use rng::{fnv1a64, OrcoRng};
pub use tensor4::Tensor4;
pub use view::{MatView, MatViewMut};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
