use std::fmt;

/// Errors produced by tensor construction and shape-checked operations.
///
/// Operations whose shape requirements are statically evident from the call
/// site (e.g. [`crate::Matrix::matmul`]) panic on mismatch instead — a shape
/// mismatch there is a programming bug, not a recoverable condition. The
/// fallible constructors and parsers return this error type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match `rows * cols`.
    LengthMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A dimension was zero where a non-empty tensor is required.
    EmptyDimension {
        /// Human-readable name of the offending dimension.
        dim: &'static str,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must be below.
        bound: usize,
        /// Which axis the index addressed.
        axis: &'static str,
    },
    /// A serialized tensor could not be parsed.
    Parse {
        /// Description of what failed to parse.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length mismatch: expected {expected} elements, got {actual}")
            }
            TensorError::EmptyDimension { dim } => {
                write!(f, "dimension `{dim}` must be non-zero")
            }
            TensorError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in `{op}`: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            TensorError::OutOfBounds { index, bound, axis } => {
                write!(f, "index {index} out of bounds for axis `{axis}` (len {bound})")
            }
            TensorError::Parse { detail } => write!(f, "parse error: {detail}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch { expected: 6, actual: 5 };
        assert_eq!(e.to_string(), "buffer length mismatch: expected 6 elements, got 5");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "add" };
        assert!(e.to_string().contains("`add`"));
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }

    #[test]
    fn display_out_of_bounds_and_parse() {
        let e = TensorError::OutOfBounds { index: 9, bound: 4, axis: "row" };
        assert!(e.to_string().contains("axis `row`"));
        let p = TensorError::Parse { detail: "bad header".into() };
        assert!(p.to_string().contains("bad header"));
    }
}
