//! Borrowed matrix views and allocation-free GEMM kernels.
//!
//! The batched data plane of the OrcoDCS reproduction moves rounds of
//! sensing frames through codecs as **views over caller-owned memory**
//! instead of per-frame `Vec` allocations. [`MatView`] / [`MatViewMut`]
//! are the borrowed twins of [`Matrix`]: a shape plus a `&[f32]` /
//! `&mut [f32]`, constructible from a `Matrix`, a single row, or a
//! zero-copy row-range.
//!
//! The `_into` kernels ([`MatView::matmul_into`],
//! [`MatView::t_matmul_into`], [`MatView::matmul_t_into`],
//! [`MatView::matvec_into`], [`MatView::t_matvec_into`],
//! [`MatView::map_into`]) run the **same blocked, row-parallel kernels**
//! as the allocating [`Matrix`] products — literally the same code, via a
//! shared kernel layer — so results are bit-identical to the owning API
//! at any thread count, while the output lands in a buffer the caller
//! reuses across batches.
//!
//! ```
//! use orco_tensor::{MatView, Matrix};
//!
//! let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
//! let mut out = Matrix::zeros(0, 0); // reused across calls
//! out.reset(4, 2);
//! a.as_view().matmul_into(b.as_view(), out.as_view_mut());
//! assert_eq!(out, a.matmul(&b));
//! ```

use crate::error::TensorError;
use crate::matrix::Matrix;

/// Row-tile height for the blocked GEMM kernels: `B` is streamed once per
/// tile instead of once per output row. Must stay constant — per-row
/// summation order (ascending `k`) is what keeps results bit-identical
/// across thread counts.
pub(crate) const GEMM_ROW_TILE: usize = 4;

/// Minimum rows a worker thread must own before the GEMM kernels
/// parallelize; below this the spawn overhead dominates.
pub(crate) const GEMM_MIN_ROWS_PER_THREAD: usize = 8;

// ----------------------------------------------------------------------
// Shared kernels (used by both `Matrix` products and the `_into` API)
// ----------------------------------------------------------------------

/// `out[m×n] = a[m×k] · b[k×n]`, blocked and row-parallel. `out` must be
/// zeroed by the caller (the kernel accumulates).
pub(crate) fn matmul_kernel(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 || k == 0 {
        return;
    }
    crate::parallel::for_each_row_block(out, n, GEMM_MIN_ROWS_PER_THREAD, |first_row, block| {
        for (tile_idx, o_tile) in block.chunks_mut(GEMM_ROW_TILE * n).enumerate() {
            let i0 = first_row + tile_idx * GEMM_ROW_TILE;
            let tile_rows = o_tile.len() / n;
            for kk in 0..k {
                let b_row = &b[kk * n..(kk + 1) * n];
                for (r, o_row) in o_tile.chunks_exact_mut(n).enumerate() {
                    let av = a[(i0 + r) * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
                debug_assert!(tile_rows <= GEMM_ROW_TILE);
            }
        }
    });
}

/// `out[m×n] = aᵀ · b` where `a` is `k×m` and `b` is `k×n`, row-parallel.
/// `out` must be zeroed by the caller (the kernel accumulates).
pub(crate) fn t_matmul_kernel(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 || k == 0 {
        return;
    }
    // out[i][j] = sum_k a[k][i] * b[k][j]
    crate::parallel::for_each_row_block(out, n, GEMM_MIN_ROWS_PER_THREAD, |first_row, block| {
        let rows_here = block.len() / n;
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (r, o_row) in block.chunks_exact_mut(n).enumerate() {
                let av = a_row[first_row + r];
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
            debug_assert!(rows_here <= m);
        }
    });
}

/// `out[m×n] = a · bᵀ` where `a` is `m×k` and `b` is `n×k`, row-parallel.
/// Overwrites `out` (each element is one complete dot product).
pub(crate) fn matmul_t_kernel(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    crate::parallel::for_each_row_block(out, n, GEMM_MIN_ROWS_PER_THREAD, |first_row, block| {
        for (r, o_row) in block.chunks_exact_mut(n).enumerate() {
            let i = first_row + r;
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
    });
}

// ----------------------------------------------------------------------
// MatView
// ----------------------------------------------------------------------

/// An immutable, borrowed, row-major `f32` matrix: shape plus `&[f32]`.
///
/// The read side of the zero-copy batch API: its `_into` methods run the
/// same blocked, row-parallel kernels as the allocating [`Matrix`]
/// products, so results are bit-identical to the owning API at any
/// thread count while the output lands in a caller-reused buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatView<'a> {
    /// Wraps a row-major buffer as a `rows`×`cols` view.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if
    /// `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Views a slice as a single-row matrix (`1 × len`) — the bridge from
    /// the per-frame API into the batched one.
    #[must_use]
    pub fn from_row(row: &'a [f32]) -> Self {
        Self { rows: 1, cols: row.len(), data: row }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view contains no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f32]> + '_ {
        let (cols, data) = (self.cols, self.data);
        (0..self.rows).map(move |r| &data[r * cols..(r + 1) * cols])
    }

    /// A zero-copy sub-view of rows `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds the number of rows.
    #[must_use]
    pub fn rows_range(&self, range: std::ops::Range<usize>) -> MatView<'a> {
        assert!(range.end <= self.rows, "rows_range end {} > rows {}", range.end, self.rows);
        MatView {
            rows: range.len(),
            cols: self.cols,
            data: &self.data[range.start * self.cols..range.end * self.cols],
        }
    }

    /// Copies the view into an owned [`Matrix`].
    #[must_use]
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec())
            .expect("view shape is consistent by construction")
    }

    /// `out = self · other`, the allocation-free twin of
    /// [`Matrix::matmul`] (same blocked row-parallel kernel, bit-identical
    /// results). `out` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_into(&self, other: MatView<'_>, out: MatViewMut<'_>) {
        assert!(
            self.cols == other.rows,
            "matmul_into shape mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        assert!(
            out.shape() == (self.rows, other.cols),
            "matmul_into: out is {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            other.cols
        );
        out.data.fill(0.0);
        matmul_kernel(self.data, self.cols, other.data, other.cols, out.data);
    }

    /// `out = selfᵀ · other` without materializing the transpose — the
    /// allocation-free twin of [`Matrix::t_matmul`]. `out` is fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()` or `out` is not
    /// `self.cols() × other.cols()`.
    pub fn t_matmul_into(&self, other: MatView<'_>, out: MatViewMut<'_>) {
        assert!(
            self.rows == other.rows,
            "t_matmul_into shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        assert!(
            out.shape() == (self.cols, other.cols),
            "t_matmul_into: out is {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.cols,
            other.cols
        );
        out.data.fill(0.0);
        t_matmul_kernel(self.data, self.cols, self.rows, other.data, other.cols, out.data);
    }

    /// `out = self · otherᵀ` without materializing the transpose — the
    /// allocation-free twin of [`Matrix::matmul_t`]. `out` is fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or `out` is not
    /// `self.rows() × other.rows()`.
    pub fn matmul_t_into(&self, other: MatView<'_>, out: MatViewMut<'_>) {
        assert!(
            self.cols == other.cols,
            "matmul_t_into shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        assert!(
            out.shape() == (self.rows, other.rows),
            "matmul_t_into: out is {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            other.rows
        );
        matmul_t_kernel(self.data, self.cols, other.data, other.rows, out.data);
    }

    /// `out = self · v`, the allocation-free twin of [`Matrix::matvec`]
    /// (same per-row dot products, bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec_into: vector length {} != cols {}",
            v.len(),
            self.cols
        );
        assert_eq!(
            out.len(),
            self.rows,
            "matvec_into: out length {} != rows {}",
            out.len(),
            self.rows
        );
        for (o, row) in out.iter_mut().zip(self.iter_rows()) {
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// `out = selfᵀ · v` without materializing the transpose. Each output
    /// element accumulates in ascending row order, so the result is
    /// bit-identical to `self.transpose().matvec(v)` — minus the
    /// transpose allocation the solvers used to pay per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn t_matvec_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(
            v.len(),
            self.rows,
            "t_matvec_into: vector length {} != rows {}",
            v.len(),
            self.rows
        );
        assert_eq!(
            out.len(),
            self.cols,
            "t_matvec_into: out length {} != cols {}",
            out.len(),
            self.cols
        );
        out.fill(0.0);
        for (row, &vk) in self.iter_rows().zip(v) {
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vk;
            }
        }
    }

    /// Applies `f` element-wise into `out` — the allocation-free twin of
    /// [`Matrix::map`].
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: MatViewMut<'_>) {
        assert!(
            out.shape() == self.shape(),
            "map_into: out is {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            self.cols
        );
        for (o, &v) in out.data.iter_mut().zip(self.data) {
            *o = f(v);
        }
    }
}

impl<'a> From<&'a Matrix> for MatView<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.as_view()
    }
}

// ----------------------------------------------------------------------
// MatViewMut
// ----------------------------------------------------------------------

/// A mutable, borrowed, row-major `f32` matrix: shape plus `&mut [f32]`.
///
/// The write side of the zero-copy batch API: `_into` kernels land their
/// output here, so callers own (and reuse) every buffer.
#[derive(Debug, PartialEq)]
pub struct MatViewMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f32],
}

impl<'a> MatViewMut<'a> {
    /// Wraps a mutable row-major buffer as a `rows`×`cols` view.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if
    /// `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a mut [f32]) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Views a mutable slice as a single-row matrix (`1 × len`).
    #[must_use]
    pub fn from_row(row: &'a mut [f32]) -> Self {
        Self { rows: 1, cols: row.len(), data: row }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying mutable row-major buffer.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A read-only view of the same buffer.
    #[must_use]
    pub fn as_view(&self) -> MatView<'_> {
        MatView { rows: self.rows, cols: self.cols, data: self.data }
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_fn(5, 3, |r, c| ((r * 7 + c) as f32 * 0.31).sin())
    }

    fn b() -> Matrix {
        Matrix::from_fn(3, 4, |r, c| ((r * 5 + c) as f32 * 0.17).cos())
    }

    #[test]
    fn view_construction_and_accessors() {
        let m = a();
        let v = m.as_view();
        assert_eq!(v.shape(), m.shape());
        assert_eq!(v.row(2), m.row(2));
        assert_eq!(v.len(), 15);
        assert!(!v.is_empty());
        assert_eq!(v.iter_rows().count(), 5);
        assert_eq!(v.to_matrix(), m);
        assert!(MatView::new(2, 2, &[0.0; 3]).is_err());
        let row = MatView::from_row(m.row(1));
        assert_eq!(row.shape(), (1, 3));
    }

    #[test]
    fn rows_range_is_zero_copy_and_matches_slice_rows() {
        let m = a();
        let v = m.as_view().rows_range(1..4);
        assert_eq!(v.to_matrix(), m.slice_rows(1..4));
        assert_eq!(m.view_rows(1..4), v);
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        let (a, b) = (a(), b());
        let mut out = Matrix::zeros(0, 0);
        out.reset(5, 4);
        // Pre-fill with garbage: the kernel must fully overwrite.
        out.as_mut_slice().fill(7.5);
        a.as_view().matmul_into(b.as_view(), out.as_view_mut());
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn t_matmul_into_bit_identical() {
        let a = a();
        let b = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32 * 0.4 - 1.0);
        let mut out = Matrix::zeros(3, 2);
        out.as_mut_slice().fill(-3.0);
        a.as_view().t_matmul_into(b.as_view(), out.as_view_mut());
        assert_eq!(out, a.t_matmul(&b));
    }

    #[test]
    fn matmul_t_into_bit_identical() {
        let a = a();
        let b = Matrix::from_fn(6, 3, |r, c| ((r + c) as f32).sqrt());
        let mut out = Matrix::zeros(5, 6);
        a.as_view().matmul_t_into(b.as_view(), out.as_view_mut());
        assert_eq!(out, a.matmul_t(&b));
    }

    #[test]
    fn matvec_variants_bit_identical() {
        let a = a();
        let v3 = [0.3f32, -1.0, 2.5];
        let v5 = [1.0f32, 0.0, -0.5, 2.0, 0.25];
        let mut out = vec![0.0f32; 5];
        a.as_view().matvec_into(&v3, &mut out);
        assert_eq!(out, a.matvec(&v3));
        let mut out_t = vec![9.0f32; 3];
        a.as_view().t_matvec_into(&v5, &mut out_t);
        assert_eq!(out_t, a.transpose().matvec(&v5));
    }

    #[test]
    fn map_into_applies_elementwise() {
        let m = a();
        let mut out = Matrix::zeros(5, 3);
        m.as_view().map_into(|v| v * 2.0 + 1.0, out.as_view_mut());
        assert_eq!(out, m.map(|v| v * 2.0 + 1.0));
    }

    #[test]
    fn mut_view_rows_and_fill() {
        let mut m = Matrix::zeros(2, 3);
        let mut v = m.as_view_mut();
        v.fill(1.0);
        v.row_mut(1)[2] = 5.0;
        assert_eq!(v.as_view().row(1), &[1.0, 1.0, 5.0]);
        assert_eq!(m[(1, 2)], 5.0);
        let mut buf = vec![0.0f32; 4];
        assert!(MatViewMut::new(2, 2, &mut buf).is_ok());
        let mut short = vec![0.0f32; 3];
        assert!(MatViewMut::new(2, 2, &mut short).is_err());
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(0, 2);
        a.as_view().matmul_into(b.as_view(), out.as_view_mut());
        assert_eq!(out.shape(), (0, 2));
        let kless = Matrix::zeros(2, 0);
        let bless = Matrix::zeros(0, 4);
        let mut out2 = Matrix::filled(2, 4, 3.0);
        kless.as_view().matmul_into(bless.as_view(), out2.as_view_mut());
        assert_eq!(out2, Matrix::zeros(2, 4), "k = 0 product must still zero the buffer");
    }
}
