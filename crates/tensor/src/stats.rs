//! Descriptive statistics and image-quality metrics.
//!
//! The figure harnesses report reconstruction quality via [`psnr`] and a
//! luminance-only structural-similarity proxy [`ssim_global`]; the training
//! loops use [`running::Welford`] for numerically stable loss averaging.

use crate::matrix::Matrix;

/// Mean of a slice (0 for empty input).
#[must_use]
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance of a slice (0 for empty input).
#[must_use]
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|v| (v - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Population covariance of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn covariance(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f32>() / xs.len() as f32
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>() / a.len() as f32
}

/// Peak signal-to-noise ratio in dB for signals on the given peak scale.
///
/// Returns `f32::INFINITY` for identical inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths or `peak <= 0`.
#[must_use]
pub fn psnr(original: &[f32], reconstructed: &[f32], peak: f32) -> f32 {
    assert!(peak > 0.0, "psnr: peak must be positive");
    let e = mse(original, reconstructed);
    if e == 0.0 {
        f32::INFINITY
    } else {
        10.0 * (peak * peak / e).log10()
    }
}

/// Global (single-window) SSIM between two images on the given peak scale.
///
/// This is the standard SSIM formula evaluated over the whole image rather
/// than a sliding window — a cheap proxy adequate for ranking reconstruction
/// quality in the figure harnesses.
///
/// # Panics
///
/// Panics if the slices have different lengths or `peak <= 0`.
#[must_use]
pub fn ssim_global(a: &[f32], b: &[f32], peak: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "ssim_global: length mismatch");
    assert!(peak > 0.0, "ssim_global: peak must be positive");
    let c1 = (0.01 * peak).powi(2);
    let c2 = (0.03 * peak).powi(2);
    let ma = mean(a);
    let mb = mean(b);
    let va = variance(a);
    let vb = variance(b);
    let cov = covariance(a, b);
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

/// Per-row PSNR of two matrices holding one sample per row.
///
/// # Panics
///
/// Panics if shapes differ.
#[must_use]
pub fn psnr_rows(original: &Matrix, reconstructed: &Matrix, peak: f32) -> Vec<f32> {
    assert_eq!(original.shape(), reconstructed.shape(), "psnr_rows: shape mismatch");
    original.iter_rows().zip(reconstructed.iter_rows()).map(|(a, b)| psnr(a, b, peak)).collect()
}

/// Histogram of values into `bins` equal-width buckets over `[lo, hi)`.
///
/// Values outside the range are clamped into the first/last bucket.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
#[must_use]
pub fn histogram(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram: bins must be positive");
    assert!(lo < hi, "histogram: empty range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let idx = (((x - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Numerically stable running statistics.
pub mod running {
    /// Welford online mean/variance accumulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use orco_tensor::stats::running::Welford;
    ///
    /// let mut w = Welford::new();
    /// for v in [1.0, 2.0, 3.0] {
    ///     w.push(v);
    /// }
    /// assert_eq!(w.mean(), 2.0);
    /// assert_eq!(w.count(), 3);
    /// ```
    #[derive(Debug, Clone, Default)]
    pub struct Welford {
        count: u64,
        mean: f64,
        m2: f64,
    }

    impl Welford {
        /// Creates an empty accumulator.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds one observation.
        pub fn push(&mut self, x: f32) {
            self.count += 1;
            let delta = f64::from(x) - self.mean;
            self.mean += delta / self.count as f64;
            let delta2 = f64::from(x) - self.mean;
            self.m2 += delta * delta2;
        }

        /// Number of observations so far.
        #[must_use]
        pub fn count(&self) -> u64 {
            self.count
        }

        /// Running mean (0 when empty).
        #[must_use]
        pub fn mean(&self) -> f32 {
            self.mean as f32
        }

        /// Running population variance (0 with fewer than 2 observations).
        #[must_use]
        pub fn variance(&self) -> f32 {
            if self.count < 2 {
                0.0
            } else {
                (self.m2 / self.count as f64) as f32
            }
        }

        /// Running standard deviation.
        #[must_use]
        pub fn std_dev(&self) -> f32 {
            self.variance().sqrt()
        }

        /// Merges another accumulator into this one (parallel Welford).
        pub fn merge(&mut self, other: &Welford) {
            if other.count == 0 {
                return;
            }
            if self.count == 0 {
                *self = other.clone();
                return;
            }
            let total = self.count + other.count;
            let delta = other.mean - self.mean;
            self.m2 += other.m2
                + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
            self.mean += delta * other.count as f64 / total as f64;
            self.count = total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn covariance_of_identical_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((covariance(&xs, &xs) - variance(&xs)).abs() < 1e-6);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let xs = [0.1, 0.5, 0.9];
        assert!(psnr(&xs, &xs, 1.0).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01, peak 1 → PSNR = 20 dB.
        let a = [0.0, 0.0];
        let b = [0.1, 0.1];
        assert!((psnr(&a, &b, 1.0) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let orig = vec![0.5; 100];
        let slightly: Vec<f32> = orig.iter().map(|v| v + 0.01).collect();
        let very: Vec<f32> = orig.iter().map(|v| v + 0.2).collect();
        assert!(psnr(&orig, &slightly, 1.0) > psnr(&orig, &very, 1.0));
    }

    #[test]
    fn ssim_bounds() {
        let a: Vec<f32> = (0..64).map(|v| (v as f32) / 64.0).collect();
        assert!((ssim_global(&a, &a, 1.0) - 1.0).abs() < 1e-6);
        let b: Vec<f32> = a.iter().map(|v| 1.0 - v).collect();
        let s = ssim_global(&a, &b, 1.0);
        assert!(s < 0.5, "anticorrelated images should score low, got {s}");
    }

    #[test]
    fn histogram_counts() {
        let xs = [0.05, 0.15, 0.15, 0.95, -1.0, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 10);
        assert_eq!(h[0], 2); // 0.05 and clamped -1.0
        assert_eq!(h[1], 2);
        assert_eq!(h[9], 2); // 0.95 and clamped 2.0
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn welford_matches_batch() {
        let xs: Vec<f32> = (0..100).map(|v| (v as f32).sin() * 3.0 + 1.0).collect();
        let mut w = running::Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-5);
        assert!((w.variance() - variance(&xs)).abs() < 1e-4);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f32> = (0..50).map(|v| v as f32 * 0.1).collect();
        let ys: Vec<f32> = (0..30).map(|v| v as f32 * -0.2 + 3.0).collect();
        let mut all = running::Welford::new();
        for &v in xs.iter().chain(&ys) {
            all.push(v);
        }
        let mut a = running::Welford::new();
        let mut b = running::Welford::new();
        for &v in &xs {
            a.push(v);
        }
        for &v in &ys {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-5);
        assert!((a.variance() - all.variance()).abs() < 1e-4);
    }

    #[test]
    fn psnr_rows_shape() {
        let a = Matrix::ones(3, 4);
        let b = a.map(|v| v * 0.9);
        let p = psnr_rows(&a, &b, 1.0);
        assert_eq!(p.len(), 3);
        assert!((p[0] - p[2]).abs() < 1e-6);
    }
}
