//! Plain-text (de)serialization of matrices.
//!
//! The workspace deliberately avoids pulling in a serde format crate; model
//! checkpoints and experiment artifacts are written in a tiny line-oriented
//! format that is diff-able and easy to inspect:
//!
//! ```text
//! MAT <rows> <cols>
//! <row 0, space-separated f32>
//! ...
//! ```
//!
//! Round-tripping preserves every value exactly (hex-float encoding is used
//! for full bit-precision).

use crate::error::TensorError;
use crate::matrix::Matrix;

/// Encodes a matrix into the `MAT` text format.
///
/// Values are written as Rust debug floats, which round-trip `f32` exactly.
#[must_use]
pub fn matrix_to_text(m: &Matrix) -> String {
    let mut out = String::with_capacity(16 + m.len() * 12);
    out.push_str(&format!("MAT {} {}\n", m.rows(), m.cols()));
    for row in m.iter_rows() {
        let mut first = true;
        for v in row {
            if !first {
                out.push(' ');
            }
            first = false;
            // `{:?}` on f32 prints the shortest string that round-trips.
            out.push_str(&format!("{v:?}"));
        }
        out.push('\n');
    }
    out
}

/// Decodes a matrix from the `MAT` text format.
///
/// # Errors
///
/// Returns [`TensorError::Parse`] on malformed headers, non-numeric values,
/// or row/column counts that do not match the header.
pub fn matrix_from_text(text: &str) -> Result<Matrix, TensorError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| parse_err("empty input"))?;
    let mut parts = header.split_whitespace();
    match parts.next() {
        Some("MAT") => {}
        other => return Err(parse_err(&format!("expected MAT header, got {other:?}"))),
    }
    let rows: usize = parts
        .next()
        .ok_or_else(|| parse_err("missing row count"))?
        .parse()
        .map_err(|e| parse_err(&format!("bad row count: {e}")))?;
    let cols: usize = parts
        .next()
        .ok_or_else(|| parse_err("missing col count"))?
        .parse()
        .map_err(|e| parse_err(&format!("bad col count: {e}")))?;

    let mut data = Vec::with_capacity(rows * cols);
    for (i, line) in lines.enumerate() {
        if i >= rows {
            return Err(parse_err(&format!("more than {rows} data rows")));
        }
        let mut count = 0usize;
        for tok in line.split_whitespace() {
            let v: f32 =
                tok.parse().map_err(|e| parse_err(&format!("row {i}: bad value `{tok}`: {e}")))?;
            data.push(v);
            count += 1;
        }
        if count != cols {
            return Err(parse_err(&format!("row {i} has {count} values, expected {cols}")));
        }
    }
    if data.len() != rows * cols {
        return Err(parse_err(&format!("expected {} values, got {}", rows * cols, data.len())));
    }
    Matrix::from_vec(rows, cols, data)
}

/// Writes a matrix to a file in the `MAT` text format.
///
/// # Errors
///
/// Returns any I/O error from the filesystem.
pub fn write_matrix(path: &std::path::Path, m: &Matrix) -> std::io::Result<()> {
    std::fs::write(path, matrix_to_text(m))
}

/// Reads a matrix from a file in the `MAT` text format.
///
/// # Errors
///
/// Returns an I/O error wrapped as [`TensorError::Parse`] if the file cannot
/// be read, or a parse error if the contents are malformed.
pub fn read_matrix(path: &std::path::Path) -> Result<Matrix, TensorError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| parse_err(&format!("cannot read {}: {e}", path.display())))?;
    matrix_from_text(&text)
}

fn parse_err(detail: &str) -> TensorError {
    TensorError::Parse { detail: detail.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let m = Matrix::from_fn(7, 5, |r, c| ((r * 31 + c) as f32).sin() * 1e-3 + 1.0 / 3.0);
        let text = matrix_to_text(&m);
        let back = matrix_from_text(&text).unwrap();
        assert_eq!(m, back, "text round-trip must be bit-exact");
    }

    #[test]
    fn roundtrip_special_values() {
        let m = Matrix::from_vec(1, 4, vec![0.0, -0.0, f32::MIN_POSITIVE, 3.402_823_5e38]).unwrap();
        let back = matrix_from_text(&matrix_to_text(&m)).unwrap();
        assert_eq!(m.as_slice(), back.as_slice());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matrix_from_text("").is_err());
        assert!(matrix_from_text("XAT 1 1\n0.0").is_err());
        assert!(matrix_from_text("MAT x 1\n0.0").is_err());
    }

    #[test]
    fn rejects_wrong_counts() {
        assert!(matrix_from_text("MAT 1 2\n0.0").is_err());
        assert!(matrix_from_text("MAT 1 1\n0.0 1.0").is_err());
        assert!(matrix_from_text("MAT 1 1\n0.0\n1.0").is_err());
        assert!(matrix_from_text("MAT 2 1\n0.0").is_err());
    }

    #[test]
    fn rejects_non_numeric() {
        assert!(matrix_from_text("MAT 1 1\nhello").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("orco-tensor-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mat");
        let m = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * 0.5);
        write_matrix(&path, &m).unwrap();
        let back = read_matrix(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_parse_error() {
        let err = read_matrix(std::path::Path::new("/nonexistent/nope.mat")).unwrap_err();
        assert!(matches!(err, TensorError::Parse { .. }));
    }
}
