//! Lowering of 2-D convolutions to matrix products.
//!
//! [`im2col`] unrolls every receptive field of an input image into one
//! column of a patch matrix, so a convolution becomes a single GEMM with the
//! kernel matrix; [`col2im`] is its adjoint, scattering column gradients
//! back onto the image. Both directions share a [`Conv2dGeom`] describing
//! kernel size, stride, and zero padding.
//!
//! The pair satisfies the adjoint identity
//! `⟨im2col(x), p⟩ = ⟨x, col2im(p)⟩`, which the property tests in this
//! module exercise — that identity is exactly what makes the convolution
//! backward pass correct.

use crate::matrix::Matrix;

/// Geometry of a 2-D convolution: input extent, kernel, stride and padding.
///
/// # Examples
///
/// ```
/// use orco_tensor::Conv2dGeom;
///
/// let g = Conv2dGeom::new(1, 28, 28, 3, 1, 1);
/// assert_eq!(g.out_h(), 28);
/// assert_eq!(g.out_w(), 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial directions.
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero, or if the padded input is
    /// smaller than the kernel.
    #[must_use]
    pub fn new(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be non-zero");
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
            "padded input {}x{} smaller than kernel {}",
            in_h + 2 * pad,
            in_w + 2 * pad,
            kernel
        );
        Self { in_c, in_h, in_w, kernel, stride, pad }
    }

    /// Output height after convolving.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width after convolving.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of spatial output positions (`out_h * out_w`).
    #[must_use]
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Length of one unrolled patch (`in_c * kernel * kernel`).
    #[must_use]
    pub fn patch_len(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Elements in one input sample (`in_c * in_h * in_w`).
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }
}

/// Unrolls one flattened `(C, H, W)` sample into a patch matrix.
///
/// The result has [`Conv2dGeom::patch_len`] rows and
/// [`Conv2dGeom::out_positions`] columns: column `p` holds the receptive
/// field feeding output position `p` (row-major over output space), with
/// zeros where the field overlaps the padding.
///
/// # Panics
///
/// Panics if `input.len() != geom.input_len()`.
#[must_use]
pub fn im2col(input: &[f32], geom: &Conv2dGeom) -> Matrix {
    assert_eq!(input.len(), geom.input_len(), "im2col: input length mismatch");
    let (oh, ow, k) = (geom.out_h(), geom.out_w(), geom.kernel);
    let mut out = Matrix::zeros(geom.patch_len(), oh * ow);
    for c in 0..geom.in_c {
        for kh in 0..k {
            for kw in 0..k {
                let patch_row = (c * k + kh) * k + kw;
                for oy in 0..oh {
                    // signed input row: oy*stride + kh - pad
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        let ix = ix as usize;
                        let v = input[(c * geom.in_h + iy) * geom.in_w + ix];
                        out.set(patch_row, oy * ow + ox, v);
                    }
                }
            }
        }
    }
    out
}

/// Scatters a patch matrix back onto a flattened `(C, H, W)` image,
/// accumulating overlapping contributions — the adjoint of [`im2col`].
///
/// # Panics
///
/// Panics if `patches.shape() != (geom.patch_len(), geom.out_positions())`.
#[must_use]
pub fn col2im(patches: &Matrix, geom: &Conv2dGeom) -> Vec<f32> {
    assert_eq!(
        patches.shape(),
        (geom.patch_len(), geom.out_positions()),
        "col2im: patch matrix shape mismatch"
    );
    let (oh, ow, k) = (geom.out_h(), geom.out_w(), geom.kernel);
    let mut img = vec![0.0f32; geom.input_len()];
    for c in 0..geom.in_c {
        for kh in 0..k {
            for kw in 0..k {
                let patch_row = (c * k + kh) * k + kw;
                let row = patches.row(patch_row);
                for oy in 0..oh {
                    let iy = (oy * geom.stride + kh) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kw) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        let ix = ix as usize;
                        img[(c * geom.in_h + iy) * geom.in_w + ix] += row[oy * ow + ox];
                    }
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let g = Conv2dGeom::new(3, 32, 32, 5, 1, 2);
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        assert_eq!(g.patch_len(), 75);
        let s = Conv2dGeom::new(1, 28, 28, 3, 2, 0);
        assert_eq!(s.out_h(), 13);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn zero_kernel_rejected() {
        let _ = Conv2dGeom::new(1, 4, 4, 0, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // 1x1 kernel, stride 1, no pad: patch matrix == input as a row.
        let g = Conv2dGeom::new(1, 2, 3, 1, 1, 0);
        let input: Vec<f32> = (1..=6).map(|v| v as f32).collect();
        let p = im2col(&input, &g);
        assert_eq!(p.shape(), (1, 6));
        assert_eq!(p.row(0), &input[..]);
    }

    #[test]
    fn im2col_known_3x3() {
        // 3x3 input, 2x2 kernel, stride 1, no pad → 4 patches.
        let g = Conv2dGeom::new(1, 3, 3, 2, 1, 0);
        let input: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let p = im2col(&input, &g);
        assert_eq!(p.shape(), (4, 4));
        // First output position's receptive field = [1,2,4,5] down the column.
        assert_eq!(p.col(0), vec![1.0, 2.0, 4.0, 5.0]);
        // Last output position = [5,6,8,9].
        assert_eq!(p.col(3), vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_inserts_zeros() {
        let g = Conv2dGeom::new(1, 2, 2, 3, 1, 1);
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let p = im2col(&input, &g);
        assert_eq!(p.shape(), (9, 4));
        // The top-left patch's first row is entirely padding.
        assert_eq!(p.col(0)[0], 0.0);
        // Centre of the top-left 3x3 patch is input (0,0) = 1.0.
        assert_eq!(p.col(0)[4], 1.0);
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        // Convolve a 1x4x4 image with one 3x3 kernel (stride 1, pad 1) two ways.
        let g = Conv2dGeom::new(1, 4, 4, 3, 1, 1);
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let kernel: Vec<f32> = vec![0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0]; // laplacian
        let patches = im2col(&input, &g);
        let k = Matrix::row_vector(&kernel);
        let out = k.matmul(&patches);
        assert_eq!(out.shape(), (1, 16));

        // direct convolution
        let mut direct = [0.0f32; 16];
        for oy in 0..4i32 {
            for ox in 0..4i32 {
                let mut acc = 0.0;
                for kh in 0..3i32 {
                    for kw in 0..3i32 {
                        let iy = oy + kh - 1;
                        let ix = ox + kw - 1;
                        if (0..4).contains(&iy) && (0..4).contains(&ix) {
                            acc += kernel[(kh * 3 + kw) as usize] * input[(iy * 4 + ix) as usize];
                        }
                    }
                }
                direct[(oy * 4 + ox) as usize] = acc;
            }
        }
        assert_eq!(out.as_slice(), &direct[..]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), p⟩ == ⟨x, col2im(p)⟩ for arbitrary x, p.
        let g = Conv2dGeom::new(2, 5, 4, 3, 2, 1);
        let x: Vec<f32> = (0..g.input_len()).map(|v| (v as f32).sin()).collect();
        let p = Matrix::from_fn(g.patch_len(), g.out_positions(), |r, c| {
            ((r * 31 + c * 17) as f32).cos()
        });
        let ix = im2col(&x, &g);
        let lhs = ix.dot(&p);
        let scattered = col2im(&p, &g);
        let rhs: f32 = x.iter().zip(&scattered).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint identity violated: {lhs} vs {rhs}");
    }
}
