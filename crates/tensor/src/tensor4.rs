use crate::error::TensorError;
use crate::matrix::Matrix;

/// A dense 4-dimensional tensor in `(N, C, H, W)` layout.
///
/// Batches of images live in `Tensor4`: `N` samples, `C` channels, `H`×`W`
/// spatial extent. The memory layout is row-major with `W` fastest, matching
/// the flattening used when a batch is viewed as a [`Matrix`] with one sample
/// per row (`C*H*W` columns) — so a dense layer and a convolutional layer can
/// exchange data without copying semantics surprises.
///
/// # Examples
///
/// ```
/// use orco_tensor::Tensor4;
///
/// let t = Tensor4::zeros(2, 3, 4, 4);
/// assert_eq!(t.shape(), (2, 3, 4, 4));
/// assert_eq!(t.sample_len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates an all-zero tensor of the given shape.
    #[must_use]
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w, data: vec![0.0; n * c * h * w] }
    }

    /// Creates a tensor from a flat `(N, C, H, W)`-ordered buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the buffer length does not
    /// equal `n * c * h * w`.
    pub fn from_vec(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        data: Vec<f32>,
    ) -> Result<Self, TensorError> {
        if data.len() != n * c * h * w {
            return Err(TensorError::LengthMismatch {
                expected: n * c * h * w,
                actual: data.len(),
            });
        }
        Ok(Self { n, c, h, w, data })
    }

    /// Reinterprets a matrix with one flattened sample per row as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `m.cols() != c * h * w`.
    pub fn from_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> Result<Self, TensorError> {
        if m.cols() != c * h * w {
            return Err(TensorError::LengthMismatch { expected: c * h * w, actual: m.cols() });
        }
        Ok(Self { n: m.rows(), c, h, w, data: m.as_slice().to_vec() })
    }

    /// Flattens to a matrix with one sample per row (`C*H*W` columns).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
            .expect("tensor buffer length is consistent by construction")
    }

    /// `(N, C, H, W)` shape tuple.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Number of samples `N`.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Number of channels `C`.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height `H`.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Elements per sample (`C*H*W`).
    #[must_use]
    pub fn sample_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat view of the underlying buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The flattened sample at batch index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "sample {i} out of bounds for batch {}", self.n);
        let s = self.sample_len();
        &self.data[i * s..(i + 1) * s]
    }

    /// Mutable flattened sample at batch index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    #[must_use]
    pub fn sample_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.n, "sample {i} out of bounds for batch {}", self.n);
        let s = self.sample_len();
        &mut self.data[i * s..(i + 1) * s]
    }

    /// Element accessor by `(n, c, h, w)` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {:?}",
            self.shape()
        );
        self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }

    /// Sets the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {:?}",
            self.shape()
        );
        self.data[((n * self.c + c) * self.h + h) * self.w + w] = v;
    }

    /// Applies `f` to every element, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor4 {
        Tensor4 {
            n: self.n,
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_matrix() {
        let t = Tensor4::from_vec(2, 1, 2, 2, (0..8).map(|v| v as f32).collect()).unwrap();
        let m = t.to_matrix();
        assert_eq!(m.shape(), (2, 4));
        let back = Tensor4::from_matrix(&m, 1, 2, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn coordinate_layout() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 9.0);
        assert_eq!(t.at(1, 2, 3, 4), 9.0);
        // last element of the buffer
        assert_eq!(t.as_slice()[t.len() - 1], 9.0);
    }

    #[test]
    fn sample_views() {
        let mut t = Tensor4::zeros(3, 1, 2, 2);
        t.sample_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sample(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sample(0), &[0.0; 4]);
        assert_eq!(t.at(1, 0, 1, 0), 3.0);
    }

    #[test]
    fn from_vec_length_check() {
        assert!(Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]).is_err());
        assert!(Tensor4::from_matrix(&Matrix::zeros(2, 5), 1, 2, 2).is_err());
    }

    #[test]
    fn map_applies_everywhere() {
        let t = Tensor4::from_vec(1, 1, 1, 3, vec![1.0, -2.0, 3.0]).unwrap();
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 2.0, 3.0]);
    }
}
