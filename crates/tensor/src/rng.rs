//! Deterministic random-number generation for reproducible experiments.
//!
//! Every stochastic component of the reproduction — weight initialization,
//! Gaussian latent noise, dataset synthesis, node placement — draws from an
//! [`OrcoRng`], a ChaCha8-based generator seeded either directly or by
//! hashing a `(label, index)` pair with [`OrcoRng::from_label`]. Labelled
//! seeding gives independent, stable streams per subsystem: re-running any
//! experiment binary reproduces its figures bit-for-bit, and adding a new
//! consumer of randomness does not perturb existing streams.
//!
//! The ChaCha8 core is implemented in this module (the build environment has
//! no crates.io access, so `rand_chacha` is not available); its output is a
//! pure function of the seed and is stable across platforms and releases.

/// A deterministic random number generator with labelled sub-streams.
///
/// Wraps a self-contained ChaCha8 stream cipher used as a generator. ChaCha8
/// output is fully specified by the seed, unlike `rand::rngs::StdRng`, which
/// is explicitly allowed to change algorithm between releases.
///
/// # Examples
///
/// ```
/// use orco_tensor::OrcoRng;
///
/// let mut a = OrcoRng::from_label("encoder-init", 0);
/// let mut b = OrcoRng::from_label("encoder-init", 0);
/// assert_eq!(a.next_f32(), b.next_f32());
///
/// let mut c = OrcoRng::from_label("encoder-init", 1);
/// assert_ne!(a.next_f32(), c.next_f32());
/// ```
#[derive(Debug, Clone)]
pub struct OrcoRng {
    inner: ChaCha8,
}

impl OrcoRng {
    /// Creates a generator from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed_u64(seed: u64) -> Self {
        Self { inner: ChaCha8::from_seed_u64(seed) }
    }

    /// Creates a generator from a textual label and an index.
    ///
    /// The label is hashed with FNV-1a; distinct `(label, index)` pairs give
    /// independent streams.
    #[must_use]
    pub fn from_label(label: &str, index: u64) -> Self {
        Self::from_seed_u64(fnv1a64(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives a child generator for a sub-component.
    ///
    /// The child stream is independent of both the parent's future output
    /// and other children derived with different labels.
    #[must_use]
    pub fn derive(&mut self, label: &str) -> Self {
        let salt = self.next_u64();
        Self::from_seed_u64(fnv1a64(label.as_bytes()) ^ salt)
    }

    /// Next raw 32-bit value.
    #[must_use]
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Next raw 64-bit value.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.inner.next_u32());
        let hi = u64::from(self.inner.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.inner.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform `f32` in `[0, 1)`.
    #[must_use]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits → all representable multiples of 2⁻²⁴ in [0, 1).
        (self.inner.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → all representable multiples of 2⁻⁵³ in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: bound must be positive");
        self.range_u64(bound as u64) as usize
    }

    /// Standard normal sample via Box–Muller.
    #[must_use]
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: avoids pulling in rand_distr.
        let u1 = self.next_f32().max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[must_use]
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[must_use]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Bernoulli trial with an `f64` probability of `true`.
    ///
    /// Preferred for simulation parameters that are natively `f64` (link
    /// loss probabilities): comparing against a 53-bit uniform draw avoids
    /// the precision truncation of casting `p` down to `f32` first.
    #[must_use]
    pub fn bernoulli_f64(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `out` with i.i.d. normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std_dev: f32) {
        for v in out {
            *v = self.normal(mean, std_dev);
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: shuffle the first k positions.
        for i in 0..k {
            let j = i + self.range_u64((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Unbiased uniform draw from `[0, bound)` via rejection sampling.
    fn range_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply trick (Lemire): reject the biased zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let mul = u128::from(r) * u128::from(bound);
            if (mul as u64) >= threshold {
                return (mul >> 64) as u64;
            }
        }
    }
}

/// FNV-1a 64-bit hash — the workspace's one stable, dependency-free hash.
/// Used for RNG label hashing here and for cluster→shard pinning in the
/// serving layer; public so the constants live in exactly one place.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Self-contained ChaCha8 keystream generator.
///
/// The 64-bit seed is expanded to a 256-bit key with SplitMix64; the block
/// counter starts at zero. Each 64-byte block yields 16 output words.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    next_word: usize,
}

impl ChaCha8 {
    fn from_seed_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let v = splitmix64(&mut state);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        Self { key, counter: 0, block: [0; 16], next_word: 16 }
    }

    fn next_u32(&mut self) -> u32 {
        if self.next_word == 16 {
            self.refill();
        }
        let w = self.block[self.next_word];
        self.next_word += 1;
        w
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut x = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = x;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.block.iter_mut().zip(x.iter().zip(&input)) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.next_word = 0;
    }
}

fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelled_streams_are_deterministic() {
        let mut a = OrcoRng::from_label("x", 7);
        let mut b = OrcoRng::from_label("x", 7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = OrcoRng::from_label("alpha", 0);
        let mut b = OrcoRng::from_label("beta", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_quarter_round_reference() {
        // RFC 7539 §2.1.1 test vector.
        let mut x = [0u32; 16];
        x[0] = 0x1111_1111;
        x[1] = 0x0102_0304;
        x[2] = 0x9b8d_6f43;
        x[3] = 0x0123_4567;
        quarter_round(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a_92f4);
        assert_eq!(x[1], 0xcb1c_f8ce);
        assert_eq!(x[2], 0x4581_472e);
        assert_eq!(x[3], 0x5881_c4bb);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = OrcoRng::from_label("normal-test", 0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = OrcoRng::from_label("uniform-test", 0);
        for _ in 0..1000 {
            let v = rng.uniform(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn next_f32_is_in_unit_interval() {
        let mut rng = OrcoRng::from_label("unit-test", 0);
        for _ in 0..10_000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = OrcoRng::from_label("below-test", 0);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = OrcoRng::from_label("shuffle-test", 0);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = OrcoRng::from_label("sample-test", 0);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn derive_gives_independent_children() {
        let mut parent = OrcoRng::from_label("parent", 0);
        let mut c1 = parent.derive("child");
        let mut c2 = parent.derive("child");
        // Two derivations at different parent states differ.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = OrcoRng::from_label("bern", 0);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.1));
    }

    #[test]
    fn bernoulli_f64_extremes_and_rate() {
        let mut rng = OrcoRng::from_label("bern64", 0);
        assert!(!rng.bernoulli_f64(0.0));
        assert!(rng.bernoulli_f64(1.1));
        let hits = (0..10_000).filter(|_| rng.bernoulli_f64(0.3)).count();
        assert!((2800..3200).contains(&hits), "hit rate {hits}/10000");
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_uses_full_precision() {
        let mut rng = OrcoRng::from_label("unit64", 0);
        let mut saw_small_mantissa_detail = false;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            // An f32-derived value would survive the roundtrip exactly.
            if f64::from(v as f32) != v {
                saw_small_mantissa_detail = true;
            }
        }
        assert!(saw_small_mantissa_detail, "next_f64 should exceed f32 precision");
    }

    #[test]
    fn bernoulli_f64_stream_is_pinned() {
        // Regression pin: the exact draw sequence for a known seed. The
        // network simulator's loss draws ride on this stream; if it ever
        // shifts, seeded experiment byte counts shift with it.
        let mut rng = OrcoRng::from_seed_u64(7);
        let draws: Vec<bool> = (0..16).map(|_| rng.bernoulli_f64(0.4)).collect();
        let pinned = [
            false, false, false, true, false, true, false, false, true, false, true, true, false,
            false, false, false,
        ];
        assert_eq!(draws, pinned);
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = OrcoRng::from_seed_u64(42);
        let mut b = OrcoRng::from_seed_u64(42);
        let (mut ba, mut bb) = ([0u8; 33], [0u8; 33]);
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&v| v != 0));
    }
}
