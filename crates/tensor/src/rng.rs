//! Deterministic random-number generation for reproducible experiments.
//!
//! Every stochastic component of the reproduction — weight initialization,
//! Gaussian latent noise, dataset synthesis, node placement — draws from an
//! [`OrcoRng`], a ChaCha8-based generator seeded either directly or by
//! hashing a `(label, index)` pair with [`OrcoRng::from_label`]. Labelled
//! seeding gives independent, stable streams per subsystem: re-running any
//! experiment binary reproduces its figures bit-for-bit, and adding a new
//! consumer of randomness does not perturb existing streams.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random number generator with labelled sub-streams.
///
/// Wraps [`ChaCha8Rng`], whose output is specified and stable across
/// platforms and crate versions (unlike `rand::rngs::StdRng`, which is
/// explicitly allowed to change algorithm between releases).
///
/// # Examples
///
/// ```
/// use orco_tensor::OrcoRng;
///
/// let mut a = OrcoRng::from_label("encoder-init", 0);
/// let mut b = OrcoRng::from_label("encoder-init", 0);
/// assert_eq!(a.next_f32(), b.next_f32());
///
/// let mut c = OrcoRng::from_label("encoder-init", 1);
/// assert_ne!(a.next_f32(), c.next_f32());
/// ```
#[derive(Debug, Clone)]
pub struct OrcoRng {
    inner: ChaCha8Rng,
}

impl OrcoRng {
    /// Creates a generator from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed_u64(seed: u64) -> Self {
        Self { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Creates a generator from a textual label and an index.
    ///
    /// The label is hashed with FNV-1a; distinct `(label, index)` pairs give
    /// independent streams.
    #[must_use]
    pub fn from_label(label: &str, index: u64) -> Self {
        Self::from_seed_u64(fnv1a64(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Derives a child generator for a sub-component.
    ///
    /// The child stream is independent of both the parent's future output
    /// and other children derived with different labels.
    #[must_use]
    pub fn derive(&mut self, label: &str) -> Self {
        let salt = self.inner.next_u64();
        Self::from_seed_u64(fnv1a64(label.as_bytes()) ^ salt)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[must_use]
    pub fn next_f32(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Standard normal sample via Box–Muller.
    #[must_use]
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: avoids pulling in rand_distr.
        let u1 = self.next_f32().max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[must_use]
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[must_use]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Fills `out` with i.i.d. normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std_dev: f32) {
        for v in out {
            *v = self.normal(mean, std_dev);
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: shuffle the first k positions.
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for OrcoRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a 64-bit hash (stable, dependency-free label hashing).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelled_streams_are_deterministic() {
        let mut a = OrcoRng::from_label("x", 7);
        let mut b = OrcoRng::from_label("x", 7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = OrcoRng::from_label("alpha", 0);
        let mut b = OrcoRng::from_label("beta", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = OrcoRng::from_label("normal-test", 0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = OrcoRng::from_label("uniform-test", 0);
        for _ in 0..1000 {
            let v = rng.uniform(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = OrcoRng::from_label("shuffle-test", 0);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = OrcoRng::from_label("sample-test", 0);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn derive_gives_independent_children() {
        let mut parent = OrcoRng::from_label("parent", 0);
        let mut c1 = parent.derive("child");
        let mut c2 = parent.derive("child");
        // Two derivations at different parent states differ.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = OrcoRng::from_label("bern", 0);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.1));
    }
}
