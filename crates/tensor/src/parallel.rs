//! Deterministic data-parallel helpers built on scoped threads.
//!
//! The build environment has no crates.io access, so instead of rayon this
//! module provides the one primitive the workspace's hot paths need:
//! splitting a row-major output buffer into disjoint row blocks and filling
//! them from worker threads. Each output row is computed by exactly one
//! thread with a thread-count-independent instruction sequence, so results
//! are bit-identical whether the pool runs 1 thread or 64.
//!
//! The thread budget comes from, in priority order:
//!
//! 1. [`set_threads`] (runtime override, used by determinism tests),
//! 2. the `ORCO_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached environment/hardware thread budget.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread budget override; 0 means "not set". Takes precedence over
    /// everything else so an outer parallel region can hand each of its
    /// workers a slice of the budget instead of letting nested regions
    /// multiply thread counts.
    static TL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Overrides the worker-thread budget at runtime.
///
/// Passing `0` restores the default (environment variable or hardware
/// parallelism). Intended for benchmarks and determinism tests; regular
/// code should leave the budget alone.
pub fn set_threads(n: usize) {
    // SeqCst: a rare configuration write; pays for a total order so a
    // test setting the budget is visible to every worker it then spawns.
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Runs `f` with this thread's budget pinned to `n` (≥ 1), restoring the
/// previous value afterwards.
///
/// Used by outer parallel regions (e.g. the multi-cluster coordinator) to
/// give each worker thread a fair slice of the global budget, so nested
/// data-parallel kernels don't oversubscribe the machine with
/// `budget × budget` threads. Thread counts never affect results — every
/// kernel in this crate is bit-deterministic across budgets — so this is
/// purely a scheduling knob.
pub fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let previous = TL_THREADS.replace(n.max(1));
    let result = f();
    TL_THREADS.set(previous);
    result
}

/// The current worker-thread budget (always ≥ 1).
#[must_use]
pub fn threads() -> usize {
    let tl = TL_THREADS.get();
    if tl > 0 {
        return tl;
    }
    // SeqCst: matches set_threads; the budget read is far off any hot
    // loop, so the fence cost is irrelevant.
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ORCO_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Splits `out` into disjoint blocks of whole rows and runs `work` on each
/// block from a pool of scoped threads.
///
/// `work` receives the index of the block's first row and the block's
/// mutable row data. Blocks never overlap, so no synchronization is needed;
/// determinism is up to the caller's `work` being a pure function of the
/// row index (all current callers are).
///
/// Falls back to a single inline call when the budget is 1, the output is
/// empty, or there are fewer than `min_rows_per_thread` rows per worker.
pub fn for_each_row_block<F>(out: &mut [f32], row_len: usize, min_rows_per_thread: usize, work: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(row_len > 0 && out.len().is_multiple_of(row_len), "for_each_row_block: ragged buffer");
    let rows = out.len() / row_len;
    let budget = threads().min(rows / min_rows_per_thread.max(1)).max(1);
    if budget == 1 {
        work(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(budget);
    std::thread::scope(|scope| {
        for (i, block) in out.chunks_mut(chunk_rows * row_len).enumerate() {
            let work = &work;
            scope.spawn(move || work(i * chunk_rows, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_every_row_once() {
        let rows = 37;
        let cols = 5;
        let mut out = vec![0.0f32; rows * cols];
        for_each_row_block(&mut out, cols, 1, |first_row, block| {
            for (i, row) in block.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + i) as f32;
                }
            }
        });
        for (r, row) in out.chunks_exact(cols).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong: {row:?}");
        }
    }

    #[test]
    fn serial_fallback_for_tiny_outputs() {
        let mut out = vec![0.0f32; 3];
        for_each_row_block(&mut out, 3, 64, |first_row, block| {
            assert_eq!(first_row, 0);
            block.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 3]);
    }

    #[test]
    fn thread_budget_scopes_and_restores() {
        let outer = threads();
        let inner = with_thread_budget(2, || {
            assert_eq!(threads(), 2);
            with_thread_budget(5, threads)
        });
        assert_eq!(inner, 5);
        assert_eq!(threads(), outer);
    }

    #[test]
    fn threads_is_positive_and_overridable() {
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
