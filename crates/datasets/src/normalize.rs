//! Normalization transforms.

use orco_tensor::Matrix;

use crate::dataset::Dataset;

/// Per-feature statistics learned from a training set, applied to any split.
#[derive(Debug, Clone)]
pub struct Normalizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Normalizer {
    /// Learns per-feature mean/std from a design matrix.
    ///
    /// Features with zero variance get std 1 so they pass through unscaled.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    #[must_use]
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "Normalizer::fit: empty matrix");
        let means = x.col_means();
        let mut stds = vec![0.0f32; x.cols()];
        for row in x.iter_rows() {
            for ((s, &v), &m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / x.rows() as f32).sqrt();
            if *s < 1e-6 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Applies `(x - mean) / std` per feature.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the fitted width.
    #[must_use]
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "Normalizer: width mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Inverts [`Normalizer::transform`].
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the fitted width.
    #[must_use]
    pub fn inverse(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "Normalizer: width mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = *v * s + m;
            }
        }
        out
    }
}

/// Min-max rescales a matrix into `[0, 1]` globally (identity for constant
/// matrices).
#[must_use]
pub fn min_max_unit(x: &Matrix) -> Matrix {
    let lo = x.min();
    let hi = x.max();
    if (hi - lo).abs() < 1e-12 {
        return x.clone();
    }
    x.map(|v| (v - lo) / (hi - lo))
}

/// Clamps every pixel of a dataset into `[0, 1]` (post-augmentation guard).
#[must_use]
pub fn clamp_unit(ds: &Dataset) -> Dataset {
    ds.with_x(ds.x().map(|v| v.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let x = Matrix::from_fn(100, 3, |r, c| (r as f32 * 0.1) * (c as f32 + 1.0) + c as f32);
        let norm = Normalizer::fit(&x);
        let z = norm.transform(&x);
        for c in 0..3 {
            let col = z.col(c);
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {c} var {var}");
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let x = Matrix::from_fn(10, 4, |r, c| (r * 4 + c) as f32 * 0.37);
        let norm = Normalizer::fit(&x);
        let back = norm.inverse(&norm.transform(&x));
        assert!(back.approx_eq(&x, 1e-4));
    }

    #[test]
    fn constant_features_pass_through() {
        let x = Matrix::filled(5, 2, 3.0);
        let norm = Normalizer::fit(&x);
        let z = norm.transform(&x);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn min_max_hits_bounds() {
        let x = Matrix::from_vec(1, 3, vec![-2.0, 0.0, 6.0]).unwrap();
        let u = min_max_unit(&x);
        assert_eq!(u.min(), 0.0);
        assert_eq!(u.max(), 1.0);
        assert!((u[(0, 1)] - 0.25).abs() < 1e-6);
        // Constant input unchanged.
        let c = Matrix::filled(2, 2, 5.0);
        assert_eq!(min_max_unit(&c), c);
    }
}
