//! Synthetic 32×32 RGB traffic-sign images (GTSRB stand-in).
//!
//! Each of the 43 classes is defined by a deterministic combination of
//! sign shape (circle / triangle / diamond / octagon / square), rim colour,
//! and inner glyph (bar count and orientation). Per-sample variation —
//! illumination, background colour, position jitter, noise, occasional
//! occlusion — mirrors the "varying light conditions and colorful
//! backgrounds" the paper highlights about GTSRB.

use orco_tensor::{Matrix, OrcoRng};

use crate::dataset::{Dataset, DatasetKind};
use crate::raster::Canvas;

/// The sign outline shapes, cycled over classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignShape {
    /// Circular sign (speed limits, prohibitions).
    Circle,
    /// Triangular warning sign.
    Triangle,
    /// Diamond priority sign.
    Diamond,
    /// Octagonal stop-style sign.
    Octagon,
    /// Square information sign.
    Square,
}

/// The deterministic visual recipe for one class.
#[derive(Debug, Clone, Copy)]
pub struct ClassRecipe {
    /// Outline shape.
    pub shape: SignShape,
    /// Rim colour (RGB in `[0, 1]`).
    pub rim_rgb: [f32; 3],
    /// Number of inner glyph bars (1–4).
    pub bars: usize,
    /// Whether the inner bars are vertical (else horizontal).
    pub vertical: bool,
}

impl ClassRecipe {
    /// The recipe for a class id.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 43`.
    #[must_use]
    pub fn for_class(class: usize) -> Self {
        assert!(class < DatasetKind::GtsrbLike.classes(), "class {class} out of range");
        let shape = match class % 5 {
            0 => SignShape::Circle,
            1 => SignShape::Triangle,
            2 => SignShape::Diamond,
            3 => SignShape::Octagon,
            _ => SignShape::Square,
        };
        // Distinct, saturated rim colours spread over hue by class.
        let hue = (class as f32 * 360.0 / 43.0).to_radians();
        let rim_rgb = [
            0.55 + 0.45 * hue.cos().max(0.0),
            0.55 + 0.45 * (hue - 2.094).cos().max(0.0),
            0.55 + 0.45 * (hue + 2.094).cos().max(0.0),
        ];
        Self { shape, rim_rgb, bars: 1 + (class / 5) % 4, vertical: (class / 20).is_multiple_of(2) }
    }
}

/// Per-sample rendering variation.
#[derive(Debug, Clone, Copy)]
pub struct SignStyle {
    /// Illumination gain applied to the whole image.
    pub illumination: f32,
    /// Background brightness per channel.
    pub background: [f32; 3],
    /// Sign centre offset, normalized.
    pub offset: (f32, f32),
    /// Sign radius, normalized.
    pub radius: f32,
    /// Gaussian pixel noise standard deviation.
    pub noise_std: f32,
    /// Whether a corner occlusion patch is drawn.
    pub occluded: bool,
}

impl SignStyle {
    /// Samples a random style.
    #[must_use]
    pub fn sample(rng: &mut OrcoRng) -> Self {
        Self {
            illumination: rng.uniform(0.55, 1.15),
            background: [rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.5)],
            offset: (rng.uniform(0.42, 0.58), rng.uniform(0.42, 0.58)),
            radius: rng.uniform(0.3, 0.4),
            noise_std: rng.uniform(0.01, 0.06),
            occluded: rng.bernoulli(0.15),
        }
    }

    /// A clean, centred, well-lit style.
    #[must_use]
    pub fn clean() -> Self {
        Self {
            illumination: 1.0,
            background: [0.1, 0.1, 0.15],
            offset: (0.5, 0.5),
            radius: 0.36,
            noise_std: 0.0,
            occluded: false,
        }
    }
}

fn shape_vertices(shape: SignShape, centre: (f32, f32), r: f32) -> Vec<(f32, f32)> {
    let (cy, cx) = centre;
    let poly = |sides: usize, phase: f32| -> Vec<(f32, f32)> {
        (0..sides)
            .map(|i| {
                let a = phase + i as f32 * std::f32::consts::TAU / sides as f32;
                (cy + r * a.sin(), cx + r * a.cos())
            })
            .collect()
    };
    match shape {
        SignShape::Circle => Vec::new(), // drawn as a disc
        SignShape::Triangle => poly(3, -std::f32::consts::FRAC_PI_2),
        SignShape::Diamond => poly(4, 0.0),
        SignShape::Octagon => poly(8, std::f32::consts::PI / 8.0),
        SignShape::Square => poly(4, std::f32::consts::FRAC_PI_4),
    }
}

/// Renders one sign as a flattened 3072-element row (`(C, H, W)` order).
///
/// # Panics
///
/// Panics if `class >= 43`.
#[must_use]
pub fn render_sign(class: usize, style: &SignStyle, rng: &mut OrcoRng) -> Vec<f32> {
    let recipe = ClassRecipe::for_class(class);
    let kind = DatasetKind::GtsrbLike;
    let (h, w) = (kind.height(), kind.width());

    let mut channels: Vec<Canvas> =
        (0..3).map(|c| Canvas::new(h, w, style.background[c])).collect();

    // Sign face: bright plate in every channel, rim in the recipe colour.
    for (c, canvas) in channels.iter_mut().enumerate() {
        let face = 0.85f32;
        match recipe.shape {
            SignShape::Circle => {
                canvas.disc(style.offset, style.radius, face);
                canvas.circle(style.offset, style.radius, 2.5, recipe.rim_rgb[c]);
            }
            shape => {
                let verts = shape_vertices(shape, style.offset, style.radius);
                canvas.polygon(&verts, face);
                for i in 0..verts.len() {
                    let a = verts[i];
                    let b = verts[(i + 1) % verts.len()];
                    canvas.line(a, b, 2.0, recipe.rim_rgb[c]);
                }
            }
        }
    }

    // Inner glyph: dark bars on the plate (subtracted by drawing low).
    let bar_zone = style.radius * 0.8;
    for b in 0..recipe.bars {
        let frac = (b as f32 + 1.0) / (recipe.bars as f32 + 1.0);
        let t = -bar_zone + 2.0 * bar_zone * frac;
        for canvas in &mut channels {
            let (from, to) = if recipe.vertical {
                (
                    (style.offset.0 - bar_zone * 0.7, style.offset.1 + t),
                    (style.offset.0 + bar_zone * 0.7, style.offset.1 + t),
                )
            } else {
                (
                    (style.offset.0 + t, style.offset.1 - bar_zone * 0.7),
                    (style.offset.0 + t, style.offset.1 + bar_zone * 0.7),
                )
            };
            // Dark bars: blend negative intensity by drawing with set().
            let (y0, x0) = (from.0 * (h - 1) as f32, from.1 * (w - 1) as f32);
            let (y1, x1) = (to.0 * (h - 1) as f32, to.1 * (w - 1) as f32);
            let steps = 40;
            for s in 0..=steps {
                let t = s as f32 / steps as f32;
                let y = y0 + t * (y1 - y0);
                let x = x0 + t * (x1 - x0);
                canvas.set(y.round() as isize, x.round() as isize, 0.08);
            }
        }
    }

    // Occlusion: a gray patch over one corner of the sign.
    if style.occluded {
        let (oy, ox) = (style.offset.0 - style.radius * 0.5, style.offset.1 - style.radius * 0.5);
        for canvas in &mut channels {
            canvas.disc((oy, ox), style.radius * 0.35, 0.45);
        }
    }

    // Illumination and noise.
    let mut out = Vec::with_capacity(kind.sample_len());
    for canvas in &mut channels {
        canvas.scale_intensity(style.illumination);
        out.extend_from_slice(canvas.pixels());
    }
    if style.noise_std > 0.0 {
        for p in &mut out {
            *p = (*p + rng.normal(0.0, style.noise_std)).clamp(0.0, 1.0);
        }
    }
    out
}

/// Generates a label-balanced traffic-sign dataset of `n` samples.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn generate(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "gtsrb_like::generate: n must be non-zero");
    let kind = DatasetKind::GtsrbLike;
    let mut rng = OrcoRng::from_label("gtsrb-like", seed);
    let mut x = Matrix::zeros(n, kind.sample_len());
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % kind.classes();
        let style = SignStyle::sample(&mut rng);
        let pixels = render_sign(class, &style, &mut rng);
        x.row_mut(i).copy_from_slice(&pixels);
        labels.push(class);
    }
    Dataset::new(kind, x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = generate(86, 5);
        let b = generate(86, 5);
        assert_eq!(a.x(), b.x());
        assert!(a.x().min() >= 0.0 && a.x().max() <= 1.0);
        assert_eq!(a.class_histogram()[0], 2);
    }

    #[test]
    fn recipes_cover_all_shapes() {
        let shapes: Vec<SignShape> = (0..5).map(|c| ClassRecipe::for_class(c).shape).collect();
        assert!(shapes.contains(&SignShape::Circle));
        assert!(shapes.contains(&SignShape::Triangle));
        assert!(shapes.contains(&SignShape::Octagon));
    }

    #[test]
    fn different_classes_look_different() {
        let mut rng = OrcoRng::from_label("diff", 0);
        let style = SignStyle::clean();
        let a = render_sign(0, &style, &mut rng);
        let b = render_sign(21, &style, &mut rng);
        let mse = orco_tensor::stats::mse(&a, &b);
        assert!(mse > 1e-3, "classes 0 and 21 nearly identical: {mse}");
    }

    #[test]
    fn illumination_darkens_image() {
        let mut rng = OrcoRng::from_label("illum", 0);
        let bright = SignStyle { illumination: 1.0, ..SignStyle::clean() };
        let dark = SignStyle { illumination: 0.5, ..SignStyle::clean() };
        let a: f32 = render_sign(3, &bright, &mut rng).iter().sum();
        let b: f32 = render_sign(3, &dark, &mut rng).iter().sum();
        assert!(b < a * 0.7, "dark {b} vs bright {a}");
    }

    #[test]
    fn sign_has_bright_plate_against_background() {
        let mut rng = OrcoRng::from_label("plate", 0);
        let pixels = render_sign(0, &SignStyle::clean(), &mut rng);
        // A face pixel of channel 0 (inside the circle, off the glyph bar)
        // vs a corner (background).
        let face = pixels[16 * 32 + 22];
        let corner = pixels[0];
        assert!(face > corner + 0.3, "face {face} corner {corner}");
    }

    #[test]
    fn occlusion_changes_image() {
        let mut rng = OrcoRng::from_label("occ", 0);
        let clean = render_sign(7, &SignStyle::clean(), &mut rng);
        let occluded_style = SignStyle { occluded: true, ..SignStyle::clean() };
        let occ = render_sign(7, &occluded_style, &mut rng);
        assert!(orco_tensor::stats::mse(&clean, &occ) > 1e-4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_class_43() {
        let _ = ClassRecipe::for_class(43);
    }
}
