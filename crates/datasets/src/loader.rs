//! Mini-batch iteration over datasets.
//!
//! A reusable shuffling batcher so training loops across the workspace
//! (classifier, baselines, examples) don't each hand-roll index chunking.

use orco_tensor::{Matrix, OrcoRng};

use crate::dataset::Dataset;

/// A shuffling mini-batch iterator over one epoch of a dataset.
///
/// # Examples
///
/// ```
/// use orco_datasets::{loader::Batcher, mnist_like};
/// use orco_tensor::OrcoRng;
///
/// let ds = mnist_like::generate(10, 0);
/// let mut rng = OrcoRng::from_label("loader-doc", 0);
/// let mut seen = 0;
/// for batch in Batcher::new(&ds, 4, true, &mut rng) {
///     assert!(batch.x.rows() <= 4);
///     assert_eq!(batch.x.rows(), batch.labels.len());
///     seen += batch.x.rows();
/// }
/// assert_eq!(seen, 10);
/// ```
#[derive(Debug)]
pub struct Batcher<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

/// One mini-batch: samples with their labels and source indices.
#[derive(Debug)]
pub struct Batch {
    /// Batch design matrix (one sample per row).
    pub x: Matrix,
    /// Labels parallel to the rows of `x`.
    pub labels: Vec<usize>,
    /// Indices of the samples in the source dataset.
    pub indices: Vec<usize>,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher over one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the dataset is empty.
    #[must_use]
    pub fn new(dataset: &'a Dataset, batch_size: usize, shuffle: bool, rng: &mut OrcoRng) -> Self {
        assert!(batch_size > 0, "Batcher: batch_size must be non-zero");
        assert!(!dataset.is_empty(), "Batcher: dataset is empty");
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        if shuffle {
            rng.shuffle(&mut order);
        }
        Self { dataset, order, batch_size, cursor: 0 }
    }

    /// Number of batches this epoch will yield.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for Batcher<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let indices: Vec<usize> = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(Batch {
            x: self.dataset.x().select_rows(&indices),
            labels: indices.iter().map(|&i| self.dataset.label(i)).collect(),
            indices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_like;

    #[test]
    fn covers_every_sample_exactly_once() {
        let ds = mnist_like::generate(23, 0);
        let mut rng = OrcoRng::from_label("batcher", 0);
        let batcher = Batcher::new(&ds, 5, true, &mut rng);
        assert_eq!(batcher.batches(), 5);
        let mut seen: Vec<usize> = batcher.flat_map(|b| b.indices).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn unshuffled_order_is_sequential() {
        let ds = mnist_like::generate(6, 0);
        let mut rng = OrcoRng::from_label("batcher-seq", 0);
        let first = Batcher::new(&ds, 4, false, &mut rng).next().unwrap();
        assert_eq!(first.indices, vec![0, 1, 2, 3]);
        assert_eq!(first.labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn labels_match_rows() {
        let ds = mnist_like::generate(12, 1);
        let mut rng = OrcoRng::from_label("batcher-labels", 0);
        for batch in Batcher::new(&ds, 5, true, &mut rng) {
            for (row, (&idx, &label)) in batch.indices.iter().zip(&batch.labels).enumerate() {
                assert_eq!(label, ds.label(idx));
                assert_eq!(batch.x.row(row), ds.sample(idx));
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_rng() {
        let ds = mnist_like::generate(10, 2);
        let mut a = OrcoRng::from_label("batcher-det", 7);
        let mut b = OrcoRng::from_label("batcher-det", 7);
        let ia: Vec<usize> = Batcher::new(&ds, 3, true, &mut a).flat_map(|x| x.indices).collect();
        let ib: Vec<usize> = Batcher::new(&ds, 3, true, &mut b).flat_map(|x| x.indices).collect();
        assert_eq!(ia, ib);
    }
}
