//! Synthetic 28×28 grayscale digit glyphs (MNIST stand-in).
//!
//! Digits are rendered from seven-segment stroke skeletons with per-sample
//! jitter: random translation, scale, shear, stroke thickness, blur and
//! pixel noise. The result is a 10-class corpus whose samples are cheap to
//! generate, deterministic given a seed, visually digit-like, and — the
//! property the experiments actually need — *reconstructable and
//! classifiable with the same difficulty ordering as MNIST*.

use orco_tensor::{Matrix, OrcoRng};

use crate::dataset::{Dataset, DatasetKind};
use crate::raster::Canvas;

/// Seven-segment membership per digit.
///
/// Segments: 0=top, 1=top-right, 2=bottom-right, 3=bottom, 4=bottom-left,
/// 5=top-left, 6=middle.
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Segment endpoints in glyph-local normalized coordinates `(y, x)`.
const SEGMENT_LINES: [((f32, f32), (f32, f32)); 7] = [
    ((0.0, 0.0), (0.0, 1.0)), // top
    ((0.0, 1.0), (0.5, 1.0)), // top-right
    ((0.5, 1.0), (1.0, 1.0)), // bottom-right
    ((1.0, 0.0), (1.0, 1.0)), // bottom
    ((0.5, 0.0), (1.0, 0.0)), // bottom-left
    ((0.0, 0.0), (0.5, 0.0)), // top-left
    ((0.5, 0.0), (0.5, 1.0)), // middle
];

/// Per-sample rendering parameters (exposed for tests and visual debugging).
#[derive(Debug, Clone, Copy)]
pub struct GlyphStyle {
    /// Vertical offset of the glyph box origin, normalized.
    pub offset_y: f32,
    /// Horizontal offset of the glyph box origin, normalized.
    pub offset_x: f32,
    /// Glyph box height, normalized.
    pub scale_y: f32,
    /// Glyph box width, normalized.
    pub scale_x: f32,
    /// Horizontal shear applied proportionally to `y` (italic slant).
    pub shear: f32,
    /// Stroke thickness in pixels.
    pub thickness: f32,
    /// Stroke intensity in `[0, 1]`.
    pub intensity: f32,
    /// Gaussian pixel-noise standard deviation.
    pub noise_std: f32,
    /// Box-blur passes.
    pub blur_passes: usize,
}

impl GlyphStyle {
    /// Samples a random style (the distribution that makes the corpus
    /// non-trivial).
    #[must_use]
    pub fn sample(rng: &mut OrcoRng) -> Self {
        Self {
            offset_y: rng.uniform(0.12, 0.28),
            offset_x: rng.uniform(0.2, 0.4),
            scale_y: rng.uniform(0.45, 0.62),
            scale_x: rng.uniform(0.3, 0.45),
            shear: rng.uniform(-0.12, 0.12),
            thickness: rng.uniform(1.6, 3.0),
            intensity: rng.uniform(0.75, 1.0),
            noise_std: rng.uniform(0.01, 0.05),
            blur_passes: usize::from(rng.bernoulli(0.5)),
        }
    }

    /// A clean, centred style (useful for golden tests and visualization).
    #[must_use]
    pub fn clean() -> Self {
        Self {
            offset_y: 0.2,
            offset_x: 0.3,
            scale_y: 0.55,
            scale_x: 0.38,
            shear: 0.0,
            thickness: 2.2,
            intensity: 1.0,
            noise_std: 0.0,
            blur_passes: 0,
        }
    }
}

/// Renders one digit as a flattened 784-element row.
///
/// # Panics
///
/// Panics if `digit >= 10`.
#[must_use]
pub fn render_digit(digit: usize, style: &GlyphStyle, rng: &mut OrcoRng) -> Vec<f32> {
    assert!(digit < 10, "render_digit: digit {digit} out of range");
    let kind = DatasetKind::MnistLike;
    let mut canvas = Canvas::new(kind.height(), kind.width(), 0.0);
    for (seg, &on) in SEGMENTS[digit].iter().enumerate() {
        if !on {
            continue;
        }
        let ((y0, x0), (y1, x1)) = SEGMENT_LINES[seg];
        let map = |y: f32, x: f32| -> (f32, f32) {
            (
                style.offset_y + y * style.scale_y,
                style.offset_x + x * style.scale_x + style.shear * (y - 0.5),
            )
        };
        canvas.line(map(y0, x0), map(y1, x1), style.thickness, style.intensity);
    }
    canvas.blur(style.blur_passes);
    let mut pixels = canvas.into_pixels();
    if style.noise_std > 0.0 {
        for p in &mut pixels {
            *p = (*p + rng.normal(0.0, style.noise_std)).clamp(0.0, 1.0);
        }
    }
    pixels
}

/// Generates a label-balanced digit dataset of `n` samples.
///
/// Labels cycle `0, 1, …, 9, 0, …` and the whole corpus is deterministic
/// given `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn generate(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "mnist_like::generate: n must be non-zero");
    let kind = DatasetKind::MnistLike;
    let mut rng = OrcoRng::from_label("mnist-like", seed);
    let mut x = Matrix::zeros(n, kind.sample_len());
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % kind.classes();
        let style = GlyphStyle::sample(&mut rng);
        let pixels = render_digit(digit, &style, &mut rng);
        x.row_mut(i).copy_from_slice(&pixels);
        labels.push(digit);
    }
    Dataset::new(kind, x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_tensor::stats;

    #[test]
    fn generates_balanced_deterministic_corpus() {
        let a = generate(100, 42);
        let b = generate(100, 42);
        assert_eq!(a.x(), b.x(), "same seed → identical corpus");
        let h = a.class_histogram();
        assert!(h.iter().all(|&c| c == 10), "balanced: {h:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(10, 1);
        let b = generate(10, 2);
        assert_ne!(a.x(), b.x());
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = generate(50, 7);
        assert!(ds.x().min() >= 0.0);
        assert!(ds.x().max() <= 1.0);
    }

    #[test]
    fn glyphs_are_not_blank_and_not_full() {
        let ds = generate(30, 3);
        for i in 0..ds.len() {
            let s = ds.sample(i);
            let lit = s.iter().filter(|&&p| p > 0.3).count();
            assert!(lit > 20, "sample {i} nearly blank ({lit} lit)");
            assert!(lit < 500, "sample {i} nearly full ({lit} lit)");
        }
    }

    #[test]
    fn one_and_eight_have_different_ink() {
        // Digit 1 uses 2 segments, digit 8 uses 7: ink mass must differ
        // clearly, which is what makes classes separable.
        let mut rng = OrcoRng::from_label("ink", 0);
        let style = GlyphStyle::clean();
        let one: f32 = render_digit(1, &style, &mut rng).iter().sum();
        let eight: f32 = render_digit(8, &style, &mut rng).iter().sum();
        assert!(eight > one * 2.0, "eight {eight} vs one {one}");
    }

    #[test]
    fn same_class_varies_between_samples() {
        let ds = generate(40, 11);
        // Samples 0 and 10 are both digit 0 but rendered with different
        // styles: they must not be identical, else there is nothing to learn.
        let a = ds.sample(0);
        let b = ds.sample(10);
        assert_eq!(ds.label(0), ds.label(10));
        let m = stats::mse(a, b);
        assert!(m > 1e-4, "intra-class variation too small: {m}");
    }

    #[test]
    fn clean_style_centred_glyph() {
        let mut rng = OrcoRng::from_label("clean", 0);
        let pixels = render_digit(8, &GlyphStyle::clean(), &mut rng);
        // Corners empty for a centred glyph.
        assert!(pixels[0] < 0.05);
        assert!(pixels[783] < 0.05);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_digit_ten() {
        let mut rng = OrcoRng::from_label("bad", 0);
        let _ = render_digit(10, &GlyphStyle::clean(), &mut rng);
    }
}
