//! # orco-datasets
//!
//! Deterministic synthetic datasets standing in for MNIST and GTSRB.
//!
//! The paper evaluates OrcoDCS on two reconstruction tasks: grayscale digits
//! (MNIST, 28×28×1, 10 classes) and colour traffic signs (GTSRB, 32×32×3,
//! 43 classes, "varying light conditions and colorful backgrounds"). The
//! real datasets are not redistributable inside this offline reproduction,
//! so this crate synthesizes procedurally generated equivalents that
//! exercise exactly the same code paths:
//!
//! * [`mnist_like`] — digit glyphs rendered from seven-segment strokes with
//!   per-sample affine jitter, stroke-width variation, blur and pixel noise;
//! * [`gtsrb_like`] — traffic-sign images composed of a class-determined
//!   shape, rim colour and inner glyph under varying illumination and
//!   backgrounds.
//!
//! Both generators are fully deterministic given a seed, label-balanced,
//! and emit a [`Dataset`]: a design matrix with one flattened sample per
//! row (the layout every other crate consumes) plus integer labels.
//!
//! Supporting modules: [`raster`] (tiny software rasterizer), [`split`]
//! (train/test and fractional subsets — DCSNet-30/50/70% in the paper's
//! Figure 5), [`normalize`], [`augment`], and [`drift`] (environment-change
//! simulation driving the paper's §III-D fine-tuning monitor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;

pub mod augment;
pub mod drift;
pub mod gtsrb_like;
pub mod loader;
pub mod mnist_like;
pub mod normalize;
pub mod raster;
pub mod split;

pub use dataset::{Dataset, DatasetKind};
