use orco_tensor::Matrix;

/// Which synthetic corpus a [`Dataset`] was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 28×28 grayscale digit glyphs (MNIST stand-in).
    MnistLike,
    /// 32×32 RGB traffic signs (GTSRB stand-in).
    GtsrbLike,
}

impl DatasetKind {
    /// Channel count.
    #[must_use]
    pub fn channels(self) -> usize {
        match self {
            DatasetKind::MnistLike => 1,
            DatasetKind::GtsrbLike => 3,
        }
    }

    /// Spatial height.
    #[must_use]
    pub fn height(self) -> usize {
        match self {
            DatasetKind::MnistLike => 28,
            DatasetKind::GtsrbLike => 32,
        }
    }

    /// Spatial width.
    #[must_use]
    pub fn width(self) -> usize {
        self.height()
    }

    /// Number of label classes (10 digits / 43 sign classes).
    #[must_use]
    pub fn classes(self) -> usize {
        match self {
            DatasetKind::MnistLike => 10,
            DatasetKind::GtsrbLike => 43,
        }
    }

    /// Flattened sample length `C·H·W` (784 / 3072 — the paper's `N`).
    #[must_use]
    pub fn sample_len(self) -> usize {
        self.channels() * self.height() * self.width()
    }

    /// The latent dimension the paper uses for this task (M = 128 for
    /// MNIST, 512 for GTSRB).
    #[must_use]
    pub fn paper_latent_dim(self) -> usize {
        match self {
            DatasetKind::MnistLike => 128,
            DatasetKind::GtsrbLike => 512,
        }
    }
}

/// A labelled image dataset with one flattened sample per matrix row.
///
/// Pixel values are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    x: Matrix,
    labels: Vec<usize>,
}

impl Dataset {
    /// Assembles a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != labels.len()`, `x.cols()` does not match the
    /// kind's sample length, or any label is out of range.
    #[must_use]
    pub fn new(kind: DatasetKind, x: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(x.rows(), labels.len(), "Dataset: row/label count mismatch");
        assert_eq!(x.cols(), kind.sample_len(), "Dataset: sample length mismatch");
        assert!(
            labels.iter().all(|&l| l < kind.classes()),
            "Dataset: label out of range for {kind:?}"
        );
        Self { kind, x, labels }
    }

    /// The corpus this dataset came from.
    #[must_use]
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The design matrix (one flattened sample per row, values in `[0, 1]`).
    #[must_use]
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// Integer labels, parallel to the rows of [`Dataset::x`].
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One flattened sample.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        self.x.row(i)
    }

    /// The label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// A new dataset containing the selected rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            kind: self.kind,
            x: self.x.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.kind.classes()];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }

    /// Replaces the design matrix (used by normalization / augmentation),
    /// keeping labels.
    ///
    /// # Panics
    ///
    /// Panics if the new matrix's shape differs from the old one.
    #[must_use]
    pub fn with_x(&self, x: Matrix) -> Dataset {
        assert_eq!(x.shape(), self.x.shape(), "with_x: shape must be preserved");
        Dataset { kind: self.kind, x, labels: self.labels.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_dimensions_match_paper() {
        assert_eq!(DatasetKind::MnistLike.sample_len(), 784);
        assert_eq!(DatasetKind::GtsrbLike.sample_len(), 3072);
        assert_eq!(DatasetKind::MnistLike.classes(), 10);
        assert_eq!(DatasetKind::GtsrbLike.classes(), 43);
        assert_eq!(DatasetKind::MnistLike.paper_latent_dim(), 128);
        assert_eq!(DatasetKind::GtsrbLike.paper_latent_dim(), 512);
    }

    #[test]
    fn construction_and_access() {
        let x = Matrix::zeros(3, 784);
        let ds = Dataset::new(DatasetKind::MnistLike, x, vec![0, 5, 9]);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.label(1), 5);
        assert_eq!(ds.sample(0).len(), 784);
        let h = ds.class_histogram();
        assert_eq!(h[5], 1);
        assert_eq!(h.iter().sum::<usize>(), 3);
    }

    #[test]
    fn subset_selects_rows() {
        let x = Matrix::from_fn(4, 784, |r, _| r as f32);
        let ds = Dataset::new(DatasetKind::MnistLike, x, vec![0, 1, 2, 3]);
        let sub = ds.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[3, 1]);
        assert_eq!(sub.sample(0)[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(DatasetKind::MnistLike, Matrix::zeros(1, 784), vec![10]);
    }

    #[test]
    #[should_panic(expected = "sample length")]
    fn rejects_bad_width() {
        let _ = Dataset::new(DatasetKind::MnistLike, Matrix::zeros(1, 100), vec![0]);
    }
}
