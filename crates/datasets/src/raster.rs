//! A tiny software rasterizer for synthesizing dataset images.
//!
//! Single-channel `f32` canvases with value range `[0, 1]`; drawing is
//! additive-clamped. The digit and traffic-sign generators compose their
//! glyphs from these primitives.

/// A single-channel drawing surface.
#[derive(Debug, Clone)]
pub struct Canvas {
    h: usize,
    w: usize,
    pixels: Vec<f32>,
}

impl Canvas {
    /// Creates a canvas filled with `background`.
    #[must_use]
    pub fn new(h: usize, w: usize, background: f32) -> Self {
        Self { h, w, pixels: vec![background; h * w] }
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// The pixel buffer, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Consumes the canvas, returning its buffer.
    #[must_use]
    pub fn into_pixels(self) -> Vec<f32> {
        self.pixels
    }

    /// Reads pixel `(y, x)` (0 outside the canvas).
    #[must_use]
    pub fn get(&self, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y >= self.h as isize || x >= self.w as isize {
            0.0
        } else {
            self.pixels[y as usize * self.w + x as usize]
        }
    }

    /// Writes pixel `(y, x)`, clamped to `[0, 1]`; out-of-bounds is a no-op.
    pub fn set(&mut self, y: isize, x: isize, v: f32) {
        if y >= 0 && x >= 0 && y < self.h as isize && x < self.w as isize {
            self.pixels[y as usize * self.w + x as usize] = v.clamp(0.0, 1.0);
        }
    }

    /// Additively blends `v` into pixel `(y, x)`, clamped to `[0, 1]`.
    pub fn blend(&mut self, y: isize, x: isize, v: f32) {
        if y >= 0 && x >= 0 && y < self.h as isize && x < self.w as isize {
            let p = &mut self.pixels[y as usize * self.w + x as usize];
            *p = (*p + v).clamp(0.0, 1.0);
        }
    }

    /// Draws an anti-aliased thick line segment between two points given in
    /// **normalized** `[0, 1]` coordinates `(y, x)`, with `thickness` in
    /// pixels and `intensity` in `[0, 1]`.
    pub fn line(&mut self, from: (f32, f32), to: (f32, f32), thickness: f32, intensity: f32) {
        let (y0, x0) = (from.0 * (self.h - 1) as f32, from.1 * (self.w - 1) as f32);
        let (y1, x1) = (to.0 * (self.h - 1) as f32, to.1 * (self.w - 1) as f32);
        let half = thickness / 2.0;
        let pad = half.ceil() as isize + 1;
        let ymin = (y0.min(y1).floor() as isize - pad).max(0);
        let ymax = (y0.max(y1).ceil() as isize + pad).min(self.h as isize - 1);
        let xmin = (x0.min(x1).floor() as isize - pad).max(0);
        let xmax = (x0.max(x1).ceil() as isize + pad).min(self.w as isize - 1);
        let (dy, dx) = (y1 - y0, x1 - x0);
        let len_sq = dy * dy + dx * dx;
        for y in ymin..=ymax {
            for x in xmin..=xmax {
                let (py, px) = (y as f32, x as f32);
                // Distance from pixel to the segment.
                let t = if len_sq == 0.0 {
                    0.0
                } else {
                    (((py - y0) * dy + (px - x0) * dx) / len_sq).clamp(0.0, 1.0)
                };
                let (cy, cx) = (y0 + t * dy, x0 + t * dx);
                let dist = ((py - cy).powi(2) + (px - cx).powi(2)).sqrt();
                // Soft edge: full intensity inside, linear falloff over 1px.
                let cover = (half + 0.5 - dist).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(y, x, intensity * cover);
                }
            }
        }
    }

    /// Draws a circle outline centred at normalized `(cy, cx)` with
    /// normalized `radius`, ring `thickness` in pixels.
    pub fn circle(&mut self, centre: (f32, f32), radius: f32, thickness: f32, intensity: f32) {
        let (cy, cx) = (centre.0 * (self.h - 1) as f32, centre.1 * (self.w - 1) as f32);
        let r = radius * (self.h.min(self.w) - 1) as f32;
        let half = thickness / 2.0;
        for y in 0..self.h as isize {
            for x in 0..self.w as isize {
                let dist = ((y as f32 - cy).powi(2) + (x as f32 - cx).powi(2)).sqrt();
                let cover = (half + 0.5 - (dist - r).abs()).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(y, x, intensity * cover);
                }
            }
        }
    }

    /// Fills a circle (disc) at normalized `(cy, cx)` with normalized
    /// `radius`.
    pub fn disc(&mut self, centre: (f32, f32), radius: f32, intensity: f32) {
        let (cy, cx) = (centre.0 * (self.h - 1) as f32, centre.1 * (self.w - 1) as f32);
        let r = radius * (self.h.min(self.w) - 1) as f32;
        for y in 0..self.h as isize {
            for x in 0..self.w as isize {
                let dist = ((y as f32 - cy).powi(2) + (x as f32 - cx).powi(2)).sqrt();
                let cover = (r + 0.5 - dist).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(y, x, intensity * cover);
                }
            }
        }
    }

    /// Fills a convex polygon given by normalized `(y, x)` vertices.
    pub fn polygon(&mut self, vertices: &[(f32, f32)], intensity: f32) {
        if vertices.len() < 3 {
            return;
        }
        let pts: Vec<(f32, f32)> = vertices
            .iter()
            .map(|(vy, vx)| (vy * (self.h - 1) as f32, vx * (self.w - 1) as f32))
            .collect();
        for y in 0..self.h as isize {
            for x in 0..self.w as isize {
                if point_in_convex_polygon(y as f32, x as f32, &pts) {
                    self.blend(y, x, intensity);
                }
            }
        }
    }

    /// 3×3 box blur, applied `passes` times.
    pub fn blur(&mut self, passes: usize) {
        for _ in 0..passes {
            let mut next = vec![0.0f32; self.pixels.len()];
            for y in 0..self.h as isize {
                for x in 0..self.w as isize {
                    let mut acc = 0.0;
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            acc += self.get(y + dy, x + dx);
                        }
                    }
                    next[y as usize * self.w + x as usize] = acc / 9.0;
                }
            }
            self.pixels = next;
        }
    }

    /// Multiplies every pixel by `gain` (illumination), clamped to `[0, 1]`.
    pub fn scale_intensity(&mut self, gain: f32) {
        for p in &mut self.pixels {
            *p = (*p * gain).clamp(0.0, 1.0);
        }
    }
}

/// Whether point `(y, x)` lies inside the convex polygon `pts` (vertices in
/// consistent winding order, pixel coordinates).
fn point_in_convex_polygon(y: f32, x: f32, pts: &[(f32, f32)]) -> bool {
    let n = pts.len();
    let mut sign = 0i8;
    for i in 0..n {
        let (ay, ax) = pts[i];
        let (by, bx) = pts[(i + 1) % n];
        let cross = (bx - ax) * (y - ay) - (by - ay) * (x - ax);
        if cross.abs() < 1e-9 {
            continue;
        }
        let s = if cross > 0.0 { 1 } else { -1 };
        if sign == 0 {
            sign = s;
        } else if sign != s {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_uniform() {
        let c = Canvas::new(4, 6, 0.25);
        assert_eq!(c.pixels().len(), 24);
        assert!(c.pixels().iter().all(|&p| p == 0.25));
        assert_eq!(c.height(), 4);
        assert_eq!(c.width(), 6);
    }

    #[test]
    fn out_of_bounds_reads_zero_writes_noop() {
        let mut c = Canvas::new(2, 2, 0.0);
        assert_eq!(c.get(-1, 0), 0.0);
        assert_eq!(c.get(0, 5), 0.0);
        c.set(-1, -1, 1.0);
        c.blend(9, 9, 1.0);
        assert!(c.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn line_marks_pixels_along_path() {
        let mut c = Canvas::new(16, 16, 0.0);
        c.line((0.5, 0.0), (0.5, 1.0), 2.0, 1.0);
        // Middle row should be bright, corners dark.
        assert!(c.get(8, 8) > 0.8);
        assert!(c.get(0, 0) < 0.1);
        assert!(c.get(15, 15) < 0.1);
    }

    #[test]
    fn disc_fills_centre() {
        let mut c = Canvas::new(16, 16, 0.0);
        c.disc((0.5, 0.5), 0.3, 1.0);
        assert!(c.get(8, 8) > 0.9);
        assert!(c.get(0, 0) < 0.05);
    }

    #[test]
    fn circle_ring_is_hollow() {
        let mut c = Canvas::new(32, 32, 0.0);
        c.circle((0.5, 0.5), 0.4, 2.0, 1.0);
        assert!(c.get(16, 16) < 0.1, "centre should stay empty");
        // A point on the ring (radius 0.4*31 ≈ 12.4 px from centre).
        assert!(c.get(16, 16 + 12) > 0.3);
    }

    #[test]
    fn polygon_fills_triangle() {
        let mut c = Canvas::new(16, 16, 0.0);
        c.polygon(&[(0.1, 0.5), (0.9, 0.1), (0.9, 0.9)], 1.0);
        assert!(c.get(10, 8) > 0.9); // inside
        assert!(c.get(1, 1) < 0.05); // outside
    }

    #[test]
    fn blur_conserves_roughly_and_smooths() {
        let mut c = Canvas::new(8, 8, 0.0);
        c.set(4, 4, 1.0);
        let before_max = 1.0;
        c.blur(1);
        let after_max = c.pixels().iter().copied().fold(0.0f32, f32::max);
        assert!(after_max < before_max);
        assert!(c.get(4, 5) > 0.0, "energy spreads to neighbours");
    }

    #[test]
    fn intensity_scaling_clamps() {
        let mut c = Canvas::new(2, 2, 0.6);
        c.scale_intensity(2.0);
        assert!(c.pixels().iter().all(|&p| p == 1.0));
    }
}
