//! Train/test splitting and fractional subsets.
//!
//! The paper's Figure 5 compares OrcoDCS against DCSNet trained on 30%,
//! 50% and 70% of the data ("only 50% of the training data being made
//! accessible to it by default") — [`fraction`] produces those subsets.

use orco_tensor::OrcoRng;

use crate::dataset::Dataset;

/// A train/test split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

/// Splits a dataset into train/test by shuffled indices.
///
/// # Panics
///
/// Panics if `train_fraction` is not in `(0, 1)` or either side would be
/// empty.
#[must_use]
pub fn train_test(dataset: &Dataset, train_fraction: f32, rng: &mut OrcoRng) -> Split {
    assert!(
        (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
        "train_test: fraction must be in (0, 1)"
    );
    let n = dataset.len();
    let n_train = ((n as f32) * train_fraction).round() as usize;
    assert!(n_train > 0 && n_train < n, "train_test: split leaves an empty side");
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    Split { train: dataset.subset(&idx[..n_train]), test: dataset.subset(&idx[n_train..]) }
}

/// Returns a random `fraction` of the dataset (the paper's DCSNet-`x`%
/// training subsets).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or the subset would be empty.
#[must_use]
pub fn fraction(dataset: &Dataset, fraction: f32, rng: &mut OrcoRng) -> Dataset {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
    let k = ((dataset.len() as f32) * fraction).round() as usize;
    assert!(k > 0, "fraction: subset would be empty");
    let idx = rng.sample_indices(dataset.len(), k.min(dataset.len()));
    dataset.subset(&idx)
}

/// Splits by class parity for distribution-shift experiments: classes
/// `< pivot` go left, the rest go right.
///
/// # Panics
///
/// Panics if either side would be empty.
#[must_use]
pub fn by_class_pivot(dataset: &Dataset, pivot: usize) -> (Dataset, Dataset) {
    let left: Vec<usize> = (0..dataset.len()).filter(|&i| dataset.label(i) < pivot).collect();
    let right: Vec<usize> = (0..dataset.len()).filter(|&i| dataset.label(i) >= pivot).collect();
    assert!(!left.is_empty() && !right.is_empty(), "by_class_pivot: empty side");
    (dataset.subset(&left), dataset.subset(&right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_like;

    #[test]
    fn train_test_partitions() {
        let ds = mnist_like::generate(100, 0);
        let mut rng = OrcoRng::from_label("split", 0);
        let split = train_test(&ds, 0.8, &mut rng);
        assert_eq!(split.train.len(), 80);
        assert_eq!(split.test.len(), 20);
        assert_eq!(split.train.len() + split.test.len(), ds.len());
    }

    #[test]
    fn fraction_sizes() {
        let ds = mnist_like::generate(100, 0);
        let mut rng = OrcoRng::from_label("frac", 0);
        assert_eq!(fraction(&ds, 0.3, &mut rng).len(), 30);
        assert_eq!(fraction(&ds, 0.5, &mut rng).len(), 50);
        assert_eq!(fraction(&ds, 0.7, &mut rng).len(), 70);
        assert_eq!(fraction(&ds, 1.0, &mut rng).len(), 100);
    }

    #[test]
    fn fraction_is_deterministic_per_seed() {
        let ds = mnist_like::generate(50, 0);
        let mut a = OrcoRng::from_label("det", 1);
        let mut b = OrcoRng::from_label("det", 1);
        let fa = fraction(&ds, 0.5, &mut a);
        let fb = fraction(&ds, 0.5, &mut b);
        assert_eq!(fa.x(), fb.x());
    }

    #[test]
    fn class_pivot_separates_labels() {
        let ds = mnist_like::generate(100, 0);
        let (lo, hi) = by_class_pivot(&ds, 5);
        assert!(lo.labels().iter().all(|&l| l < 5));
        assert!(hi.labels().iter().all(|&l| l >= 5));
        assert_eq!(lo.len() + hi.len(), 100);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn rejects_zero_fraction() {
        let ds = mnist_like::generate(10, 0);
        let mut rng = OrcoRng::from_label("bad", 0);
        let _ = fraction(&ds, 0.0, &mut rng);
    }
}
