//! Data augmentation used by the classifier-training experiments.

use orco_tensor::OrcoRng;

use crate::dataset::Dataset;

/// Adds i.i.d. Gaussian pixel noise (std `sigma`), clamped to `[0, 1]`.
#[must_use]
pub fn gaussian_noise(ds: &Dataset, sigma: f32, rng: &mut OrcoRng) -> Dataset {
    let mut x = ds.x().clone();
    for v in x.as_mut_slice() {
        *v = (*v + rng.normal(0.0, sigma)).clamp(0.0, 1.0);
    }
    ds.with_x(x)
}

/// Translates every image by up to `max_shift` pixels in each direction
/// (per-sample random shift, zero fill).
#[must_use]
pub fn random_shift(ds: &Dataset, max_shift: usize, rng: &mut OrcoRng) -> Dataset {
    let kind = ds.kind();
    let (c, h, w) = (kind.channels(), kind.height(), kind.width());
    let mut x = ds.x().clone();
    for r in 0..x.rows() {
        let dy = rng.below(2 * max_shift + 1) as isize - max_shift as isize;
        let dx = rng.below(2 * max_shift + 1) as isize - max_shift as isize;
        if dy == 0 && dx == 0 {
            continue;
        }
        let src = x.row(r).to_vec();
        let dst = x.row_mut(r);
        dst.fill(0.0);
        for ch in 0..c {
            for y in 0..h as isize {
                for xx in 0..w as isize {
                    let (sy, sx) = (y - dy, xx - dx);
                    if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
                        dst[(ch * h + y as usize) * w + xx as usize] =
                            src[(ch * h + sy as usize) * w + sx as usize];
                    }
                }
            }
        }
    }
    ds.with_x(x)
}

/// Concatenates a dataset with an augmented copy, doubling its size.
///
/// # Panics
///
/// Panics if the two datasets have different kinds (cannot happen when
/// `augmented` came from `ds`).
#[must_use]
pub fn concat(ds: &Dataset, augmented: &Dataset) -> Dataset {
    assert_eq!(ds.kind(), augmented.kind(), "concat: dataset kinds differ");
    let x = ds.x().vstack(augmented.x());
    let mut labels = ds.labels().to_vec();
    labels.extend_from_slice(augmented.labels());
    Dataset::new(ds.kind(), x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_like;

    #[test]
    fn noise_changes_pixels_within_range() {
        let ds = mnist_like::generate(10, 0);
        let mut rng = OrcoRng::from_label("aug-noise", 0);
        let noisy = gaussian_noise(&ds, 0.1, &mut rng);
        assert_ne!(ds.x(), noisy.x());
        assert!(noisy.x().min() >= 0.0 && noisy.x().max() <= 1.0);
        assert_eq!(noisy.labels(), ds.labels());
    }

    #[test]
    fn shift_preserves_mass_mostly() {
        let ds = mnist_like::generate(5, 1);
        let mut rng = OrcoRng::from_label("aug-shift", 0);
        let shifted = random_shift(&ds, 2, &mut rng);
        // Ink may fall off the edge but most should survive.
        let before = ds.x().sum();
        let after = shifted.x().sum();
        assert!(after > before * 0.7, "too much ink lost: {before} -> {after}");
        assert!(after <= before + 1e-3);
    }

    #[test]
    fn concat_doubles() {
        let ds = mnist_like::generate(8, 2);
        let mut rng = OrcoRng::from_label("aug-cat", 0);
        let noisy = gaussian_noise(&ds, 0.05, &mut rng);
        let both = concat(&ds, &noisy);
        assert_eq!(both.len(), 16);
        assert_eq!(both.label(0), both.label(8));
    }
}
