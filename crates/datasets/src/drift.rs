//! Environmental-change simulation.
//!
//! The paper motivates online training with "environmental changes": sensing
//! data drifts and an offline-trained model cannot adapt (§I), so OrcoDCS
//! monitors reconstruction error and relaunches training when it exceeds a
//! threshold (§III-D). This module produces drifted variants of a dataset to
//! drive those experiments: illumination shifts, additive sensor bias,
//! contrast changes and noise bursts, each with a severity knob.

use orco_tensor::{Matrix, OrcoRng};

use crate::dataset::Dataset;

/// A kind of environmental drift applied to sensing data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drift {
    /// Global illumination change: multiply pixels by `1 - severity`.
    Dimming,
    /// Additive sensor bias: add `severity * 0.5` to every pixel.
    Bias,
    /// Contrast compression toward 0.5 by `severity`.
    ContrastLoss,
    /// Heavy sensor noise with std `severity * 0.3`.
    NoiseBurst,
}

impl Drift {
    /// All drift kinds (for sweeps).
    #[must_use]
    pub fn all() -> [Drift; 4] {
        [Drift::Dimming, Drift::Bias, Drift::ContrastLoss, Drift::NoiseBurst]
    }
}

/// Applies a drift of the given `severity` in `[0, 1]` to every sample.
///
/// Severity 0 is the identity; severity 1 is the strongest supported shift.
/// Labels are preserved — the world changed, not the classes.
///
/// # Panics
///
/// Panics if `severity` is outside `[0, 1]`.
#[must_use]
pub fn apply(ds: &Dataset, drift: Drift, severity: f32, rng: &mut OrcoRng) -> Dataset {
    let mut x = ds.x().clone();
    apply_matrix(&mut x, drift, severity, rng);
    ds.with_x(x)
}

/// Applies a drift in place to a raw sample matrix (one sample per row),
/// with the identical transform [`apply`] uses on a [`Dataset`].
///
/// This is the kind-agnostic entry point for callers whose frames do not
/// wrap a [`Dataset`] — the serving-layer load generator and the rollout
/// chaos scenarios shift live frame streams through it, so a simulated
/// environmental change is bit-for-bit the same distribution shift the
/// offline drift experiments train against.
///
/// # Panics
///
/// Panics if `severity` is outside `[0, 1]`.
pub fn apply_matrix(x: &mut Matrix, drift: Drift, severity: f32, rng: &mut OrcoRng) {
    assert!((0.0..=1.0).contains(&severity), "drift severity must be in [0, 1]");
    match drift {
        Drift::Dimming => {
            let gain = 1.0 - 0.8 * severity;
            x.map_inplace(|v| (v * gain).clamp(0.0, 1.0));
        }
        Drift::Bias => {
            let bias = 0.5 * severity;
            x.map_inplace(|v| (v + bias).clamp(0.0, 1.0));
        }
        Drift::ContrastLoss => {
            x.map_inplace(|v| 0.5 + (v - 0.5) * (1.0 - severity));
        }
        Drift::NoiseBurst => {
            let std = 0.3 * severity;
            for v in x.as_mut_slice() {
                *v = (*v + rng.normal(0.0, std)).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_like;
    use orco_tensor::stats;

    #[test]
    fn zero_severity_is_identity_for_deterministic_drifts() {
        let ds = mnist_like::generate(5, 0);
        let mut rng = OrcoRng::from_label("drift0", 0);
        for d in [Drift::Dimming, Drift::Bias, Drift::ContrastLoss] {
            let out = apply(&ds, d, 0.0, &mut rng);
            assert!(out.x().approx_eq(ds.x(), 1e-6), "{d:?} at severity 0 changed data");
        }
    }

    #[test]
    fn severity_increases_distortion() {
        let ds = mnist_like::generate(10, 1);
        let mut rng = OrcoRng::from_label("drift-sev", 0);
        for d in Drift::all() {
            let mild = apply(&ds, d, 0.2, &mut rng);
            let severe = apply(&ds, d, 0.9, &mut rng);
            let e_mild = stats::mse(ds.x().as_slice(), mild.x().as_slice());
            let e_severe = stats::mse(ds.x().as_slice(), severe.x().as_slice());
            assert!(e_severe > e_mild, "{d:?}: severe ({e_severe}) not worse than mild ({e_mild})");
        }
    }

    #[test]
    fn dimming_reduces_brightness() {
        let ds = mnist_like::generate(5, 2);
        let mut rng = OrcoRng::from_label("drift-dim", 0);
        let dim = apply(&ds, Drift::Dimming, 0.8, &mut rng);
        assert!(dim.x().sum() < ds.x().sum() * 0.5);
    }

    #[test]
    fn labels_preserved() {
        let ds = mnist_like::generate(20, 3);
        let mut rng = OrcoRng::from_label("drift-labels", 0);
        let out = apply(&ds, Drift::NoiseBurst, 0.5, &mut rng);
        assert_eq!(out.labels(), ds.labels());
    }

    #[test]
    fn matrix_and_dataset_paths_agree() {
        let ds = mnist_like::generate(8, 4);
        for d in Drift::all() {
            let mut rng_a = OrcoRng::from_label("drift-mat", 7);
            let mut rng_b = OrcoRng::from_label("drift-mat", 7);
            let via_ds = apply(&ds, d, 0.6, &mut rng_a);
            let mut x = ds.x().clone();
            apply_matrix(&mut x, d, 0.6, &mut rng_b);
            assert_eq!(via_ds.x().as_slice(), x.as_slice(), "{d:?} diverged between entry points");
        }
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn rejects_severity_above_one() {
        let ds = mnist_like::generate(2, 0);
        let mut rng = OrcoRng::from_label("drift-bad", 0);
        let _ = apply(&ds, Drift::Bias, 1.5, &mut rng);
    }
}
