//! Ring-buffered structured trace spans with a bit-stable export.
//!
//! A [`Span`] is a single-timestamp event on one frame batch's journey
//! through the gateway, keyed by the client-minted 64-bit trace id it
//! carried on the wire. The [`Tracer`] stores spans in a bounded ring
//! (oldest dropped first, drops counted) so tracing can stay on in
//! production paths without unbounded growth — the same discipline as
//! the latency ledger. [`Tracer::export_text`] prints timestamps as raw
//! IEEE-754 bits, so a live run and its replay under the same virtual
//! clock export **identical bytes**, and [`verify_chains`] checks the
//! conservation law across the chain: rows may never appear at a stage
//! their predecessor did not emit.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Which stage of a frame's journey a span marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The gateway accepted a client push.
    Push,
    /// The accepted rows entered a shard's pending batch.
    Enqueue,
    /// A shard batch containing the rows was encoded (one span per
    /// trace in the batch; `detail` names the flush reason).
    Flush,
    /// Decodable codes for the rows were filed into the cluster store.
    Store,
    /// Rows were delivered to a streaming subscriber.
    Stream,
    /// Rows were delivered to an explicit pull.
    Pull,
    /// A subscriber attached (not part of any row chain).
    Subscribe,
}

impl SpanKind {
    /// Stable lowercase name used in the text export.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Push => "push",
            Self::Enqueue => "enqueue",
            Self::Flush => "flush",
            Self::Store => "store",
            Self::Stream => "stream",
            Self::Pull => "pull",
            Self::Subscribe => "subscribe",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The client-minted trace id this event belongs to (never 0; a
    /// zero trace id on the wire means "untraced" and emits no spans).
    pub trace_id: u64,
    /// The stage this span marks.
    pub kind: SpanKind,
    /// Cluster the rows belong to.
    pub cluster_id: u64,
    /// Shard that processed the rows.
    pub shard: u16,
    /// Rows involved at this stage.
    pub rows: u32,
    /// Event time, seconds on the host's clock (virtual under a manual
    /// clock, so replays stamp identical times).
    pub at_s: f64,
    /// Stage-specific annotation (e.g. the flush reason); `""` if none.
    pub detail: &'static str,
}

#[derive(Debug, Default)]
struct Ring {
    spans: VecDeque<Span>,
    dropped: u64,
}

/// A bounded, thread-safe span ring. Capacity 0 disables tracing
/// entirely: [`Tracer::record`] becomes a no-op that never locks.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// A tracer holding at most `capacity` spans (0 = disabled).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, ring: Mutex::new(Ring::default()) }
    }

    /// Whether spans are being recorded at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one span, evicting the oldest when the ring is full.
    pub fn record(&self, span: Span) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("tracer lock");
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Spans evicted so far (0 means the ring saw everything).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer lock").dropped
    }

    /// Spans currently held, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.ring.lock().expect("tracer lock").spans.iter().copied().collect()
    }

    /// The deterministic text export: one line per span, in recording
    /// order, timestamps as raw IEEE-754 bits so no formatting ever
    /// perturbs a byte.
    #[must_use]
    pub fn export_text(&self) -> String {
        let ring = self.ring.lock().expect("tracer lock");
        let mut out = String::with_capacity(24 + ring.spans.len() * 80);
        let _ = writeln!(out, "orco-trace v1 spans={} dropped={}", ring.spans.len(), ring.dropped);
        for s in &ring.spans {
            let detail = if s.detail.is_empty() { "-" } else { s.detail };
            let _ = writeln!(
                out,
                "{} trace={:016x} cluster={} shard={} rows={} at={:016x} detail={}",
                s.kind.as_str(),
                s.trace_id,
                s.cluster_id,
                s.shard,
                s.rows,
                s.at_s.to_bits(),
                detail,
            );
        }
        out
    }
}

/// What [`verify_chains`] tallied across all traces.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChainSummary {
    /// Distinct trace ids that pushed rows.
    pub traces: usize,
    /// Rows accepted across all traces.
    pub pushed_rows: u64,
    /// Rows delivered (pull + stream) across all traces.
    pub delivered_rows: u64,
}

#[derive(Debug, Default)]
struct Tally {
    pushed: u64,
    enqueued: u64,
    flushed: u64,
    stored: u64,
    delivered: u64,
}

/// Checks the causal conservation law over a span set: per trace id,
/// `enqueued == pushed`, `flushed <= pushed`, `stored == flushed`, and
/// `delivered <= stored` — every delivered row has exactly one complete
/// chain behind it. [`SpanKind::Subscribe`] spans are annotations, not
/// chain stages. A fully drained system additionally satisfies
/// `delivered_rows == pushed_rows` on the returned [`ChainSummary`];
/// that stronger claim is the caller's to assert.
///
/// # Errors
///
/// A human-readable description of the first trace whose chain breaks
/// conservation.
pub fn verify_chains(spans: &[Span]) -> Result<ChainSummary, String> {
    let mut tallies: BTreeMap<u64, Tally> = BTreeMap::new();
    for s in spans {
        if s.kind == SpanKind::Subscribe {
            continue;
        }
        let t = tallies.entry(s.trace_id).or_default();
        let rows = u64::from(s.rows);
        match s.kind {
            SpanKind::Push => t.pushed += rows,
            SpanKind::Enqueue => t.enqueued += rows,
            SpanKind::Flush => t.flushed += rows,
            SpanKind::Store => t.stored += rows,
            SpanKind::Pull | SpanKind::Stream => t.delivered += rows,
            SpanKind::Subscribe => unreachable!("filtered above"),
        }
    }
    let mut summary = ChainSummary::default();
    for (id, t) in &tallies {
        if t.pushed == 0 {
            return Err(format!("trace {id:016x}: rows appear mid-chain but were never pushed"));
        }
        if t.enqueued != t.pushed {
            return Err(format!(
                "trace {id:016x}: pushed {} rows but enqueued {}",
                t.pushed, t.enqueued
            ));
        }
        if t.flushed > t.pushed {
            return Err(format!(
                "trace {id:016x}: flushed {} rows but only {} were pushed",
                t.flushed, t.pushed
            ));
        }
        if t.stored != t.flushed {
            return Err(format!(
                "trace {id:016x}: flushed {} rows but stored {}",
                t.flushed, t.stored
            ));
        }
        if t.delivered > t.stored {
            return Err(format!(
                "trace {id:016x}: delivered {} rows but only {} were stored",
                t.delivered, t.stored
            ));
        }
        summary.traces += 1;
        summary.pushed_rows += t.pushed;
        summary.delivered_rows += t.delivered;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, kind: SpanKind, rows: u32) -> Span {
        Span { trace_id, kind, cluster_id: 1, shard: 0, rows, at_s: 0.25, detail: "" }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = Tracer::new(2);
        assert!(t.enabled());
        for i in 0..5 {
            t.record(span(i + 1, SpanKind::Push, 1));
        }
        assert_eq!(t.dropped(), 3);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace_id, 4, "oldest spans evicted first");
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let t = Tracer::new(0);
        assert!(!t.enabled());
        t.record(span(1, SpanKind::Push, 1));
        assert!(t.spans().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.export_text(), "orco-trace v1 spans=0 dropped=0\n");
    }

    #[test]
    fn export_is_deterministic_and_bit_exact() {
        let t = Tracer::new(8);
        t.record(Span {
            trace_id: 0xDEAD,
            kind: SpanKind::Flush,
            cluster_id: 3,
            shard: 1,
            rows: 8,
            at_s: 0.1, // 0.1 is not exactly representable; bits must survive
            detail: "deadline",
        });
        let text = t.export_text();
        assert_eq!(
            text,
            format!(
                "orco-trace v1 spans=1 dropped=0\nflush trace=000000000000dead cluster=3 \
                 shard=1 rows=8 at={:016x} detail=deadline\n",
                0.1f64.to_bits()
            )
        );
        assert_eq!(text, t.export_text());
    }

    #[test]
    fn complete_chain_verifies() {
        let spans = [
            span(7, SpanKind::Push, 3),
            span(7, SpanKind::Enqueue, 3),
            span(7, SpanKind::Flush, 3),
            span(7, SpanKind::Store, 3),
            span(7, SpanKind::Pull, 2),
            span(7, SpanKind::Stream, 1),
            span(9, SpanKind::Subscribe, 4), // annotation, not a chain
        ];
        let s = verify_chains(&spans).expect("conserved");
        assert_eq!(s, ChainSummary { traces: 1, pushed_rows: 3, delivered_rows: 3 });
    }

    #[test]
    fn pending_rows_are_legal_but_overdelivery_is_not() {
        // Pushed and enqueued, not yet flushed: a legal mid-flight state.
        let pending = [span(1, SpanKind::Push, 2), span(1, SpanKind::Enqueue, 2)];
        assert_eq!(verify_chains(&pending).expect("legal").delivered_rows, 0);
        // Delivering rows that were never stored breaks conservation.
        let phantom =
            [span(2, SpanKind::Push, 1), span(2, SpanKind::Enqueue, 1), span(2, SpanKind::Pull, 1)];
        let err = verify_chains(&phantom).expect_err("phantom delivery");
        assert!(err.contains("delivered"), "unexpected error: {err}");
        // Rows appearing mid-chain with no push at all.
        let orphan = [span(3, SpanKind::Store, 1)];
        assert!(verify_chains(&orphan).is_err());
    }
}
