//! # orco-obs — deterministic, allocation-bounded observability
//!
//! The observability layer of the OrcoDCS reproduction: typed
//! [`metrics`] (counters, clamped gauges, log2-bucketed histograms, and
//! a byte-stable text exposition) and ring-buffered structured
//! [`trace`] spans whose export is **bit-identical** between a live run
//! and its replay when both are stamped from the same virtual clock.
//!
//! Everything here is `std`-only and bounded: a [`trace::Tracer`] holds
//! at most its configured capacity of spans (dropping the oldest and
//! counting the drops), a [`metrics::Histogram`] is a fixed 64-bucket
//! array, and nothing allocates on the hot path beyond the ring itself.
//! Timestamps are plain `f64` seconds supplied by the caller — under a
//! manual clock they are exact event times, so two runs with the same
//! schedule export the same bytes.
//!
//! ## Quickstart: trace one frame's journey
//!
//! A span chain follows one client push through the gateway: push →
//! enqueue → flush → store → pull. [`trace::verify_chains`] checks the
//! conservation law (no stage may see rows the previous stage did not).
//!
//! ```
//! use orco_obs::trace::{verify_chains, Span, SpanKind, Tracer};
//!
//! let tracer = Tracer::new(64);
//! let span = |kind, detail| Span {
//!     trace_id: 0xA11CE,
//!     kind,
//!     cluster_id: 7,
//!     shard: 0,
//!     rows: 3,
//!     at_s: 0.005,
//!     detail,
//! };
//! tracer.record(span(SpanKind::Push, ""));
//! tracer.record(span(SpanKind::Enqueue, ""));
//! tracer.record(span(SpanKind::Flush, "size"));
//! tracer.record(span(SpanKind::Store, ""));
//! tracer.record(span(SpanKind::Pull, ""));
//!
//! let spans = tracer.spans();
//! let summary = verify_chains(&spans).expect("one complete chain");
//! assert_eq!((summary.traces, summary.pushed_rows, summary.delivered_rows), (1, 3, 3));
//! assert_eq!(tracer.dropped(), 0);
//! // The export is deterministic: same spans, same bytes.
//! assert_eq!(tracer.export_text(), tracer.export_text());
//! ```
//!
//! ## Quickstart: metrics exposition
//!
//! ```
//! use orco_obs::metrics::{Counter, Histogram, Registry};
//!
//! let pushes = Counter::new();
//! pushes.add(3);
//! let lat = Histogram::new();
//! lat.record_secs(0.004);
//!
//! let mut reg = Registry::new();
//! reg.set_int("orco_pushes_total", pushes.get());
//! reg.set_int(Registry::label("orco_shard_frames_in_total", &[("shard", "0")]), 3);
//! reg.set_histogram("orco_flush_latency_ns", &lat.snapshot());
//! let text = reg.render();
//! assert!(text.contains("orco_pushes_total 3"));
//! assert!(text.contains("orco_shard_frames_in_total{shard=\"0\"} 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{verify_chains, ChainSummary, Span, SpanKind, Tracer};
