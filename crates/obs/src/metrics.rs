//! Typed metric primitives and a deterministic text exposition.
//!
//! [`Counter`] and [`Gauge`] are thin wrappers over relaxed atomics —
//! the same discipline the serving layer's `ServeStats` always used —
//! with one sharpened edge: [`Gauge::sub`] clamps at zero with a
//! compare-exchange loop instead of wrapping to `u64::MAX`, so a gauge
//! snapshot taken mid-race can read low, never absurd. [`Histogram`]
//! buckets by `floor(log2(nanoseconds))` into a fixed 64-slot array, so
//! recording is branch-light and the exposition needs no float
//! formatting to stay byte-stable. [`Registry`] is a scrape-time
//! builder: callers insert fully-resolved lines in a fixed order and
//! [`Registry::render`] emits exactly those bytes.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // Relaxed: a monotonic tally with no ordering relationship to
        // any other memory; scrapes tolerate momentary skew.
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // Relaxed: scrape-time read; cross-counter skew is acceptable.
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge that can rise and fall but never wraps below zero.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // Relaxed: pure tally, no ordering dependency (see Counter::add).
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, clamping at zero. A bare `fetch_sub` would wrap
    /// to ~`u64::MAX` when a decrement races the increment it pairs
    /// with; the compare-exchange loop makes the worst outcome a
    /// momentarily-low reading instead of an absurd one.
    pub fn sub(&self, n: u64) {
        // Relaxed: a stale read just means one extra CAS retry.
        let mut cur = self.v.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            // Relaxed CAS both ways: only the value's own atomicity
            // matters; no other memory is ordered around the gauge.
            match self.v.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Overwrites the value.
    pub fn set(&self, n: u64) {
        // Relaxed: last-writer-wins is the gauge's semantics anyway.
        self.v.store(n, Ordering::Relaxed);
    }

    /// Raises the value to `n` if `n` is larger (atomic max — a
    /// high-water mark that cannot lose a racing update).
    pub fn max_assign(&self, n: u64) {
        // Relaxed: fetch_max is atomic on the value; no other memory
        // needs to be ordered around the high-water mark.
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // Relaxed: scrape-time read; momentary skew is acceptable.
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: one per possible `floor(log2(ns))` of a u64.
const BUCKETS: usize = 64;

/// A fixed-size histogram over nanosecond durations, bucketed by
/// `floor(log2(ns))` (zero lands in bucket 0). Unlike a reservoir of
/// samples it never decimates, so the full distribution survives — the
/// p50/p99 reservoir in the serving layer stays as the compatibility
/// read while this carries the shape.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records a duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = if ns == 0 { 0 } else { ns.ilog2() as usize };
        // Relaxed on all three: each is an independent monotonic tally,
        // and a scrape racing a record may see bucket/count/sum off by
        // one relative to each other — accepted, documented in snapshot.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a duration in seconds; non-finite or negative values
    /// clamp to zero (observability must not panic on a bad clock).
    pub fn record_secs(&self, s: f64) {
        let ns = if s.is_finite() && s > 0.0 { (s * 1e9) as u64 } else { 0 };
        self.record_ns(ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        // Relaxed: scrape-time read (see record_ns for the tolerance).
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // Relaxed loads: the snapshot is not a linearizable cut — a
            // racing record_ns may land in `buckets` but not yet `count`
            // (or vice versa). Scrapes accept that off-by-one in
            // exchange for never stalling recorders.
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i`
    /// (`ns == 0` counts in bucket 0).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The inclusive upper bound (ns) of bucket `i`: `2^(i+1) - 1`.
    #[must_use]
    pub fn upper_bound_ns(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }
}

/// A scrape-time builder for the text exposition. Lines render in
/// insertion order, so a caller that inserts in a fixed order gets a
/// byte-stable scrape; integer values avoid float formatting entirely.
#[derive(Debug, Default)]
pub struct Registry {
    lines: Vec<(String, String)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Formats `name{k="v",...}` for a labeled series.
    #[must_use]
    pub fn label(name: &str, labels: &[(&str, &str)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(name.len() + 16);
        out.push_str(name);
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }

    /// Inserts an integer-valued series.
    pub fn set_int(&mut self, key: impl Into<String>, value: u64) {
        self.lines.push((key.into(), value.to_string()));
    }

    /// Inserts a float-valued series (IEEE-754 bits in hex alongside a
    /// human decimal would be overkill here; `f64`'s shortest-roundtrip
    /// `Display` is already deterministic).
    pub fn set_float(&mut self, key: impl Into<String>, value: f64) {
        self.lines.push((key.into(), value.to_string()));
    }

    /// Expands a histogram into cumulative `_bucket{le_ns="..."}` lines
    /// (up to the last non-empty bucket) plus `_count` and `_sum_ns`.
    pub fn set_histogram(&mut self, name: &str, snap: &HistogramSnapshot) {
        let last = snap.buckets.iter().rposition(|&c| c > 0);
        let mut cum = 0u64;
        if let Some(last) = last {
            for (i, &c) in snap.buckets.iter().enumerate().take(last + 1) {
                cum += c;
                let le = HistogramSnapshot::upper_bound_ns(i).to_string();
                self.lines.push((
                    Self::label(&format!("{name}_bucket"), &[("le_ns", &le)]),
                    cum.to_string(),
                ));
            }
        }
        self.set_int(format!("{name}_count"), snap.count);
        self.set_int(format!("{name}_sum_ns"), snap.sum_ns);
    }

    /// Renders the exposition: one `key value` line per insertion.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.lines {
            out.push_str(k);
            out.push(' ');
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sub_clamps_instead_of_wrapping() {
        let g = Gauge::new();
        g.add(3);
        g.sub(10); // would wrap to u64::MAX - 6 under fetch_sub
        assert_eq!(g.get(), 0, "a racing decrement must clamp, not wrap");
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 1);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.max_assign(3);
        assert_eq!(g.get(), 7, "max_assign never lowers");
        g.max_assign(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_by_log2_ns() {
        let h = Histogram::new();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 0 (floor(log2(1)) == 0)
        h.record_ns(3); // bucket 1
        h.record_ns(1024); // bucket 10
        h.record_secs(1e-6); // 1000 ns -> bucket 9
        h.record_secs(f64::NAN); // clamps to 0 -> bucket 0
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.sum_ns, 1 + 3 + 1024 + 1000);
    }

    #[test]
    fn histogram_bounds_are_powers_of_two_minus_one() {
        assert_eq!(HistogramSnapshot::upper_bound_ns(0), 1);
        assert_eq!(HistogramSnapshot::upper_bound_ns(1), 3);
        assert_eq!(HistogramSnapshot::upper_bound_ns(10), 2047);
        assert_eq!(HistogramSnapshot::upper_bound_ns(63), u64::MAX);
    }

    #[test]
    fn registry_renders_in_insertion_order_and_is_stable() {
        let h = Histogram::new();
        h.record_ns(5);
        let mut r = Registry::new();
        r.set_int("b_total", 2);
        r.set_int(Registry::label("a_total", &[("shard", "1")]), 9);
        r.set_histogram("lat_ns", &h.snapshot());
        r.set_float("ratio", 0.5);
        let text = r.render();
        assert_eq!(
            text,
            "b_total 2\na_total{shard=\"1\"} 9\nlat_ns_bucket{le_ns=\"1\"} 0\n\
             lat_ns_bucket{le_ns=\"3\"} 0\nlat_ns_bucket{le_ns=\"7\"} 1\nlat_ns_count 1\n\
             lat_ns_sum_ns 5\nratio 0.5\n"
        );
        // Byte-stable: rendering twice yields identical bytes.
        assert_eq!(text, r.render());
    }
}
