//! Shared experiment-harness utilities: scales, table/series printing, and
//! ASCII image rendering.

use orco_datasets::DatasetKind;

/// Experiment scale, selected by the `ORCO_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI smoke runs (`ORCO_SCALE=quick`).
    Quick,
    /// The default: minutes, not hours, with the paper's orderings intact.
    Default,
    /// Closest to the paper's dataset sizes (`ORCO_SCALE=full`).
    Full,
}

impl Scale {
    /// Reads the scale from the environment (default: [`Scale::Default`]).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ORCO_SCALE").unwrap_or_default().as_str() {
            "quick" => Scale::Quick,
            "full" => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Training-set size for a dataset kind.
    #[must_use]
    pub fn train_n(self, kind: DatasetKind) -> usize {
        match (self, kind) {
            (Scale::Quick, DatasetKind::MnistLike) => 80,
            (Scale::Quick, DatasetKind::GtsrbLike) => 86,
            (Scale::Default, DatasetKind::MnistLike) => 400,
            (Scale::Default, DatasetKind::GtsrbLike) => 172,
            (Scale::Full, DatasetKind::MnistLike) => 1000,
            (Scale::Full, DatasetKind::GtsrbLike) => 430,
        }
    }

    /// Held-out test-set size for a dataset kind.
    #[must_use]
    pub fn test_n(self, kind: DatasetKind) -> usize {
        (self.train_n(kind) / 4).max(20)
    }

    /// Autoencoder training epochs.
    #[must_use]
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Default => 10,
            Scale::Full => 10,
        }
    }

    /// Classifier training epochs (the paper's Figure 5 x-axis goes to 10).
    #[must_use]
    pub fn classifier_epochs(self) -> usize {
        match self {
            Scale::Quick => 4,
            _ => 10,
        }
    }
}

/// Prints a standard experiment banner.
pub fn banner(figure: &str, title: &str) {
    println!("==================================================================");
    println!("{figure}: {title}");
    println!("==================================================================");
}

/// A named data series: `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points }
    }
}

/// Prints a set of series as an aligned table: one row per x value, one
/// column per series (missing points print as `-`).
pub fn print_series_table(x_label: &str, y_label: &str, series: &[Series]) {
    println!("  [{y_label}]");
    print!("  {x_label:>12}");
    for s in series {
        print!("  {:>18}", s.name);
    }
    println!();
    // Union of x values in order of first appearance.
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for &(x, _) in &s.points {
            if !xs.iter().any(|&e| (e - x).abs() < 1e-12) {
                xs.push(x);
            }
        }
    }
    for &x in &xs {
        print!("  {x:>12.4}");
        for s in series {
            match s.points.iter().find(|(px, _)| (px - x).abs() < 1e-12) {
                Some((_, y)) => print!("  {y:>18.6}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Renders a grayscale image as ASCII art (darker pixels → denser glyphs).
#[must_use]
pub fn ascii_image(pixels: &[f32], h: usize, w: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    assert_eq!(pixels.len(), h * w, "ascii_image: size mismatch");
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let v = pixels[y * w + x].clamp(0.0, 1.0);
            let idx = (v * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders two images side by side with labels (for Fig. 2 previews).
#[must_use]
pub fn ascii_side_by_side(labels: &[&str], images: &[&[f32]], h: usize, w: usize) -> String {
    assert_eq!(labels.len(), images.len(), "label/image count mismatch");
    let rendered: Vec<Vec<String>> = images
        .iter()
        .map(|img| ascii_image(img, h, w).lines().map(str::to_string).collect())
        .collect();
    let mut out = String::new();
    for (i, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label:^w$}", w = w + 2));
        let _ = i;
    }
    out.push('\n');
    for row in 0..h {
        for img in &rendered {
            out.push_str(&img[row]);
            out.push_str("  ");
        }
        out.push('\n');
    }
    out
}

/// Extracts the luminance (mean over channels) of a flattened `(C, H, W)`
/// sample for ASCII previewing colour images.
#[must_use]
pub fn luminance(sample: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
    assert_eq!(sample.len(), c * h * w, "luminance: size mismatch");
    let mut out = vec![0.0f32; h * w];
    for ch in 0..c {
        for (o, v) in out.iter_mut().zip(&sample[ch * h * w..(ch + 1) * h * w]) {
            *o += v / c as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sizes_are_ordered() {
        for kind in [DatasetKind::MnistLike, DatasetKind::GtsrbLike] {
            assert!(Scale::Quick.train_n(kind) < Scale::Default.train_n(kind));
            assert!(Scale::Default.train_n(kind) < Scale::Full.train_n(kind));
            assert!(Scale::Quick.test_n(kind) >= 20);
        }
    }

    #[test]
    fn ascii_image_dimensions() {
        let img = vec![0.0, 0.5, 1.0, 0.25];
        let art = ascii_image(&img, 2, 2);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('@')); // the 1.0 pixel
        assert!(art.starts_with(' ')); // the 0.0 pixel
    }

    #[test]
    fn luminance_averages_channels() {
        // 2 channels of a 1x2 image.
        let sample = vec![0.0, 1.0, 1.0, 0.0];
        let lum = luminance(&sample, 2, 1, 2);
        assert_eq!(lum, vec![0.5, 0.5]);
    }

    #[test]
    fn series_table_prints_all_series() {
        // Smoke: must not panic on ragged series.
        let a = Series::new("a", vec![(1.0, 2.0), (2.0, 3.0)]);
        let b = Series::new("b", vec![(2.0, 4.0)]);
        print_series_table("epoch", "loss", &[a, b]);
    }
}
