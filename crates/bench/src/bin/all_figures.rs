//! Regenerates every figure of the paper's evaluation in sequence.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    println!("OrcoDCS reproduction — all figures at {scale:?} scale\n");
    let _ = orco_bench::figs::fig2::run(scale);
    let _ = orco_bench::figs::fig3::run(scale);
    let _ = orco_bench::figs::fig4::run(scale);
    let _ = orco_bench::figs::fig5::run(scale);
    let _ = orco_bench::figs::fig6::run(scale);
    let _ = orco_bench::figs::fig7::run(scale);
    let _ = orco_bench::figs::fig8::run(scale);
    let _ = orco_bench::figs::fig9::run(scale);
    let _ = orco_bench::figs::ablations::run(scale);
    println!("\nAll figures regenerated.");
}
