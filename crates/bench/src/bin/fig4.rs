//! Regenerates the paper's Figure 4. See `orco_bench::figs::fig4`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig4::run(scale);
}
