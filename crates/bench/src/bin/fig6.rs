//! Regenerates the paper's Figure 6. See `orco_bench::figs::fig6`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig6::run(scale);
}
