//! Regenerates the paper's Figure 5. See `orco_bench::figs::fig5`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig5::run(scale);
}
