//! Regenerates the paper's Figure 3. See `orco_bench::figs::fig3`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig3::run(scale);
}
