//! Regenerates the paper's Figure 8. See `orco_bench::figs::fig8`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig8::run(scale);
}
