//! Regenerates the paper's Figure 7. See `orco_bench::figs::fig7`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig7::run(scale);
}
