//! Regenerates the loss-rate sweep (extension Figure 9). See
//! `orco_bench::figs::fig9`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig9::run(scale);
}
