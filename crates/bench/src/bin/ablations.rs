//! Runs the design-choice ablations. See `orco_bench::figs::ablations`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::ablations::run(scale);
}
