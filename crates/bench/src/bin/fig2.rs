//! Regenerates the paper's Figure 2. See `orco_bench::figs::fig2`.

fn main() {
    let scale = orco_bench::harness::Scale::from_env();
    let _ = orco_bench::figs::fig2::run(scale);
}
