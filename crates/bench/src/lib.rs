//! # orco-bench
//!
//! The benchmark harness of the OrcoDCS reproduction: one module — and one
//! runnable binary — per figure of the paper's evaluation (§IV), plus
//! Criterion micro-benchmarks of the components in `benches/`.
//!
//! | Binary | Paper figure | What it regenerates |
//! |--------|--------------|---------------------|
//! | `fig2` | Fig. 2 | Reconstruction quality (PSNR/SSIM table + ASCII previews) |
//! | `fig3` | Fig. 3 | Transmitted KB for 1 000 / 10 000 images |
//! | `fig4` | Fig. 4 | Time-to-loss curves, OrcoDCS vs DCSNet |
//! | `fig5` | Fig. 5 | Classifier accuracy/loss on reconstructed data |
//! | `fig6` | Fig. 6 | Latent-dimension sensitivity |
//! | `fig7` | Fig. 7 | Latent-noise sensitivity |
//! | `fig8` | Fig. 8 | Decoder-depth sensitivity |
//! | `fig9` | — (extension) | Data-plane latency & energy vs. loss rate on the event-driven backend |
//! | `all_figures` | — | Everything above in sequence |
//!
//! Scale is controlled by the `ORCO_SCALE` environment variable:
//! `quick` (CI smoke), `default`, or `full` (closest to the paper's sizes;
//! slowest). Every run is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;
pub mod harness;
