//! Ablations of OrcoDCS's design choices (DESIGN.md §7) — not a paper
//! figure, but the evidence behind the design decisions the paper asserts:
//!
//! 1. **Loss shape**: element-wise Huber (default) vs plain L2 vs the
//!    paper's literal per-sample vector Huber, trained to the same budget.
//! 2. **Latent noise**: σ² = 0 vs the default, evaluated on *drifted* data
//!    — the robustness the noise is supposed to buy.
//! 3. **Data plane**: plain CS chain vs hybrid chain vs direct per-device
//!    uplink, in bytes per frame.
//! 4. **Gradient compression**: f32 vs 8-bit feedback uplink — bytes saved
//!    vs loss cost.

use orco_datasets::{drift, mnist_like, DatasetKind};
use orco_nn::Loss;
use orco_tensor::OrcoRng;
use orco_wsn::{Network, NetworkConfig, PacketKind};
use orcodcs::{ClusterScale, ExperimentBuilder, GradCompression, OrcoConfig};

use crate::harness::{banner, Scale};

/// One ablation row: a labelled scalar comparison.
#[derive(Debug)]
pub struct AblationRow {
    /// Which ablation this row belongs to.
    pub group: &'static str,
    /// Variant label.
    pub variant: String,
    /// The measured value (metric named per group in the printout).
    pub value: f64,
}

/// Trains an OrcoDCS codec locally through the pipeline and hands back the
/// live experiment for probe reconstructions.
fn train_local(
    cfg: &OrcoConfig,
    data: &orco_datasets::Dataset,
    scale: Scale,
) -> orcodcs::Experiment {
    let (experiment, _report) =
        super::local_experiment(data, Box::new(super::orco_codec(cfg)), scale.epochs(), 1.0);
    experiment
}

fn loss_shape_ablation(scale: Scale, rows: &mut Vec<AblationRow>) {
    let ds = mnist_like::generate(scale.train_n(DatasetKind::MnistLike), 0);
    println!("\n--- Ablation 1: reconstruction-loss shape (probe L2 after training) ---");
    let base = super::orco_config(DatasetKind::MnistLike, scale);
    let variants: Vec<(&str, OrcoConfig)> = vec![
        ("huber_elementwise (default)", base.clone()),
        ("l2", {
            // δ→∞ element-wise Huber is exactly L2 on bounded pixels.
            let mut c = base.clone();
            c.huber_delta = 1e6;
            c
        }),
        ("vector_huber (paper eq. 4)", base.clone().with_vector_huber()),
    ];
    for (label, cfg) in variants {
        let mut exp = train_local(&cfg, &ds, scale);
        let l2 = {
            let recon = exp.codec_mut().reconstruct(ds.x()).expect("codec reconstructs");
            Loss::L2.value(&recon, ds.x())
        };
        println!("  {label:<30} probe L2 {l2:.6}");
        rows.push(AblationRow {
            group: "loss_shape",
            variant: label.to_string(),
            value: f64::from(l2),
        });
    }
}

fn noise_robustness_ablation(scale: Scale, rows: &mut Vec<AblationRow>) {
    let ds = mnist_like::generate(scale.train_n(DatasetKind::MnistLike), 1);
    println!("\n--- Ablation 2: latent noise vs robustness under drift ---");
    println!("  (L2 on NoiseBurst-drifted inputs; lower = more robust decoder)");
    let mut rng = OrcoRng::from_label("ablation-drift", 0);
    let drifted = drift::apply(&ds, drift::Drift::NoiseBurst, 0.4, &mut rng);
    for (label, variance) in [("no noise (σ²=0)", 0.0f32), ("default noise (σ²=0.1)", 0.1)] {
        let cfg = super::orco_config(DatasetKind::MnistLike, scale).with_noise_variance(variance);
        let mut exp = train_local(&cfg, &ds, scale);
        let recon = exp.codec_mut().reconstruct(drifted.x()).expect("codec reconstructs");
        let l2 = Loss::L2.value(&recon, ds.x());
        println!("  {label:<30} drifted-input L2 {l2:.6}");
        rows.push(AblationRow {
            group: "noise_robustness",
            variant: label.to_string(),
            value: f64::from(l2),
        });
    }
}

fn data_plane_ablation(rows: &mut Vec<AblationRow>) {
    println!("\n--- Ablation 3: data plane, bytes per frame (64 devices, M=128) ---");
    let latent_bytes = 128 * 4;
    let make = || Network::new(NetworkConfig { num_devices: 64, seed: 0, ..Default::default() });

    let mut plain = make();
    plain.compressed_aggregation_round(latent_bytes, 0).expect("runs");
    let plain_bytes = plain.accounting().total_tx_bytes();

    let mut hybrid = make();
    hybrid.hybrid_aggregation_round(latent_bytes, 4, 0).expect("runs");
    let hybrid_bytes = hybrid.accounting().total_tx_bytes();

    // Direct uplink: every device sends its reading straight to the
    // aggregator (no chaining) and the aggregator forwards the latent.
    let mut direct = make();
    let agg = direct.aggregator();
    for d in direct.devices().to_vec() {
        direct.transmit(d, agg, 4, PacketKind::RawData).expect("runs");
    }
    let direct_bytes = direct.accounting().total_tx_bytes();

    for (label, bytes) in [
        ("plain CS chain", plain_bytes),
        ("hybrid chain (ref [1])", hybrid_bytes),
        ("direct per-device uplink", direct_bytes),
    ] {
        println!("  {label:<30} {bytes:>10} bytes/frame");
        rows.push(AblationRow {
            group: "data_plane",
            variant: label.to_string(),
            value: bytes as f64,
        });
    }
}

fn grad_compression_ablation(scale: Scale, rows: &mut Vec<AblationRow>) {
    println!("\n--- Ablation 4: gradient-feedback compression ---");
    let ds = mnist_like::generate(scale.train_n(DatasetKind::MnistLike).min(128), 2);
    for (label, policy) in
        [("f32 feedback", GradCompression::None), ("8-bit feedback", GradCompression::Byte)]
    {
        let cfg = super::orco_config(DatasetKind::MnistLike, scale);
        let mut experiment = ExperimentBuilder::new()
            .dataset(&ds)
            .codec(super::orco_codec(&cfg))
            .scale(ClusterScale::Devices(16))
            .seed(0)
            .epochs(scale.epochs().min(5))
            .batch_size(32)
            .grad_compression(policy)
            .raw_frames(0)
            .data_plane_frames(0)
            .build()
            .expect("consistent experiment");
        let report = experiment.run().expect("simulation runs");
        let bytes = report.training_radio.feedback_bytes;
        let l2 = {
            let recon = experiment.codec_mut().reconstruct(ds.x()).expect("codec reconstructs");
            Loss::L2.value(&recon, ds.x())
        };
        println!("  {label:<30} feedback bytes {bytes:>12}   probe L2 {l2:.6}");
        rows.push(AblationRow {
            group: "grad_compression",
            variant: label.to_string(),
            value: bytes as f64,
        });
    }
}

/// Runs all four ablations.
pub fn run(scale: Scale) -> Vec<AblationRow> {
    banner("Ablations", "Design-choice ablations (DESIGN.md §7)");
    let mut rows = Vec::new();
    loss_shape_ablation(scale, &mut rows);
    noise_robustness_ablation(scale, &mut rows);
    data_plane_ablation(&mut rows);
    grad_compression_ablation(scale, &mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_expected_orderings() {
        let rows = run(Scale::Quick);
        // Hybrid chain ≤ plain chain; direct uplink is the cheapest in raw
        // bytes (but pays d² energy — not measured here).
        let get = |group: &str, contains: &str| -> f64 {
            rows.iter()
                .find(|r| r.group == group && r.variant.contains(contains))
                .map(|r| r.value)
                .expect("row exists")
        };
        assert!(get("data_plane", "hybrid") <= get("data_plane", "plain"));
        // 8-bit feedback moves fewer bytes than f32.
        assert!(get("grad_compression", "8-bit") * 2.0 < get("grad_compression", "f32"));
        // Element-wise Huber trains at least as well as the vector form.
        assert!(get("loss_shape", "elementwise") <= get("loss_shape", "vector_huber") * 1.05);
    }
}
