//! Figure 7 — sensitivity to the amount of Gaussian latent noise.
//!
//! OrcoDCS with σ² ∈ {0, 0.1, 0.2, 0.3} (MNIST) / {0, 0.3, 0.6, 0.9}
//! (GTSRB) versus DCSNet. Findings to reproduce: OrcoDCS beats DCSNet even
//! under substantial noise, and a *moderate* amount of noise reaches low
//! loss faster than either extreme (the denoising-regularizer effect).

use orco_datasets::DatasetKind;

use crate::harness::{banner, print_series_table, Scale, Series};

/// Outcome of one noise setting.
#[derive(Debug)]
pub struct Fig7Row {
    /// Series label.
    pub label: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// Noise variance σ².
    pub variance: f32,
    /// Final epoch's mean loss.
    pub final_loss: f32,
}

fn run_kind(kind: DatasetKind, scale: Scale) -> Vec<Fig7Row> {
    let dataset = super::sweep_dataset(kind, scale);
    let variances: &[f32] = match kind {
        DatasetKind::MnistLike => &[0.0, 0.1, 0.2, 0.3],
        DatasetKind::GtsrbLike => &[0.0, 0.3, 0.6, 0.9],
    };
    let mut curves = Vec::new();
    for &v in variances {
        let cfg = super::orco_config(kind, scale).with_noise_variance(v);
        let codec = Box::new(super::orco_codec(&cfg));
        let report = super::orchestrated_report(&dataset, codec, scale.epochs(), 1.0);
        curves.push((v, format!("OrcoDCS(s2={v})"), report));
    }
    curves.push((f32::NAN, "DCSNet".to_string(), super::dcsnet_orchestrated(&dataset, scale)));

    let series: Vec<Series> =
        curves.iter().map(|(_, label, r)| super::probe_series(r, label.clone())).collect();
    let rows: Vec<Fig7Row> = curves
        .iter()
        .map(|(v, label, r)| Fig7Row {
            label: label.clone(),
            kind,
            variance: *v,
            final_loss: r.final_probe_l2(),
        })
        .collect();

    println!("\n--- {kind:?}: probe L2 vs epochs across noise levels ---");
    print_series_table("epoch", "probe L2", &series);
    rows
}

/// Runs the Figure 7 experiment.
pub fn run(scale: Scale) -> Vec<Fig7Row> {
    banner("Figure 7", "Impact of Gaussian noise added to latent vectors");
    let mut rows = run_kind(DatasetKind::MnistLike, scale);
    rows.extend(run_kind(DatasetKind::GtsrbLike, scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_sweep_completes_with_finite_losses() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.final_loss.is_finite()));
        for group in rows.chunks(5) {
            // Moderate noise (σ² index 1) must stay close to the clean run —
            // the paper's point that noise does not hurt convergence.
            let clean = group[0].final_loss;
            let moderate = group[1].final_loss;
            assert!(
                moderate < clean * 2.0 + 0.05,
                "{}: moderate {moderate} vs clean {clean}",
                group[1].label
            );
            // Even the noisiest setting must have trained to a sane loss.
            let noisiest = &group[3];
            assert!(noisiest.final_loss < 1.0, "{}: {}", noisiest.label, noisiest.final_loss);
        }
    }
}
