//! Figure 8 — sensitivity to the number of decoder layers.
//!
//! OrcoDCS with 1/3/5 dense decoder layers versus DCSNet. Findings to
//! reproduce: OrcoDCS beats DCSNet at every depth, and added depth shows
//! diminishing (or negative) returns — deeper decoders have more to fit
//! and cost more edge compute per round.

use orco_datasets::DatasetKind;

use crate::harness::{banner, print_series_table, Scale, Series};

/// Outcome of one depth setting.
#[derive(Debug)]
pub struct Fig8Row {
    /// Series label.
    pub label: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// Decoder depth (0 for the DCSNet row).
    pub layers: usize,
    /// Final epoch's mean loss.
    pub final_loss: f32,
    /// Total simulated time, seconds.
    pub total_time_s: f64,
}

fn run_kind(kind: DatasetKind, scale: Scale) -> Vec<Fig8Row> {
    let dataset = super::sweep_dataset(kind, scale);
    let mut curves = Vec::new();
    for layers in [1usize, 3, 5] {
        let cfg = super::orco_config(kind, scale).with_decoder_layers(layers);
        let codec = Box::new(super::orco_codec(&cfg));
        let report = super::orchestrated_report(&dataset, codec, scale.epochs(), 1.0);
        curves.push((layers, format!("OrcoDCS-{layers}L"), report));
    }
    curves.push((0usize, "DCSNet".to_string(), super::dcsnet_orchestrated(&dataset, scale)));

    let series: Vec<Series> =
        curves.iter().map(|(_, label, r)| super::probe_series(r, label.clone())).collect();
    let rows: Vec<Fig8Row> = curves
        .iter()
        .map(|(layers, label, r)| Fig8Row {
            label: label.clone(),
            kind,
            layers: *layers,
            final_loss: r.final_probe_l2(),
            total_time_s: r.total_time_s(),
        })
        .collect();

    println!("\n--- {kind:?}: probe L2 vs epochs across decoder depths ---");
    print_series_table("epoch", "probe L2", &series);
    for r in &rows {
        println!(
            "  {:<14} final loss {:.6}  simulated time {:.1}s",
            r.label, r.final_loss, r.total_time_s
        );
    }
    rows
}

/// Runs the Figure 8 experiment.
pub fn run(scale: Scale) -> Vec<Fig8Row> {
    banner("Figure 8", "Impact of the number of decoder layers");
    let mut rows = run_kind(DatasetKind::MnistLike, scale);
    rows.extend(run_kind(DatasetKind::GtsrbLike, scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_decoders_cost_more_edge_time() {
        let rows = run(Scale::Quick);
        for group in rows.chunks(4) {
            assert!(
                group[2].total_time_s > group[0].total_time_s,
                "{:?}: 5L ({}) should cost more than 1L ({})",
                group[0].kind,
                group[2].total_time_s,
                group[0].total_time_s,
            );
            assert!(group.iter().all(|r| r.final_loss.is_finite()));
        }
    }
}
