//! Figure 4 — time-to-loss: OrcoDCS vs DCSNet under the same online
//! protocol.
//!
//! Both frameworks train through the IoT-Edge orchestrated procedure on the
//! same simulated deployment; the x-axis is *simulated* seconds (compute at
//! each site's FLOPS rate + every protocol byte over the links). Because
//! the two frameworks train with different native losses (vector Huber vs
//! L2), the y-axis here is a **common metric**: L2 reconstruction error on
//! a fixed probe set, evaluated out-of-band at every epoch boundary.
//!
//! The paper's finding to reproduce: OrcoDCS's curve sits below DCSNet's —
//! at any simulated time both have been running, OrcoDCS has the lower
//! reconstruction error, because its task-sized latent (8×/2× smaller
//! uplink) and dense autoencoder (far fewer FLOPs) make each round cheaper,
//! and it sees the full data stream rather than DCSNet's 50%.

use orco_datasets::DatasetKind;
use orcodcs::pipeline::Report;

use crate::harness::{banner, Scale};

/// One framework's `(sim_time_s, probe_l2)` trajectory.
#[derive(Debug)]
pub struct Fig4Curve {
    /// Framework label.
    pub framework: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// `(simulated seconds, probe L2 loss)` at each epoch boundary.
    pub points: Vec<(f64, f32)>,
}

impl Fig4Curve {
    /// Probe loss of the last checkpoint at or before `t` (None if the
    /// first checkpoint is after `t`).
    #[must_use]
    pub fn loss_at(&self, t: f64) -> Option<f32> {
        self.points.iter().rev().find(|(ts, _)| *ts <= t).map(|(_, l)| *l)
    }

    /// Final simulated time.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.points.last().map_or(0.0, |(t, _)| *t)
    }

    /// Final probe loss.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.points.last().map_or(f32::NAN, |(_, l)| *l)
    }
}

/// Projects a pipeline report's probe records (pre-training point
/// included) into a time-to-loss curve.
fn report_curve(report: &Report, label: &str, kind: DatasetKind) -> Fig4Curve {
    Fig4Curve {
        framework: label.to_string(),
        kind,
        points: report.probe.iter().map(|r| (r.sim_time_s, r.probe_l2)).collect(),
    }
}

fn print_curve(c: &Fig4Curve) {
    println!("  [{}] probe L2 vs simulated time", c.framework);
    println!("    {:>12} {:>12}", "time (s)", "L2 loss");
    for (t, l) in &c.points {
        println!("    {t:>12.2} {l:>12.6}");
    }
}

fn run_kind(kind: DatasetKind, scale: Scale) -> Vec<Fig4Curve> {
    let dataset = super::sweep_dataset(kind, scale);
    let epochs = scale.epochs();

    // OrcoDCS: full stream, paper latent dims. DCSNet: the same protocol
    // on the same deployment, 50% of the stream, fixed structure. One
    // builder chain each — the probe records land in the reports.
    let cfg = super::orco_config(kind, scale);
    let orco_report =
        super::orchestrated_report(&dataset, Box::new(super::orco_codec(&cfg)), epochs, 1.0);
    let dcs_report = super::dcsnet_orchestrated(&dataset, scale);

    let orco_curve = report_curve(&orco_report, "OrcoDCS", kind);
    let dcs_curve = report_curve(&dcs_report, "DCSNet-50%", kind);

    println!("\n--- {kind:?} ---");
    print_curve(&orco_curve);
    print_curve(&dcs_curve);
    let t_common = orco_curve.total_time_s().min(dcs_curve.total_time_s());
    println!(
        "  at t={t_common:.1}s: OrcoDCS {:?} vs DCSNet {:?}",
        orco_curve.loss_at(t_common),
        dcs_curve.loss_at(t_common)
    );
    vec![orco_curve, dcs_curve]
}

/// Runs the Figure 4 experiment.
pub fn run(scale: Scale) -> Vec<Fig4Curve> {
    banner("Figure 4", "Time-to-loss (probe L2 vs simulated seconds) under the online protocol");
    let mut rows = run_kind(DatasetKind::MnistLike, scale);
    rows.extend(run_kind(DatasetKind::GtsrbLike, scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orcodcs_has_lower_loss_at_common_time() {
        let curves = run(Scale::Quick);
        assert_eq!(curves.len(), 4);
        for pair in curves.chunks(2) {
            let (orco, dcs) = (&pair[0], &pair[1]);
            let t = orco.total_time_s().min(dcs.total_time_s());
            let lo = orco.loss_at(t).expect("orco has a checkpoint by then");
            let ld = dcs.loss_at(t).expect("dcsnet has a checkpoint by then");
            assert!(
                lo < ld,
                "{:?} at t={t:.1}s: OrcoDCS {lo} should be below DCSNet {ld}",
                orco.kind
            );
        }
    }
}
