//! Figure 3 — transmission cost for 1 000 and 10 000 images.
//!
//! OrcoDCS's tunable latent dimension (M = 128 for MNIST, 512 for GTSRB)
//! versus DCSNet's fixed 1024-dim latent. Every frame pays the in-cluster
//! chain aggregation plus the aggregator→edge uplink; both scale with the
//! latent dimension, so OrcoDCS transmits ~8× less on MNIST and ~2× less
//! on GTSRB (the paper reports "up to 10×" with protocol overheads).
//!
//! Byte costs are exactly linear in the frame count, so the harness
//! measures a few live frames on the simulator and extrapolates — the
//! extrapolation is exact (verified by test).

use orco_baselines::Dcsnet;
use orco_datasets::{gtsrb_like, mnist_like, DatasetKind};
use orcodcs::aggregation::TransmissionReport;
use orcodcs::{ClusterScale, Codec, ExperimentBuilder};

use crate::harness::{banner, print_series_table, Scale, Series};

/// Transmission cost of one framework on one dataset.
#[derive(Debug)]
pub struct Fig3Row {
    /// Framework label.
    pub framework: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// KB for 1 000 images.
    pub kb_1k: f64,
    /// KB for 10 000 images.
    pub kb_10k: f64,
}

fn measure(kind: DatasetKind, codec: Box<dyn Codec>, cluster: ClusterScale) -> TransmissionReport {
    // A single-frame dataset: the data-plane cost depends only on the
    // codec's dimensions, and zero epochs skips training entirely — the
    // untrained encoder moves exactly as many bytes as a trained one.
    let dataset = match kind {
        DatasetKind::MnistLike => mnist_like::generate(1, 0),
        DatasetKind::GtsrbLike => gtsrb_like::generate(1, 0),
    };
    let mut experiment = ExperimentBuilder::new()
        .dataset(&dataset)
        .codec_boxed(codec)
        .scale(cluster)
        .seed(0)
        .epochs(0)
        .data_plane_frames(3)
        .build()
        .expect("consistent experiment");
    experiment.run().expect("pipeline runs").data_plane.expect("data plane measured")
}

/// Runs the Figure 3 experiment. At non-quick scales the cluster is
/// faithful (one device per reading — the paper's model, slower to
/// simulate); the quick scale uses a fixed 64-device cluster.
pub fn run(scale: Scale) -> Vec<Fig3Row> {
    banner("Figure 3", "Transmission cost (KB) for 1 000 / 10 000 images: OrcoDCS vs DCSNet");
    let faithful = scale != Scale::Quick;
    let mut rows = Vec::new();
    for kind in [DatasetKind::MnistLike, DatasetKind::GtsrbLike] {
        let cluster = if faithful { ClusterScale::Faithful } else { ClusterScale::Devices(64) };
        let orco_m = kind.paper_latent_dim();
        let cfg = orcodcs::OrcoConfig::for_dataset(kind).with_latent_dim(orco_m);
        let backends: [(&str, Box<dyn Codec>); 2] = [
            ("OrcoDCS", Box::new(super::orco_codec(&cfg))),
            ("DCSNet", Box::new(Dcsnet::new(kind, 0))),
        ];
        let mut series = Vec::new();
        for (name, codec) in backends {
            let m = codec.code_len();
            let report = measure(kind, codec, cluster);
            let kb_1k = report.extrapolate(1000).total_kb();
            let kb_10k = report.extrapolate(10_000).total_kb();
            series.push(Series::new(
                format!("{name} (M={m})"),
                vec![(1000.0, kb_1k), (10_000.0, kb_10k)],
            ));
            rows.push(Fig3Row { framework: name.to_string(), kind, kb_1k, kb_10k });
        }
        println!("\n--- {kind:?} ({} devices) ---", cluster.device_count(kind.sample_len()));
        print_series_table("images", "transmitted KB", &series);
        let ratio_1k = rows[rows.len() - 1].kb_1k / rows[rows.len() - 2].kb_1k;
        println!("  DCSNet / OrcoDCS byte ratio: {ratio_1k:.2}x");
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orcodcs_transmits_less_on_both_datasets() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        // rows: [orco-mnist, dcs-mnist, orco-gtsrb, dcs-gtsrb]
        assert!(rows[1].kb_1k > rows[0].kb_1k * 4.0, "MNIST ratio should be ~8x");
        assert!(rows[3].kb_1k > rows[2].kb_1k * 1.5, "GTSRB ratio should be ~2x");
        // 10k is exactly 10x the 1k cost.
        for r in &rows {
            assert!((r.kb_10k / r.kb_1k - 10.0).abs() < 0.01);
        }
    }
}
