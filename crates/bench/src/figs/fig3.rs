//! Figure 3 — transmission cost for 1 000 and 10 000 images.
//!
//! OrcoDCS's tunable latent dimension (M = 128 for MNIST, 512 for GTSRB)
//! versus DCSNet's fixed 1024-dim latent. Every frame pays the in-cluster
//! chain aggregation plus the aggregator→edge uplink; both scale with the
//! latent dimension, so OrcoDCS transmits ~8× less on MNIST and ~2× less
//! on GTSRB (the paper reports "up to 10×" with protocol overheads).
//!
//! Byte costs are exactly linear in the frame count, so the harness
//! measures a few live frames on the simulator and extrapolates — the
//! extrapolation is exact (verified by test).

use orco_datasets::DatasetKind;
use orco_wsn::NetworkConfig;
use orcodcs::aggregation::{measure_compressed_pipeline, TransmissionReport};
use orcodcs::{Orchestrator, OrcoConfig};

use crate::harness::{banner, print_series_table, Scale, Series};

/// Transmission cost of one framework on one dataset.
#[derive(Debug)]
pub struct Fig3Row {
    /// Framework label.
    pub framework: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// KB for 1 000 images.
    pub kb_1k: f64,
    /// KB for 10 000 images.
    pub kb_10k: f64,
}

fn measure(kind: DatasetKind, latent_dim: usize, devices: usize) -> TransmissionReport {
    let cfg = OrcoConfig::for_dataset(kind).with_latent_dim(latent_dim);
    let net = NetworkConfig { num_devices: devices, seed: 0, ..Default::default() };
    let mut orch = Orchestrator::new(cfg, net).expect("valid config");
    // Skip training: the data-plane cost depends only on dimensions. The
    // untrained encoder moves exactly as many bytes as a trained one.
    let (_cols, _t) = orch.distribute_encoder().expect("broadcast succeeds");
    measure_compressed_pipeline(&mut orch, 3).expect("pipeline runs")
}

/// Runs the Figure 3 experiment. `faithful_devices` controls whether the
/// cluster has one device per reading (paper model; slower to simulate) or
/// a fixed 64-device cluster.
pub fn run(scale: Scale) -> Vec<Fig3Row> {
    banner("Figure 3", "Transmission cost (KB) for 1 000 / 10 000 images: OrcoDCS vs DCSNet");
    let faithful = scale != Scale::Quick;
    let mut rows = Vec::new();
    for kind in [DatasetKind::MnistLike, DatasetKind::GtsrbLike] {
        let devices = if faithful { kind.sample_len() } else { 64 };
        let orco_m = kind.paper_latent_dim();
        let configs: [(&str, usize); 2] = [("OrcoDCS", orco_m), ("DCSNet", 1024)];
        let mut series = Vec::new();
        for (name, m) in configs {
            let report = measure(kind, m, devices);
            let kb_1k = report.extrapolate(1000).total_kb();
            let kb_10k = report.extrapolate(10_000).total_kb();
            series.push(Series::new(
                format!("{name} (M={m})"),
                vec![(1000.0, kb_1k), (10_000.0, kb_10k)],
            ));
            rows.push(Fig3Row { framework: name.to_string(), kind, kb_1k, kb_10k });
        }
        println!("\n--- {kind:?} ({devices} devices) ---");
        print_series_table("images", "transmitted KB", &series);
        let ratio_1k = rows[rows.len() - 1].kb_1k / rows[rows.len() - 2].kb_1k;
        println!("  DCSNet / OrcoDCS byte ratio: {ratio_1k:.2}x");
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orcodcs_transmits_less_on_both_datasets() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        // rows: [orco-mnist, dcs-mnist, orco-gtsrb, dcs-gtsrb]
        assert!(rows[1].kb_1k > rows[0].kb_1k * 4.0, "MNIST ratio should be ~8x");
        assert!(rows[3].kb_1k > rows[2].kb_1k * 1.5, "GTSRB ratio should be ~2x");
        // 10k is exactly 10x the 1k cost.
        for r in &rows {
            assert!((r.kb_10k / r.kb_1k - 10.0).abs() < 0.01);
        }
    }
}
