//! Figure 9 (extension) — data-plane latency and energy versus link loss.
//!
//! The paper's evaluation holds the channel fixed; this driver sweeps the
//! intra-cluster frame-loss rate on the **event-driven** deployment
//! backend (`orco-sim`) and measures what each codec's steady-state data
//! plane pays for reliability: ARQ retransmissions inflate radio energy
//! and stretch the delivery-latency tail (p50/p99), and they do so in
//! proportion to how many bytes a codec puts on the air per frame — so
//! OrcoDCS's small tunable latent (M = 128) degrades more gracefully than
//! DCSNet's fixed 1024-dim latent, with the classical DCT+ISTA stack in
//! between. Every backend is driven through the one [`Codec`] trait; only
//! `code_len()` differs.

use orco_baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orco_baselines::Dcsnet;
use orco_datasets::{mnist_like, DatasetKind};
use orco_sim::{DesNetwork, MacMode, SimParams, SimSpec};
use orco_tensor::Matrix;
use orco_wsn::{DeploymentBackend, LinkStats, NetworkConfig};
use orcodcs::aggregation::measure_compressed_frames;
use orcodcs::{Codec, OrcoConfig};

use crate::harness::{banner, Scale};

/// One sweep cell: a codec's data-plane cost at one loss rate.
#[derive(Debug)]
pub struct Fig9Row {
    /// Codec label.
    pub codec: String,
    /// Per-frame loss probability of the sensor link.
    pub loss: f64,
    /// Simulated seconds for the measured frames.
    pub sim_time_s: f64,
    /// Radio energy spent, joules.
    pub energy_j: f64,
    /// Delivery statistics (retransmissions, latency percentiles, …).
    pub link: LinkStats,
}

fn sweep_codecs(scale: Scale) -> Vec<(String, Box<dyn Codec>)> {
    let kind = DatasetKind::MnistLike;
    let m = if scale == Scale::Quick { 64 } else { kind.paper_latent_dim() };
    let orco_cfg = OrcoConfig::for_dataset(kind).with_latent_dim(m);
    vec![
        (format!("OrcoDCS (M={m})"), Box::new(super::orco_codec(&orco_cfg)) as Box<dyn Codec>),
        ("DCSNet (M=1024)".to_string(), Box::new(Dcsnet::new(kind, 0))),
        (
            "DCT+ISTA (M=196)".to_string(),
            Box::new(ClassicalCodec::new(
                kind,
                196,
                CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 100, tol: 1e-6 }),
                0,
            )),
        ),
    ]
}

/// Runs the loss-rate sweep: for each codec and loss level, a fixed number
/// of compressed data-plane frames on a contended event-driven deployment.
pub fn run(scale: Scale) -> Vec<Fig9Row> {
    banner(
        "Figure 9 (ext)",
        "Data-plane latency & energy vs. frame-loss rate on the event-driven backend",
    );
    let frames = if scale == Scale::Quick { 2 } else { 5 };
    let devices = if scale == Scale::Quick { 16 } else { 32 };
    let losses = [0.0, 0.1, 0.3];
    // Real sensing frames feed the DES payload sizes: each codec
    // batch-encodes the round ONCE (codes buffer reused across codecs),
    // then every loss cell replays the per-frame traffic of those codes.
    let sensing = mnist_like::generate(frames, 0);
    let mut codes = Matrix::zeros(0, 0);
    let mut rows = Vec::new();
    for (name, mut codec) in sweep_codecs(scale) {
        codec.encode_batch(sensing.x().as_view(), &mut codes).expect("frames fit the codec");
        println!("\n--- {name}: {} B/frame on the wire ---", codec.bytes_per_frame());
        println!(
            "  {:>6} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "loss", "energy (J)", "time (s)", "p50 (ms)", "p99 (ms)", "retx"
        );
        for loss in losses {
            let mut net_config =
                NetworkConfig { num_devices: devices, seed: 0, ..Default::default() };
            net_config.sensor_link = net_config.sensor_link.with_loss(loss);
            let spec = SimSpec {
                params: SimParams { mac: MacMode::Fifo, ..SimParams::ideal() },
                ..Default::default()
            };
            let mut des = DesNetwork::new(net_config, spec);
            let report =
                measure_compressed_frames(&mut des, codes.cols(), frames).expect("data plane runs");
            let link = des.accounting().link_stats();
            println!(
                "  {:>6.2} {:>12.6} {:>12.4} {:>10.2} {:>10.2} {:>10}",
                loss,
                report.energy_j,
                report.sim_time_s,
                link.latency_p50_s * 1e3,
                link.latency_p99_s * 1e3,
                link.retransmitted_frames,
            );
            rows.push(Fig9Row {
                codec: name.clone(),
                loss,
                sim_time_s: report.sim_time_s,
                energy_j: report.energy_j,
                link,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_inflates_energy_latency_and_retransmissions() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 9, "3 codecs x 3 loss rates");
        for chunk in rows.chunks(3) {
            let clean = &chunk[0];
            let lossy = &chunk[2];
            assert_eq!(clean.loss, 0.0);
            assert_eq!(lossy.loss, 0.3);
            assert_eq!(clean.link.retransmitted_frames, 0, "{}", clean.codec);
            assert!(lossy.link.retransmitted_frames > 0, "{}", lossy.codec);
            assert!(lossy.energy_j > clean.energy_j, "{}", lossy.codec);
            assert!(lossy.link.latency_p99_s >= lossy.link.latency_p50_s);
            assert!(lossy.link.latency_p99_s > clean.link.latency_p99_s, "{}", lossy.codec);
        }
        // The big-latent codec pays the most at every loss level.
        let orco_lossy = &rows[2];
        let dcs_lossy = &rows[5];
        assert!(
            dcs_lossy.energy_j > orco_lossy.energy_j,
            "DCSNet's 1024-dim latent must cost more than OrcoDCS's"
        );
    }
}
