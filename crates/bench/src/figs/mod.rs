//! One module per figure of the paper's evaluation, plus shared drivers.
//!
//! Every figure is a thin projection of [`orcodcs::pipeline::Report`]s:
//! the helpers here assemble an [`ExperimentBuilder`] per backend (OrcoDCS
//! autoencoder, DCSNet, classical CS) and the figure modules only decide
//! which reports to run and which fields to tabulate.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use orco_baselines::Dcsnet;
use orco_datasets::{Dataset, DatasetKind};
use orcodcs::pipeline::Report;
use orcodcs::{
    AsymmetricAutoencoder, ClusterScale, Codec, Experiment, ExperimentBuilder, OrcoConfig,
    TrainingMode,
};

use crate::harness::{Scale, Series};

/// Default OrcoDCS configuration for a figure run at the given scale.
#[must_use]
pub fn orco_config(kind: DatasetKind, scale: Scale) -> OrcoConfig {
    OrcoConfig::for_dataset(kind).with_epochs(scale.epochs()).with_batch_size(32)
}

/// A fresh OrcoDCS codec for a figure run.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn orco_codec(config: &OrcoConfig) -> AsymmetricAutoencoder {
    AsymmetricAutoencoder::new(config).expect("valid config")
}

/// Runs a codec through the orchestrated protocol on the standard
/// 32-device figure cluster, recording the probe error at every epoch
/// boundary. Neither the §III-A collection phase nor the data plane is
/// simulated: the sweeps compare *training* time-to-loss on a common
/// t = 0 axis, as the paper's Figures 4 and 6–8 do.
///
/// # Panics
///
/// Panics if the experiment is inconsistent or the simulation fails.
#[must_use]
pub fn orchestrated_report(
    dataset: &Dataset,
    codec: Box<dyn Codec>,
    epochs: usize,
    data_fraction: f32,
) -> Report {
    let mut experiment = ExperimentBuilder::new()
        .dataset(dataset)
        .codec_boxed(codec)
        .scale(ClusterScale::Devices(32))
        .seed(0)
        .epochs(epochs)
        .batch_size(32)
        .data_fraction(data_fraction)
        .raw_frames(0)
        .data_plane_frames(0)
        .build()
        .expect("consistent experiment");
    experiment.run().expect("simulation runs")
}

/// Trains a codec natively (locally / offline, no network simulation) —
/// the setting of the quality and classifier figures, where only the
/// trained model matters. Returns the still-live experiment (for
/// follow-up reconstructions through [`Experiment::codec_mut`]) and its
/// report.
///
/// # Panics
///
/// Panics if the experiment is inconsistent or training diverges.
#[must_use]
pub fn local_experiment(
    dataset: &Dataset,
    codec: Box<dyn Codec>,
    epochs: usize,
    data_fraction: f32,
) -> (Experiment, Report) {
    let mut experiment = ExperimentBuilder::new()
        .dataset(dataset)
        .codec_boxed(codec)
        .training(TrainingMode::Local)
        .seed(0)
        .epochs(epochs)
        .batch_size(32)
        .data_fraction(data_fraction)
        .build()
        .expect("consistent experiment");
    let report = experiment.run().expect("training runs");
    (experiment, report)
}

/// Replaces a dataset's images with a codec's reconstructions of them
/// (labels preserved) — the input to the follow-up classifier experiments.
#[must_use]
pub fn reconstruct_dataset(codec: &mut dyn Codec, dataset: &Dataset) -> Dataset {
    let recon = codec.reconstruct(dataset.x()).expect("codec reconstructs");
    dataset.with_x(recon)
}

/// Projects a report's per-epoch probe curve into a printable series
/// (`x` = epochs completed, `y` = probe L2).
#[must_use]
pub fn probe_series(report: &Report, label: impl Into<String>) -> Series {
    Series::new(
        label,
        report.probe_curve().iter().map(|r| (r.epoch as f64, f64::from(r.probe_l2))).collect(),
    )
}

/// Loads the figure-sweep dataset for a kind at a scale.
#[must_use]
pub fn sweep_dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    match kind {
        DatasetKind::MnistLike => orco_datasets::mnist_like::generate(scale.train_n(kind), 0),
        DatasetKind::GtsrbLike => orco_datasets::gtsrb_like::generate(scale.train_n(kind), 0),
    }
}

/// The DCSNet baseline run through the orchestrated protocol at the
/// paper's default 50% data access.
#[must_use]
pub fn dcsnet_orchestrated(dataset: &Dataset, scale: Scale) -> Report {
    orchestrated_report(dataset, Box::new(Dcsnet::new(dataset.kind(), 0)), scale.epochs(), 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::mnist_like;

    #[test]
    fn local_training_and_reconstruction_dataset() {
        let ds = mnist_like::generate(16, 0);
        let cfg =
            OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16).with_batch_size(8);
        let (mut exp, report) = local_experiment(&ds, Box::new(orco_codec(&cfg)), 1, 1.0);
        assert_eq!(report.mode, TrainingMode::Local);
        let recon = reconstruct_dataset(exp.codec_mut(), &ds);
        assert_eq!(recon.len(), ds.len());
        assert_eq!(recon.labels(), ds.labels());
        assert_ne!(recon.x(), ds.x());
    }

    #[test]
    fn orchestrated_report_carries_probe_curve() {
        let ds = mnist_like::generate(16, 1);
        let cfg =
            OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16).with_batch_size(8);
        let report = orchestrated_report(&ds, Box::new(orco_codec(&cfg)), 2, 1.0);
        assert_eq!(report.probe_curve().len(), 2);
        assert!(report.total_time_s() > 0.0);
        let series = probe_series(&report, "orco");
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[0].0, 1.0);
    }
}
