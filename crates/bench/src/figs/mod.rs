//! One module per figure of the paper's evaluation, plus shared drivers.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;

use orco_baselines::offline_trainer::{train_dcsnet_offline, OfflineOutcome};
use orco_datasets::{Dataset, DatasetKind};
use orcodcs::{AsymmetricAutoencoder, OrcoConfig, SplitModel};

use crate::harness::Scale;

/// Trains an OrcoDCS autoencoder locally (no network simulation) — used by
/// the quality and classifier figures where only the trained model matters.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn train_orcodcs_local(dataset: &Dataset, config: &OrcoConfig) -> AsymmetricAutoencoder {
    let mut ae = AsymmetricAutoencoder::new(config).expect("valid config");
    let loss = config.loss();
    let mut rng = orco_tensor::OrcoRng::from_label("bench-local-batching", config.seed);
    let n = dataset.len();
    let bs = config.batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(bs) {
            let xb = dataset.x().select_rows(chunk);
            let _ = ae.train_batch_local(&xb, &loss);
        }
    }
    ae
}

/// Default OrcoDCS configuration for a figure run at the given scale.
#[must_use]
pub fn orco_config(kind: DatasetKind, scale: Scale) -> OrcoConfig {
    OrcoConfig::for_dataset(kind).with_epochs(scale.epochs()).with_batch_size(32)
}

/// Trains the DCSNet baseline offline at a data fraction.
#[must_use]
pub fn dcsnet_offline(dataset: &Dataset, fraction: f32, scale: Scale) -> OfflineOutcome {
    train_dcsnet_offline(dataset, fraction, scale.epochs(), 32, 0)
}

/// Replaces a dataset's images with a model's reconstructions of them
/// (labels preserved) — the input to the follow-up classifier experiments.
#[must_use]
pub fn reconstruct_dataset<M: SplitModel>(model: &mut M, dataset: &Dataset) -> Dataset {
    let recon = model.reconstruct_inference(dataset.x());
    dataset.with_x(recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::mnist_like;

    #[test]
    fn local_training_and_reconstruction_dataset() {
        let ds = mnist_like::generate(16, 0);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(1)
            .with_batch_size(8);
        let mut ae = train_orcodcs_local(&ds, &cfg);
        let recon = reconstruct_dataset(&mut ae, &ds);
        assert_eq!(recon.len(), ds.len());
        assert_eq!(recon.labels(), ds.labels());
        assert_ne!(recon.x(), ds.x());
    }
}

/// A sweep trajectory on the **common** metric: probe-set L2 after each
/// epoch, with the simulated clock reading at each checkpoint. Using one
/// metric for every series (OrcoDCS variants *and* DCSNet) keeps the
/// figures' y-axes comparable — the frameworks train with different native
/// losses.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// Series label.
    pub label: String,
    /// Probe L2 after epochs `1..=E`.
    pub probe_l2: Vec<f32>,
    /// Simulated seconds at each checkpoint.
    pub sim_times: Vec<f64>,
}

impl SweepCurve {
    /// Final probe L2.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.probe_l2.last().copied().unwrap_or(f32::NAN)
    }

    /// Total simulated seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.sim_times.last().copied().unwrap_or(0.0)
    }
}

/// Trains any split model epoch-by-epoch through the orchestrated protocol,
/// recording probe L2 after every epoch.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn orchestrated_sweep<M: SplitModel>(
    orch: &mut orcodcs::Orchestrator<M>,
    train_x: &orco_tensor::Matrix,
    probe: &orco_tensor::Matrix,
    epochs: usize,
    label: &str,
) -> SweepCurve {
    let mut probe_l2 = Vec::with_capacity(epochs);
    let mut sim_times = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let _ = orch.train(train_x).expect("simulation runs");
        let recon = orch.model_mut().reconstruct_inference(probe);
        probe_l2.push(orco_nn::Loss::L2.value(&recon, probe));
        sim_times.push(orch.network().now_s());
    }
    SweepCurve { label: label.to_string(), probe_l2, sim_times }
}

/// Runs one OrcoDCS configuration through the protocol and returns its
/// sweep curve (config's `epochs` field is run one at a time).
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulation fails.
#[must_use]
pub fn orcodcs_sweep(dataset: &Dataset, config: &OrcoConfig, label: &str) -> SweepCurve {
    let net = orco_wsn::NetworkConfig { num_devices: 32, seed: 0, ..Default::default() };
    let epochs = config.epochs;
    let mut one = config.clone();
    one.epochs = 1;
    let mut orch = orcodcs::Orchestrator::new(one, net).expect("valid config");
    let probe_idx: Vec<usize> = (0..dataset.len().min(64)).collect();
    let probe = dataset.x().select_rows(&probe_idx);
    orchestrated_sweep(&mut orch, dataset.x(), &probe, epochs, label)
}

/// Runs DCSNet (50% data) through the protocol and returns its sweep curve
/// on the same probe metric.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn dcsnet_sweep(dataset: &Dataset, scale: Scale) -> SweepCurve {
    let kind = dataset.kind();
    let net = orco_wsn::NetworkConfig { num_devices: 32, seed: 0, ..Default::default() };
    let mut rng = orco_tensor::OrcoRng::from_label("dcsnet-sweep-half", 0);
    let half = orco_datasets::split::fraction(dataset, 0.5, &mut rng);
    let dcs_cfg = OrcoConfig {
        input_dim: kind.sample_len(),
        latent_dim: orco_baselines::dcsnet::DCSNET_LATENT_DIM,
        decoder_layers: 4,
        noise_variance: 0.0,
        huber_delta: 1.0,
        vector_huber: false,
        learning_rate: 1e-3,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: Default::default(),
        seed: 0,
    };
    let mut orch =
        orcodcs::Orchestrator::with_model(orco_baselines::Dcsnet::new(kind, 0), dcs_cfg, net);
    let probe_idx: Vec<usize> = (0..dataset.len().min(64)).collect();
    let probe = dataset.x().select_rows(&probe_idx);
    orchestrated_sweep(&mut orch, half.x(), &probe, scale.epochs(), "DCSNet")
}

/// Loads the figure-sweep dataset for a kind at a scale.
#[must_use]
pub fn sweep_dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    match kind {
        DatasetKind::MnistLike => orco_datasets::mnist_like::generate(scale.train_n(kind), 0),
        DatasetKind::GtsrbLike => orco_datasets::gtsrb_like::generate(scale.train_n(kind), 0),
    }
}
