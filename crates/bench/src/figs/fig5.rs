//! Figure 5 — follow-up classifier performance on reconstructed data.
//!
//! The paper's second objective: reconstructions should be *good training
//! data* for downstream DL applications. A 2-conv-layer CNN is trained on
//! data reconstructed by OrcoDCS and by DCSNet given 30/50/70% of the
//! training corpus; test accuracy and loss are reported at epochs
//! 2, 4, 6, 8, 10. OrcoDCS's advantage comes from (i) full-stream online
//! access and (ii) the Gaussian latent noise acting as implicit data
//! augmentation in reconstruction space.

use orco_baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orco_baselines::Dcsnet;
use orco_classifier::{Cnn, TrainConfig};
use orco_datasets::{gtsrb_like, mnist_like, Dataset, DatasetKind};
use orco_tensor::{stats, OrcoRng};
use orcodcs::Codec;

use crate::harness::{banner, print_series_table, Scale, Series};

/// Classifier outcome for one reconstruction source on one dataset.
#[derive(Debug)]
pub struct Fig5Row {
    /// Source of the reconstructed training data.
    pub source: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// Final test accuracy.
    pub final_accuracy: f32,
    /// Final test loss.
    pub final_test_loss: f32,
}

/// Reconstruction quality of one backend over the comparison probe — every
/// backend measured through the same `Codec` interface.
#[derive(Debug)]
pub struct CodecQuality {
    /// The backend's `Codec::name`.
    pub codec: &'static str,
    /// Mean PSNR (dB) over the probe images.
    pub mean_psnr_db: f32,
}

fn classifier_curve(
    label: &str,
    train: &Dataset,
    test: &Dataset,
    scale: Scale,
    acc_series: &mut Vec<Series>,
    loss_series: &mut Vec<Series>,
) -> (f32, f32) {
    let mut rng = OrcoRng::from_label("fig5-classifier", 0);
    let mut cnn = Cnn::new(train.kind(), &mut rng);
    let curve = cnn.train_epochs(
        train,
        test,
        &TrainConfig { epochs: scale.classifier_epochs(), batch_size: 32, learning_rate: 2e-3 },
        &mut rng,
    );
    acc_series.push(Series::new(
        label,
        curve.iter().map(|p| (p.epoch as f64, f64::from(p.test_accuracy))).collect(),
    ));
    loss_series.push(Series::new(
        label,
        curve.iter().map(|p| (p.epoch as f64, f64::from(p.test_loss))).collect(),
    ));
    let last = curve.last().expect("at least one epoch");
    (last.test_accuracy, last.test_loss)
}

/// Runs one dataset's classifier comparison. Returns the rows plus the
/// trained OrcoDCS and DCSNet-50% experiments so the four-backend quality
/// probe can reuse them instead of retraining.
fn run_kind(
    kind: DatasetKind,
    scale: Scale,
) -> (Vec<Fig5Row>, orcodcs::Experiment, Option<orcodcs::Experiment>) {
    let (train, test) = match kind {
        DatasetKind::MnistLike => (
            mnist_like::generate(scale.train_n(kind), 0),
            mnist_like::generate(scale.test_n(kind), 1),
        ),
        DatasetKind::GtsrbLike => (
            gtsrb_like::generate(scale.train_n(kind), 0),
            gtsrb_like::generate(scale.test_n(kind), 1),
        ),
    };

    // OrcoDCS reconstructions.
    let cfg = super::orco_config(kind, scale);
    let (mut orco, _) =
        super::local_experiment(&train, Box::new(super::orco_codec(&cfg)), scale.epochs(), 1.0);
    let orco_train = super::reconstruct_dataset(orco.codec_mut(), &train);
    let orco_test = super::reconstruct_dataset(orco.codec_mut(), &test);

    let mut acc_series = Vec::new();
    let mut loss_series = Vec::new();
    let mut rows = Vec::new();

    // DCSNet at 30/50/70% data access; the 50% experiment is kept for the
    // backend-quality probe.
    let mut dcs50 = None;
    for fraction in [0.3f32, 0.5, 0.7] {
        let (mut dcs, _) = super::local_experiment(
            &train,
            Box::new(Dcsnet::new(kind, 0)),
            scale.epochs(),
            fraction,
        );
        let dcs_train = super::reconstruct_dataset(dcs.codec_mut(), &train);
        let dcs_test = super::reconstruct_dataset(dcs.codec_mut(), &test);
        let label = format!("DCSNet-{}%", (fraction * 100.0) as u32);
        let (acc, loss) = classifier_curve(
            &label,
            &dcs_train,
            &dcs_test,
            scale,
            &mut acc_series,
            &mut loss_series,
        );
        rows.push(Fig5Row { source: label, kind, final_accuracy: acc, final_test_loss: loss });
        if (fraction - 0.5).abs() < f32::EPSILON {
            dcs50 = Some(dcs);
        }
    }

    let (acc, loss) = classifier_curve(
        "OrcoDCS",
        &orco_train,
        &orco_test,
        scale,
        &mut acc_series,
        &mut loss_series,
    );
    rows.push(Fig5Row {
        source: "OrcoDCS".into(),
        kind,
        final_accuracy: acc,
        final_test_loss: loss,
    });

    println!("\n--- {kind:?}: classifier on reconstructed data ---");
    print_series_table("epoch", "test accuracy", &acc_series);
    print_series_table("epoch", "test loss", &loss_series);
    (rows, orco, dcs50)
}

/// Reconstruction quality of **all four backends** — OrcoDCS autoencoder,
/// DCSNet, DCT+ISTA, DCT+OMP — over one probe of MNIST-like digits, every
/// backend driven through the same object-safe [`Codec`] interface.
/// `orco` and `dcs` are the already-trained experiments from the
/// classifier comparison (retraining them here would double the figure's
/// cost); the classical stacks are training-free.
pub fn codec_comparison(
    scale: Scale,
    orco: &mut dyn Codec,
    dcs: &mut dyn Codec,
) -> Vec<CodecQuality> {
    let kind = DatasetKind::MnistLike;
    let train = mnist_like::generate(scale.train_n(kind), 0);
    let probe_idx: Vec<usize> = (0..train.len().min(6)).collect();
    let probe = train.x().select_rows(&probe_idx);

    // Classical CS at the paper's MNIST latent size (m = M = 128
    // measurements); ISTA gets a smaller iteration budget at quick scale.
    let ista_iters = if scale == Scale::Quick { 120 } else { 300 };
    let m = kind.paper_latent_dim();
    let mut ista = ClassicalCodec::new(
        kind,
        m,
        CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: ista_iters, tol: 1e-6 }),
        0,
    );
    let mut omp = ClassicalCodec::new(kind, m, CsSolver::Omp { sparsity: m / 4 }, 0);

    let mut backends: Vec<&mut dyn Codec> = vec![orco, dcs, &mut ista, &mut omp];
    println!("\n--- {kind:?}: all four backends through the `Codec` interface ---");
    println!("  {:<14} {:>12} {:>16}", "backend", "PSNR (dB)", "bytes/frame");
    // One codes/recon buffer pair serves every backend: the batched API
    // reshapes them in place per codec, so the probe sweep allocates once.
    let mut codes = orco_tensor::Matrix::zeros(0, 0);
    let mut recon = orco_tensor::Matrix::zeros(0, 0);
    backends
        .iter_mut()
        .map(|codec| {
            codec.encode_batch(probe.as_view(), &mut codes).expect("probe frames fit the codec");
            codec.decode_batch(codes.as_view(), &mut recon).expect("codes fit the codec");
            let psnrs = stats::psnr_rows(&probe, &recon, 1.0);
            let finite: Vec<f32> = psnrs.into_iter().filter(|p| p.is_finite()).collect();
            let mean_psnr_db = stats::mean(&finite);
            println!(
                "  {:<14} {:>12.3} {:>16}",
                codec.name(),
                mean_psnr_db,
                codec.bytes_per_frame()
            );
            CodecQuality { codec: codec.name(), mean_psnr_db }
        })
        .collect()
}

/// Runs the Figure 5 experiment: the classifier comparison of the paper,
/// plus the four-backend reconstruction-quality probe (reusing the MNIST
/// experiments trained for the classifier rows).
pub fn run(scale: Scale) -> (Vec<Fig5Row>, Vec<CodecQuality>) {
    banner("Figure 5", "Classifier accuracy/loss on reconstructed data");
    let (mut rows, mut orco, dcs50) = run_kind(DatasetKind::MnistLike, scale);
    let (gtsrb_rows, _, _) = run_kind(DatasetKind::GtsrbLike, scale);
    rows.extend(gtsrb_rows);
    let mut dcs50 = dcs50.expect("the 50% fraction is always swept");
    let quality = codec_comparison(scale, orco.codec_mut(), dcs50.codec_mut());
    (rows, quality)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orcodcs_classifier_competitive() {
        let (rows, quality) = run(Scale::Quick);
        assert_eq!(rows.len(), 8);
        // All four backends ran through the one Codec interface.
        let names: Vec<&str> = quality.iter().map(|q| q.codec).collect();
        assert_eq!(names, ["OrcoDCS", "DCSNet", "DCT+ISTA", "DCT+OMP"]);
        assert!(quality.iter().all(|q| q.mean_psnr_db.is_finite()));
        // Within each dataset, OrcoDCS (last row of each 4) must beat the
        // weakest DCSNet fraction. Quick-scale test sets are tiny (tens of
        // samples over up to 43 classes), so allow a slack of two
        // test-sample quanta — below that the accuracies are sampling
        // noise, not a method ordering.
        for group in rows.chunks(4) {
            let orco = group[3].final_accuracy;
            let dcs30 = group[0].final_accuracy;
            let quantum = 1.0 / Scale::Quick.test_n(group[0].kind) as f32;
            assert!(
                orco >= dcs30 * 0.8 - 2.0 * quantum,
                "{:?}: OrcoDCS {} vs DCSNet-30% {}",
                group[0].kind,
                orco,
                dcs30
            );
        }
    }
}
