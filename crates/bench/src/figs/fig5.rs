//! Figure 5 — follow-up classifier performance on reconstructed data.
//!
//! The paper's second objective: reconstructions should be *good training
//! data* for downstream DL applications. A 2-conv-layer CNN is trained on
//! data reconstructed by OrcoDCS and by DCSNet given 30/50/70% of the
//! training corpus; test accuracy and loss are reported at epochs
//! 2, 4, 6, 8, 10. OrcoDCS's advantage comes from (i) full-stream online
//! access and (ii) the Gaussian latent noise acting as implicit data
//! augmentation in reconstruction space.

use orco_classifier::{Cnn, TrainConfig};
use orco_datasets::{gtsrb_like, mnist_like, Dataset, DatasetKind};
use orco_tensor::OrcoRng;

use crate::harness::{banner, print_series_table, Scale, Series};

/// Classifier outcome for one reconstruction source on one dataset.
#[derive(Debug)]
pub struct Fig5Row {
    /// Source of the reconstructed training data.
    pub source: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// Final test accuracy.
    pub final_accuracy: f32,
    /// Final test loss.
    pub final_test_loss: f32,
}

fn classifier_curve(
    label: &str,
    train: &Dataset,
    test: &Dataset,
    scale: Scale,
    acc_series: &mut Vec<Series>,
    loss_series: &mut Vec<Series>,
) -> (f32, f32) {
    let mut rng = OrcoRng::from_label("fig5-classifier", 0);
    let mut cnn = Cnn::new(train.kind(), &mut rng);
    let curve = cnn.train_epochs(
        train,
        test,
        &TrainConfig { epochs: scale.classifier_epochs(), batch_size: 32, learning_rate: 2e-3 },
        &mut rng,
    );
    acc_series.push(Series::new(
        label,
        curve.iter().map(|p| (p.epoch as f64, f64::from(p.test_accuracy))).collect(),
    ));
    loss_series.push(Series::new(
        label,
        curve.iter().map(|p| (p.epoch as f64, f64::from(p.test_loss))).collect(),
    ));
    let last = curve.last().expect("at least one epoch");
    (last.test_accuracy, last.test_loss)
}

fn run_kind(kind: DatasetKind, scale: Scale) -> Vec<Fig5Row> {
    let (train, test) = match kind {
        DatasetKind::MnistLike => (
            mnist_like::generate(scale.train_n(kind), 0),
            mnist_like::generate(scale.test_n(kind), 1),
        ),
        DatasetKind::GtsrbLike => (
            gtsrb_like::generate(scale.train_n(kind), 0),
            gtsrb_like::generate(scale.test_n(kind), 1),
        ),
    };

    // OrcoDCS reconstructions.
    let cfg = super::orco_config(kind, scale);
    let mut orco = super::train_orcodcs_local(&train, &cfg);
    let orco_train = super::reconstruct_dataset(&mut orco, &train);
    let orco_test = super::reconstruct_dataset(&mut orco, &test);

    let mut acc_series = Vec::new();
    let mut loss_series = Vec::new();
    let mut rows = Vec::new();

    // DCSNet at 30/50/70% data access.
    for fraction in [0.3f32, 0.5, 0.7] {
        let mut dcs = super::dcsnet_offline(&train, fraction, scale);
        let dcs_train = super::reconstruct_dataset(&mut dcs.model, &train);
        let dcs_test = super::reconstruct_dataset(&mut dcs.model, &test);
        let label = format!("DCSNet-{}%", (fraction * 100.0) as u32);
        let (acc, loss) = classifier_curve(
            &label,
            &dcs_train,
            &dcs_test,
            scale,
            &mut acc_series,
            &mut loss_series,
        );
        rows.push(Fig5Row { source: label, kind, final_accuracy: acc, final_test_loss: loss });
    }

    let (acc, loss) = classifier_curve(
        "OrcoDCS",
        &orco_train,
        &orco_test,
        scale,
        &mut acc_series,
        &mut loss_series,
    );
    rows.push(Fig5Row {
        source: "OrcoDCS".into(),
        kind,
        final_accuracy: acc,
        final_test_loss: loss,
    });

    println!("\n--- {kind:?}: classifier on reconstructed data ---");
    print_series_table("epoch", "test accuracy", &acc_series);
    print_series_table("epoch", "test loss", &loss_series);
    rows
}

/// Runs the Figure 5 experiment.
pub fn run(scale: Scale) -> Vec<Fig5Row> {
    banner("Figure 5", "Classifier accuracy/loss on reconstructed data");
    let mut rows = run_kind(DatasetKind::MnistLike, scale);
    rows.extend(run_kind(DatasetKind::GtsrbLike, scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orcodcs_classifier_competitive() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 8);
        // Within each dataset, OrcoDCS (last row of each 4) must beat the
        // weakest DCSNet fraction. Quick-scale test sets are tiny (tens of
        // samples over up to 43 classes), so allow a slack of two
        // test-sample quanta — below that the accuracies are sampling
        // noise, not a method ordering.
        for group in rows.chunks(4) {
            let orco = group[3].final_accuracy;
            let dcs30 = group[0].final_accuracy;
            let quantum = 1.0 / Scale::Quick.test_n(group[0].kind) as f32;
            assert!(
                orco >= dcs30 * 0.8 - 2.0 * quantum,
                "{:?}: OrcoDCS {} vs DCSNet-30% {}",
                group[0].kind,
                orco,
                dcs30
            );
        }
    }
}
