//! Figure 6 — sensitivity to the latent-vector dimension.
//!
//! OrcoDCS with M ∈ {256, 512, 1024} versus DCSNet, loss over epochs. The
//! paper's findings to reproduce: OrcoDCS beats DCSNet at every dimension,
//! and larger latents give *diminishing returns* (more capacity, but also
//! more bytes per round and more to overfit).

use orco_datasets::DatasetKind;

use crate::harness::{banner, print_series_table, Scale, Series};

/// Outcome of one sweep point.
#[derive(Debug)]
pub struct Fig6Row {
    /// Series label.
    pub label: String,
    /// Dataset.
    pub kind: DatasetKind,
    /// Final epoch's mean loss.
    pub final_loss: f32,
    /// Total simulated time, seconds.
    pub total_time_s: f64,
}

fn run_kind(kind: DatasetKind, scale: Scale) -> Vec<Fig6Row> {
    let dataset = super::sweep_dataset(kind, scale);
    let dims = [256usize, 512, 1024];
    let mut curves = Vec::new();

    for m in dims {
        let cfg = super::orco_config(kind, scale).with_latent_dim(m);
        let codec = Box::new(super::orco_codec(&cfg));
        let report = super::orchestrated_report(&dataset, codec, scale.epochs(), 1.0);
        curves.push((format!("OrcoDCS-{m}"), report));
    }
    curves.push(("DCSNet".to_string(), super::dcsnet_orchestrated(&dataset, scale)));

    let series: Vec<Series> =
        curves.iter().map(|(label, r)| super::probe_series(r, label.clone())).collect();
    let rows: Vec<Fig6Row> = curves
        .iter()
        .map(|(label, r)| Fig6Row {
            label: label.clone(),
            kind,
            final_loss: r.final_probe_l2(),
            total_time_s: r.total_time_s(),
        })
        .collect();

    println!("\n--- {kind:?}: probe L2 vs epochs across latent dimensions ---");
    print_series_table("epoch", "probe L2", &series);
    for r in &rows {
        println!(
            "  {:<14} final loss {:.6}  simulated time {:.1}s",
            r.label, r.final_loss, r.total_time_s
        );
    }
    rows
}

/// Runs the Figure 6 experiment.
pub fn run(scale: Scale) -> Vec<Fig6Row> {
    banner("Figure 6", "Impact of the latent-vector dimension");
    let mut rows = run_kind(DatasetKind::MnistLike, scale);
    rows.extend(run_kind(DatasetKind::GtsrbLike, scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_latents_cost_more_time() {
        let rows = run(Scale::Quick);
        // Within each dataset group (4 rows), OrcoDCS-1024 pays more
        // simulated time than OrcoDCS-256 (more uplink bytes + compute).
        for group in rows.chunks(4) {
            assert!(
                group[2].total_time_s > group[0].total_time_s,
                "{:?}: 1024 ({}) should cost more than 256 ({})",
                group[0].kind,
                group[2].total_time_s,
                group[0].total_time_s,
            );
            // All losses finite.
            assert!(group.iter().all(|r| r.final_loss.is_finite()));
        }
    }
}
