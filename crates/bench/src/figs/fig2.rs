//! Figure 2 — reconstruction quality of OrcoDCS vs DCSNet.
//!
//! The paper shows three MNIST digits and three GTSRB signs reconstructed
//! by both frameworks; OrcoDCS's outputs are "much clearer and more
//! similar to the original images". This harness reproduces the comparison
//! quantitatively (per-image PSNR and global-SSIM) and qualitatively
//! (ASCII previews of original / OrcoDCS / DCSNet for the same samples).

use orco_baselines::Dcsnet;
use orco_datasets::DatasetKind;
use orco_tensor::stats;

use crate::harness::{ascii_side_by_side, banner, luminance, Scale};

/// Quality numbers for one dataset.
#[derive(Debug)]
pub struct Fig2Result {
    /// Dataset evaluated.
    pub kind: DatasetKind,
    /// Mean PSNR (dB) of OrcoDCS reconstructions over the probe set.
    pub orco_psnr_db: f32,
    /// Mean PSNR (dB) of DCSNet-50% reconstructions.
    pub dcsnet_psnr_db: f32,
    /// Mean global SSIM of OrcoDCS reconstructions.
    pub orco_ssim: f32,
    /// Mean global SSIM of DCSNet-50% reconstructions.
    pub dcsnet_ssim: f32,
}

fn run_kind(kind: DatasetKind, scale: Scale, show_art: bool) -> Fig2Result {
    let dataset = super::sweep_dataset(kind, scale);

    // OrcoDCS: full-stream access; paper's latent dims. DCSNet: offline,
    // 50% of the data, fixed 1024-dim latent. Both train through the same
    // pipeline in local (no-deployment) mode — this figure only needs the
    // trained codecs.
    let cfg = super::orco_config(kind, scale);
    let (mut orco, _) =
        super::local_experiment(&dataset, Box::new(super::orco_codec(&cfg)), scale.epochs(), 1.0);
    let (mut dcs, _) =
        super::local_experiment(&dataset, Box::new(Dcsnet::new(kind, 0)), scale.epochs(), 0.5);

    let probe: Vec<usize> = (0..dataset.len().min(24)).collect();
    let probe_x = dataset.x().select_rows(&probe);
    let orco_recon = orco.codec_mut().reconstruct(&probe_x).expect("codec reconstructs");
    let dcs_recon = dcs.codec_mut().reconstruct(&probe_x).expect("codec reconstructs");

    let mean_finite = |v: Vec<f32>| -> f32 {
        let f: Vec<f32> = v.into_iter().filter(|p| p.is_finite()).collect();
        stats::mean(&f)
    };
    let orco_psnr = mean_finite(stats::psnr_rows(&probe_x, &orco_recon, 1.0));
    let dcs_psnr = mean_finite(stats::psnr_rows(&probe_x, &dcs_recon, 1.0));
    let ssim_mean = |recon: &orco_tensor::Matrix| -> f32 {
        let vals: Vec<f32> = probe_x
            .iter_rows()
            .zip(recon.iter_rows())
            .map(|(a, b)| stats::ssim_global(a, b, 1.0))
            .collect();
        stats::mean(&vals)
    };
    let orco_ssim = ssim_mean(&orco_recon);
    let dcs_ssim = ssim_mean(&dcs_recon);

    println!("\n--- {kind:?}: per-image quality over {} probe images ---", probe.len());
    println!("  {:<14} {:>12} {:>12}", "framework", "PSNR (dB)", "SSIM");
    println!("  {:<14} {:>12.3} {:>12.4}", "OrcoDCS", orco_psnr, orco_ssim);
    println!("  {:<14} {:>12.3} {:>12.4}", "DCSNet-50%", dcs_psnr, dcs_ssim);

    if show_art {
        let (c, h, w) = (kind.channels(), kind.height(), kind.width());
        println!("\n  Previews (3 samples, as in the paper's Fig. 2):");
        for &i in probe.iter().take(3) {
            let orig = luminance(dataset.sample(i), c, h, w);
            let o = luminance(orco_recon.row(i), c, h, w);
            let d = luminance(dcs_recon.row(i), c, h, w);
            println!(
                "{}",
                ascii_side_by_side(&["Original", "OrcoDCS", "DCSNet"], &[&orig, &o, &d], h, w)
            );
        }
    }

    Fig2Result {
        kind,
        orco_psnr_db: orco_psnr,
        dcsnet_psnr_db: dcs_psnr,
        orco_ssim,
        dcsnet_ssim: dcs_ssim,
    }
}

/// Runs the Figure 2 experiment at the given scale; returns per-dataset
/// quality so callers (tests, EXPERIMENTS.md generation) can assert on it.
pub fn run(scale: Scale) -> Vec<Fig2Result> {
    banner("Figure 2", "Reconstruction quality: OrcoDCS vs DCSNet (50% data)");
    let show_art = scale != Scale::Quick;
    vec![
        run_kind(DatasetKind::MnistLike, scale, show_art),
        run_kind(DatasetKind::GtsrbLike, scale, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_finite_quality() {
        let results = run(Scale::Quick);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.orco_psnr_db.is_finite());
            assert!(r.dcsnet_psnr_db.is_finite());
            assert!(r.orco_ssim.is_finite());
        }
    }
}
