//! Fleet-throughput bench: frames/s end to end through a real TCP fleet
//! — directory, N gateways with heartbeating agents, and a
//! [`FleetClient`] that bootstraps from the directory and routes every
//! push to the rendezvous owner — across gateway counts.
//!
//! This measures the cost of the fleet layer itself (directory
//! bootstrap, owner computation, per-gateway TCP connections), not
//! parallel speedup: on 1-core CI the gateways time-slice one core, so
//! expect flat (or slightly declining) numbers as the fleet grows — the
//! JSON's `note` field says so. Results land in
//! `BENCH_fleet_throughput.json` (override with `ORCO_FLEET_BENCH_JSON`);
//! CI runs quick mode and uploads the JSON.
//!
//! Run with: `cargo bench -p orco_bench --bench fleet_throughput`
//! (`ORCO_SCALE=quick` shrinks the measurement for CI.)

// Benches time real work; wall-clock reads are the point (benches/ is
// likewise exempt from orco-lint's wall-clock rule).
#![allow(clippy::disallowed_methods)]
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use orco_fleet::{AgentConfig, Directory, DirectoryConfig, FleetClient, GatewayAgent};
use orco_serve::{Clock, Gateway, GatewayConfig, PushOutcome, TcpServer};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

/// Clusters driven round-robin — enough that every gateway in the
/// largest fleet owns a few.
const CLUSTERS: [u64; 8] = [3, 19, 42, 77, 101, 230, 555, 901];
/// Rows per push (the batched data plane's sweet spot is multi-row).
const WINDOW: usize = 8;

struct Row {
    gateways: usize,
    frames_per_s: f64,
}

/// A running fleet: directory + `n` gateways, all on ephemeral ports,
/// agents heartbeating.
struct Fleet {
    directory_addr: String,
    dir_server: TcpServer,
    gateways: Vec<Arc<Gateway>>,
    gw_servers: Vec<TcpServer>,
    agents: Vec<GatewayAgent>,
}

fn spawn_fleet(n: usize) -> Fleet {
    let directory = Arc::new(
        Directory::new(
            DirectoryConfig {
                // Generous: an eviction mid-measurement would corrupt
                // the number with failover work.
                heartbeat_timeout: Duration::from_secs(30),
                ..DirectoryConfig::default()
            },
            Clock::real(),
        )
        .expect("valid directory"),
    );
    let dir_server = TcpServer::spawn_service(
        Arc::clone(&directory) as Arc<dyn orco_serve::Service>,
        "127.0.0.1:0",
    )
    .expect("directory binds");
    let directory_addr = dir_server.local_addr().to_string();

    let ae_cfg = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
        .with_latent_dim(orco_datasets::DatasetKind::MnistLike.paper_latent_dim());
    let mut gateways = Vec::new();
    let mut gw_servers = Vec::new();
    let mut agents = Vec::new();
    for id in 1..=n as u64 {
        let cfg = ae_cfg.clone();
        let gw = Arc::new(
            Gateway::new(GatewayConfig::default(), Clock::real(), move |_| {
                Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid config")) as Box<dyn Codec>
            })
            .expect("valid gateway"),
        );
        let server = TcpServer::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("gateway binds");
        let agent = GatewayAgent::spawn(
            Arc::clone(&gw),
            AgentConfig {
                gateway_id: id,
                advertise_addr: server.local_addr().to_string(),
                directory_addr: directory_addr.clone(),
                auth_secret: None,
                heartbeat_interval: Duration::from_millis(500),
            },
        )
        .expect("agent registers");
        gateways.push(gw);
        gw_servers.push(server);
        agents.push(agent);
    }
    Fleet { directory_addr, dir_server, gateways, gw_servers, agents }
}

impl Fleet {
    fn shutdown(self) {
        let mut control =
            FleetClient::connect(&self.directory_addr, u64::MAX, None).expect("control connects");
        for member in control.members().to_vec() {
            control.shutdown_gateway(&member.addr).expect("gateway shutdown");
        }
        control.shutdown_directory().expect("directory shutdown");
        for s in self.gw_servers {
            s.join();
        }
        for a in self.agents {
            a.join();
        }
        self.dir_server.join();
        drop(self.gateways);
    }
}

/// Serves `total` frames through an `n`-gateway fleet (push `WINDOW`
/// rows per message to the rendezvous owner, drain decoded rows from
/// where they were accepted) and returns wall-clock frames/s.
fn run(n: usize, total: usize) -> f64 {
    let fleet = spawn_fleet(n);
    let mut client = FleetClient::connect(&fleet.directory_addr, 1, None).expect("connects");
    let frame_dim = {
        let owner = client.owner_addr(CLUSTERS[0]).expect("owner");
        client.info_of(&owner).expect("hello").frame_dim as usize
    };
    let mut rng = OrcoRng::from_seed_u64(7);
    let frames = Matrix::from_fn(256, frame_dim, |_, _| rng.uniform(0.0, 1.0));

    // cluster -> (accepting addr, rows awaiting drain)
    let mut outstanding: HashMap<u64, (String, usize)> = HashMap::new();
    let mut served = 0usize;
    let mut pushed = 0usize;
    let mut since_drain = 0usize;
    let start = Instant::now();
    while pushed < total {
        let cluster = CLUSTERS[(pushed / WINDOW) % CLUSTERS.len()];
        let lo = pushed % (frames.rows() - WINDOW);
        match client.push(cluster, frames.view_rows(lo..lo + WINDOW)).expect("push") {
            (PushOutcome::Accepted(got), addr) => {
                let e = outstanding.entry(cluster).or_insert_with(|| (addr.clone(), 0));
                e.0 = addr;
                e.1 += got as usize;
                pushed += got as usize;
                since_drain += got as usize;
            }
            (PushOutcome::Busy { .. }, _) => {
                served += drain(&mut client, &mut outstanding);
                since_drain = 0;
            }
            (PushOutcome::Redirected { .. }, _) => unreachable!("FleetClient consumes redirects"),
        }
        // Keep the in-flight budget comfortably clear of Busy.
        if since_drain >= 1024 {
            served += drain(&mut client, &mut outstanding);
            since_drain = 0;
        }
    }
    while served < total {
        served += drain(&mut client, &mut outstanding);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(served, total, "every pushed frame must come back decoded");
    fleet.shutdown();
    total as f64 / elapsed
}

fn drain(client: &mut FleetClient, outstanding: &mut HashMap<u64, (String, usize)>) -> usize {
    let mut got = 0;
    for (&cluster, (addr, owed)) in outstanding.iter_mut() {
        while *owed > 0 {
            let rows = client.pull_from(addr, cluster, WINDOW as u32).expect("pull").rows();
            if rows == 0 {
                // Micro-batch still in flight; spin on the next cluster.
                break;
            }
            *owed -= rows;
            got += rows;
        }
    }
    got
}

fn main() {
    // The published numbers are per-core; pin the kernels to one thread.
    orco_tensor::parallel::set_threads(1);
    let quick = std::env::var("ORCO_SCALE").as_deref() == Ok("quick");
    let total = if quick { 768 } else { 4096 };
    let gateway_counts = [1usize, 2, 3];

    let mut rows = Vec::new();
    for &n in &gateway_counts {
        // Warm-up grows every workspace to size (fresh fleet, same code
        // paths).
        let _ = run(n, total.min(128));
        let frames_per_s = run(n, total);
        rows.push(Row { gateways: n, frames_per_s });
    }

    println!(
        "fleet_throughput (TCP, 1 kernel thread, {} frames, {} scale)",
        total,
        if quick { "quick" } else { "default" }
    );
    println!("{:<10} {:>14}", "gateways", "frames/s");
    for r in &rows {
        println!("{:<10} {:>14.1}", r.gateways, r.frames_per_s);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"fleet_throughput\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "quick" } else { "default" });
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(
        json,
        "  \"note\": \"single-core run: all gateways time-slice one core, so the gateway-count \
         sweep measures fleet-layer overhead (directory bootstrap, owner routing, extra TCP \
         connections), not parallel scaling; expect flat numbers on 1-core CI\","
    );
    let _ = writeln!(json, "  \"frames\": {total},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"gateways\": {}, \"frames_per_s\": {:.2}}}{comma}",
            r.gateways, r.frames_per_s
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let path = std::env::var("ORCO_FLEET_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../BENCH_fleet_throughput.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&path, &json).expect("bench JSON is writable");
    println!("wrote {path}");
}
