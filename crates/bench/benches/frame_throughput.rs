//! Data-plane throughput bench: frames/s and MB/s per codec for the
//! batched `encode_batch`/`decode_batch` API at batch sizes 1/16/64/256,
//! against the per-frame `encode_frame` loop it replaced.
//!
//! This is the perf stake of the batched-data-plane redesign: on one core
//! the blocked-GEMM batch encode must beat the per-frame matvec loop by
//! ≥ 1.5× at batch 64 for the OrcoDCS autoencoder (the sensing-side cost
//! the paper's Figs. 5–9 comparisons lean on). Results are printed as a
//! table and appended-free-written as a JSON point
//! (`BENCH_frame_throughput.json`, override with `ORCO_BENCH_JSON`) to
//! seed the benchmark trajectory; CI uploads the quick-mode JSON as a
//! build artifact.
//!
//! Run with: `cargo bench --bench frame_throughput`
//! (`ORCO_SCALE=quick` shrinks the measurement budget for CI.)

// Benches time real work; wall-clock reads are the point (benches/ is
// likewise exempt from orco-lint's wall-clock rule).
#![allow(clippy::disallowed_methods)]
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use orco_baselines::cs::{ClassicalCodec, CsSolver, IstaConfig};
use orco_baselines::Dcsnet;
use orco_datasets::{mnist_like, DatasetKind};
use orco_tensor::Matrix;
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];
/// Batch size of the headline batched-vs-per-frame comparison.
const PIVOT_BATCH: usize = 64;

struct Row {
    codec: &'static str,
    mode: &'static str,
    batch: usize,
    frames_per_s: f64,
    mb_per_s: f64,
}

/// Runs `f` repeatedly for at least `budget` (after one warm-up call) and
/// returns the mean seconds per call.
fn time_per_call(budget: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also grows the reused buffers to size)
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return elapsed.as_secs_f64() / iters as f64;
        }
    }
}

fn throughput(codec: &mut dyn Codec, frames: &Matrix, budget: Duration, rows: &mut Vec<Row>) {
    let name = codec.name();
    let frame_mb = (codec.input_dim() * 4) as f64 / 1e6;
    let mut codes = Matrix::zeros(0, 0);
    for batch in BATCH_SIZES {
        let view = frames.view_rows(0..batch);
        let secs = time_per_call(budget, || {
            codec.encode_batch(view, &mut codes).expect("frames fit the codec");
        });
        let frames_per_s = batch as f64 / secs;
        rows.push(Row {
            codec: name,
            mode: "encode_batch",
            batch,
            frames_per_s,
            mb_per_s: frames_per_s * frame_mb,
        });
    }
    // The per-frame loop the batch API replaced, at the pivot batch size.
    let secs = time_per_call(budget, || {
        for r in 0..PIVOT_BATCH {
            let _ = codec.encode_frame(frames.row(r)).expect("frame width is valid");
        }
    });
    let frames_per_s = PIVOT_BATCH as f64 / secs;
    rows.push(Row {
        codec: name,
        mode: "encode_per_frame",
        batch: PIVOT_BATCH,
        frames_per_s,
        mb_per_s: frames_per_s * frame_mb,
    });
}

fn main() {
    // The acceptance claim is per-core: pin the kernels to one thread so
    // the numbers measure the API, not the machine.
    orco_tensor::parallel::set_threads(1);
    let quick = std::env::var("ORCO_SCALE").as_deref() == Ok("quick");
    let budget = if quick { Duration::from_millis(120) } else { Duration::from_millis(400) };

    let kind = DatasetKind::MnistLike;
    let frames = mnist_like::generate(*BATCH_SIZES.iter().max().unwrap(), 0);

    let mut rows = Vec::new();
    let orco_cfg = OrcoConfig::for_dataset(kind).with_latent_dim(kind.paper_latent_dim());
    let mut orco = AsymmetricAutoencoder::new(&orco_cfg).expect("valid config");
    throughput(&mut orco, frames.x(), budget, &mut rows);
    let mut dcsnet = Dcsnet::new(kind, 0);
    throughput(&mut dcsnet, frames.x(), budget, &mut rows);
    let mut classical = ClassicalCodec::new(
        kind,
        kind.paper_latent_dim(),
        CsSolver::Ista(IstaConfig { lambda: 0.01, max_iters: 60, tol: 1e-6 }),
        0,
    );
    throughput(&mut classical, frames.x(), budget, &mut rows);

    println!("frame_throughput (1 thread, {} scale)", if quick { "quick" } else { "default" });
    println!("{:<10} {:<18} {:>6} {:>14} {:>10}", "codec", "mode", "batch", "frames/s", "MB/s");
    for r in &rows {
        println!(
            "{:<10} {:<18} {:>6} {:>14.1} {:>10.2}",
            r.codec, r.mode, r.batch, r.frames_per_s, r.mb_per_s
        );
    }

    let speedup = |codec: &str| -> f64 {
        let batch = rows
            .iter()
            .find(|r| r.codec == codec && r.mode == "encode_batch" && r.batch == PIVOT_BATCH)
            .expect("pivot batch row exists");
        let per_frame = rows
            .iter()
            .find(|r| r.codec == codec && r.mode == "encode_per_frame")
            .expect("per-frame row exists");
        batch.frames_per_s / per_frame.frames_per_s
    };
    let ae_speedup = speedup("OrcoDCS");
    println!("\nbatch-{PIVOT_BATCH} encode speedup vs per-frame loop:");
    for codec in ["OrcoDCS", "DCSNet", "DCT+ISTA"] {
        println!("  {codec:<10} {:.2}x", speedup(codec));
    }

    // One JSON point for the benchmark trajectory.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"frame_throughput\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "quick" } else { "default" });
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"pivot_batch\": {PIVOT_BATCH},");
    let _ =
        writeln!(json, "  \"ae_batch{PIVOT_BATCH}_encode_speedup_vs_per_frame\": {ae_speedup:.4},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"codec\": \"{}\", \"mode\": \"{}\", \"batch\": {}, \"frames_per_s\": {:.2}, \"mb_per_s\": {:.4}}}{comma}",
            r.codec, r.mode, r.batch, r.frames_per_s, r.mb_per_s
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    // Default to the workspace root (cargo runs benches with the package
    // dir as CWD), so the trajectory file lands next to ROADMAP.md.
    let path = std::env::var("ORCO_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../BENCH_frame_throughput.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&path, &json).expect("bench JSON is writable");
    println!("\nwrote {path}");

    assert!(
        ae_speedup >= 1.0,
        "batched AE encode slower than the per-frame loop ({ae_speedup:.2}x)"
    );
}
