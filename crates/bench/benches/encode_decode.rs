//! Component bench for Figures 3 and 6: encoder/decoder forward cost as a
//! function of the latent dimension M. The latent dimension is OrcoDCS's
//! central tuning knob — this bench quantifies the compute side of the
//! trade-off the paper sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use orco_datasets::DatasetKind;
use orco_tensor::Matrix;
use orcodcs::{AsymmetricAutoencoder, OrcoConfig};

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_decode");
    group.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));

    let batch = Matrix::from_fn(32, 784, |r, ci| ((r * 31 + ci) as f32 * 0.01).sin().abs());
    for m in [128usize, 512, 1024] {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(m);
        let mut ae = AsymmetricAutoencoder::new(&cfg).expect("valid config");
        group.bench_with_input(BenchmarkId::new("encode_batch32", m), &m, |b, _| {
            b.iter(|| ae.encode(&batch));
        });
        let latent = ae.encode(&batch);
        group.bench_with_input(BenchmarkId::new("decode_batch32", m), &m, |b, _| {
            b.iter(|| ae.decode(&latent));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode_decode);
criterion_main!(benches);
