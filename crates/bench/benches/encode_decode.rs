//! Component bench for Figures 3 and 6: encoder/decoder forward cost as a
//! function of the latent dimension M. The latent dimension is OrcoDCS's
//! central tuning knob — this bench quantifies the compute side of the
//! trade-off the paper sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use orco_datasets::DatasetKind;
use orco_tensor::Matrix;
use orcodcs::{AsymmetricAutoencoder, OrcoConfig};

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_decode");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    let batch = Matrix::from_fn(32, 784, |r, ci| ((r * 31 + ci) as f32 * 0.01).sin().abs());
    for m in [128usize, 512, 1024] {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(m);
        let mut ae = AsymmetricAutoencoder::new(&cfg).expect("valid config");
        group.bench_with_input(BenchmarkId::new("encode_batch32", m), &m, |b, _| {
            b.iter(|| ae.encode(&batch));
        });
        let latent = ae.encode(&batch);
        group.bench_with_input(BenchmarkId::new("decode_batch32", m), &m, |b, _| {
            b.iter(|| ae.decode(&latent));
        });
    }
    group.finish();
}

/// The GEMM under every encode/decode/train round: square matmul at the
/// sizes the paper's models hit, single-threaded vs the full thread budget.
/// On a ≥ 4-core machine the `threads_auto` rows should be ≥ 2× faster than
/// `threads_1` at 512×512 while producing bit-identical outputs.
fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for n in [128usize, 512, 1024] {
        let a = Matrix::from_fn(n, n, |r, ci| ((r * 31 + ci) as f32 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |r, ci| ((r * 17 + ci) as f32 * 0.02).cos());

        orco_tensor::parallel::set_threads(1);
        let reference = a.matmul(&b);
        group.bench_with_input(BenchmarkId::new("threads_1", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });

        orco_tensor::parallel::set_threads(0);
        assert_eq!(reference, a.matmul(&b), "thread count changed matmul results");
        group.bench_with_input(BenchmarkId::new("threads_auto", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_matmul);
criterion_main!(benches);
