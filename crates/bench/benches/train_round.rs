//! Component bench for Figures 4 and 8: wall-clock cost of one orchestrated
//! training round for OrcoDCS (by decoder depth) and for the DCSNet
//! baseline. The *simulated* times in the figures come from the FLOP/byte
//! model; this bench confirms the host-side cost ordering matches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use orco_baselines::Dcsnet;
use orco_datasets::{mnist_like, DatasetKind};
use orco_wsn::NetworkConfig;
use orcodcs::{Orchestrator, OrcoConfig};

fn bench_train_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_round");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let dataset = mnist_like::generate(32, 0);
    let net = NetworkConfig { num_devices: 16, seed: 0, ..Default::default() };

    for layers in [1usize, 3, 5] {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_decoder_layers(layers);
        let mut orch = Orchestrator::new(cfg, net.clone()).expect("valid config");
        group.bench_with_input(BenchmarkId::new("orcodcs_layers", layers), &layers, |b, _| {
            b.iter(|| orch.train_round(dataset.x()).expect("round runs"));
        });
    }

    let dcs_cfg = OrcoConfig {
        input_dim: 784,
        latent_dim: orco_baselines::dcsnet::DCSNET_LATENT_DIM,
        decoder_layers: 4,
        noise_variance: 0.0,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-3,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: Default::default(),
        seed: 0,
    };
    let mut dcs = Orchestrator::with_model(Dcsnet::new(DatasetKind::MnistLike, 0), dcs_cfg, net);
    group.bench_function("dcsnet_round", |b| {
        b.iter(|| dcs.train_round(dataset.x()).expect("round runs"));
    });

    group.finish();
}

criterion_group!(benches, bench_train_round);
criterion_main!(benches);
