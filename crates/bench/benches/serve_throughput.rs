//! Serving-throughput bench: frames/s end to end through the loopback
//! gateway — full wire protocol, sharded micro-batcher, ONE
//! `encode_batch` per flush, decoded pulls — across worker (shard)
//! counts, micro-batch sizes, and batch deadlines.
//!
//! This is the perf stake of the serving subsystem: on one core a
//! batched gateway configuration (`batch_max_frames = 64`) must serve at
//! least 2× the frames/s of a batch-size-1 gateway (every push flushed
//! and every pull decoded one frame at a time) — the batched-data-plane
//! win of `BENCH_frame_throughput.json` surviving the protocol layer.
//! Results land in `BENCH_serve_throughput.json` (override with
//! `ORCO_SERVE_BENCH_JSON`); CI runs quick mode and uploads the JSON.
//!
//! Run with: `cargo bench -p orco_bench --bench serve_throughput`
//! (`ORCO_SCALE=quick` shrinks the measurement for CI.)

// Benches time real work; wall-clock reads are the point (benches/ is
// likewise exempt from orco-lint's wall-clock rule).
#![allow(clippy::disallowed_methods)]
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use orco_serve::{Client, Clock, Gateway, GatewayConfig, Loopback, ModelVersion, PushOutcome};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

/// Clusters driven round-robin (spreads load across shards).
const CLUSTERS: [u64; 4] = [3, 19, 42, 77];
/// Virtual-clock advance per dispatched message; with the deadline knob
/// this decides how many frames a lingering batch accumulates.
const QUANTUM: Duration = Duration::from_micros(100);

struct Config {
    label: &'static str,
    shards: usize,
    batch_max: usize,
    deadline_ms: u64,
    /// Gateway-side span recording on (a live `Tracer` ring) or off
    /// (capacity 0, every record a no-op). The wire carries trace ids
    /// either way, so this isolates the recording cost.
    traced: bool,
    /// Propose + activate a codec hot swap at the run's halfway point,
    /// timing the stall the cutover adds to the serving path.
    swap: bool,
}

struct Row {
    label: &'static str,
    shards: usize,
    batch_max: usize,
    deadline_ms: u64,
    traced: bool,
    frames_per_s: f64,
    /// Wall-clock cost of propose + activate, for the swap row.
    swap_stall_ms: Option<f64>,
}

/// Serves `total` frames end to end (push one per message, pull decoded
/// in `batch_max`-sized chunks) and returns the wall-clock frames/s plus
/// the swap stall (when the config hot-swaps mid-run).
fn run(cfg: &Config, total: usize) -> (f64, Option<f64>) {
    let ae_cfg = OrcoConfig::for_dataset(orco_datasets_kind()).with_latent_dim(paper_latent());
    let gateway = Arc::new(
        Gateway::new(
            GatewayConfig {
                shards: cfg.shards,
                batch_max_frames: cfg.batch_max,
                batch_deadline: Duration::from_millis(cfg.deadline_ms),
                queue_capacity: 4096,
                auth_secret: None,
                trace_capacity: if cfg.traced { 1 << 16 } else { 0 },
                ..GatewayConfig::default()
            },
            Clock::manual(QUANTUM),
            |_| {
                Box::new(AsymmetricAutoencoder::new(&ae_cfg).expect("valid config"))
                    as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    );
    let mut client = Client::connect(&Loopback::new(gateway)).expect("loopback connects");
    let info = client.hello(0).expect("hello");

    let mut rng = OrcoRng::from_seed_u64(7);
    let frames = Matrix::from_fn(256, info.frame_dim as usize, |_, _| rng.uniform(0.0, 1.0));
    let pull_chunk = cfg.batch_max as u32;

    let mut served = 0usize;
    let mut pushed_since_drain = 0usize;
    let mut swap_stall_ms = None;
    let start = Instant::now();
    for i in 0..total {
        if cfg.swap && i == total / 2 {
            // Hot-swap to a fresh encoder mid-stream. The stall a client
            // sees is the propose + activate round trips (activation
            // flushes each shard's pending batch under the old codec);
            // the zero-drop contract is re-checked by the served == total
            // assert below.
            let donor = AsymmetricAutoencoder::new(&ae_cfg).expect("valid config");
            let version = ModelVersion {
                id: 1,
                label: "bench-swap".into(),
                frame_dim: info.frame_dim,
                code_dim: info.code_dim,
            };
            let swap_start = Instant::now();
            let ckpt = donor.checkpoint().expect("autoencoder codecs checkpoint");
            client.propose_rollout(version, &ckpt).expect("propose");
            client.activate_version(1).expect("activate");
            let stall = swap_start.elapsed();
            let bound = Duration::from_millis(cfg.deadline_ms) * 2;
            assert!(
                stall <= bound,
                "hot swap stalled the serving path for {stall:?}, over two flush \
                 deadlines ({bound:?})"
            );
            swap_stall_ms = Some(stall.as_secs_f64() * 1e3);
        }
        let cluster = CLUSTERS[i % CLUSTERS.len()];
        let row = i % frames.rows();
        match client.push(cluster, frames.view_rows(row..row + 1)).expect("push") {
            PushOutcome::Accepted(_) => pushed_since_drain += 1,
            PushOutcome::Busy { .. } => unreachable!("drain policy keeps the budget free"),
            PushOutcome::Redirected { .. } => unreachable!("no fleet view installed"),
        }
        // Periodically drain so the in-flight budget never fills; the
        // pull chunk matches the config's batch size, so the batch-1
        // configuration also decodes one frame per call.
        if pushed_since_drain >= 1024 {
            served += drain(&mut client, pull_chunk);
            pushed_since_drain = 0;
        }
    }
    loop {
        let got = drain(&mut client, pull_chunk);
        if got == 0 {
            break;
        }
        served += got;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(served, total, "every pushed frame must come back decoded");
    (total as f64 / elapsed, swap_stall_ms)
}

fn drain(client: &mut Client<impl orco_serve::Connection>, pull_chunk: u32) -> usize {
    let mut got = 0;
    for &cluster in &CLUSTERS {
        loop {
            let chunk = client.pull(cluster, pull_chunk).expect("pull").rows();
            if chunk == 0 {
                break;
            }
            got += chunk;
        }
    }
    got
}

fn orco_datasets_kind() -> orco_datasets::DatasetKind {
    orco_datasets::DatasetKind::MnistLike
}

fn paper_latent() -> usize {
    orco_datasets_kind().paper_latent_dim()
}

fn main() {
    // The acceptance claim is per-core: pin the kernels to one thread.
    orco_tensor::parallel::set_threads(1);
    let quick = std::env::var("ORCO_SCALE").as_deref() == Ok("quick");
    let total = if quick { 1024 } else { 8192 };

    let base = Config {
        label: "batch-64",
        shards: 1,
        batch_max: 64,
        deadline_ms: 50,
        traced: false,
        swap: false,
    };
    let configs = [
        Config { label: "batch-1", batch_max: 1, ..base },
        Config { label: "batch-16", batch_max: 16, ..base },
        Config { ..base },
        Config { label: "batch-64-traced", traced: true, ..base },
        Config { label: "batch-64-2shard", shards: 2, ..base },
        Config { label: "batch-64-4shard", shards: 4, ..base },
        Config { label: "batch-64-1ms", deadline_ms: 1, ..base },
        Config { label: "batch-64-during-swap", swap: true, ..base },
    ];

    // Interleaved rounds with a per-config best: compared configs (the
    // 2x stake, the tracing stake — its pair runs back to back) are
    // measured close together in time each round, so ambient load drift
    // hits both sides of a ratio instead of biasing it.
    let mut best = vec![0.0f64; configs.len()];
    let mut stalls: Vec<Option<f64>> = vec![None; configs.len()];
    for round in 0..3 {
        for (i, cfg) in configs.iter().enumerate() {
            if round == 0 {
                // Warm-up run grows every workspace to size.
                let _ = run(cfg, total.min(256));
            }
            let (fps, stall) = run(cfg, total);
            best[i] = best[i].max(fps);
            // Keep the worst observed stall: the bar is a ceiling.
            stalls[i] = match (stalls[i], stall) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }
    let rows: Vec<Row> = configs
        .iter()
        .zip(best.iter().zip(&stalls))
        .map(|(cfg, (&frames_per_s, &swap_stall_ms))| Row {
            label: cfg.label,
            shards: cfg.shards,
            batch_max: cfg.batch_max,
            deadline_ms: cfg.deadline_ms,
            traced: cfg.traced,
            frames_per_s,
            swap_stall_ms,
        })
        .collect();

    println!(
        "serve_throughput (loopback, 1 thread, {} frames, {} scale)",
        total,
        if quick { "quick" } else { "default" }
    );
    println!(
        "{:<18} {:>6} {:>10} {:>12} {:>14}",
        "config", "shards", "batch_max", "deadline_ms", "frames/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:>6} {:>10} {:>12} {:>14.1}",
            r.label, r.shards, r.batch_max, r.deadline_ms, r.frames_per_s
        );
    }

    let fps =
        |label: &str| rows.iter().find(|r| r.label == label).expect("config exists").frames_per_s;
    let speedup = fps("batch-64") / fps("batch-1");
    println!("\nbatched (64) vs batch-size-1 gateway on one core: {speedup:.2}x");
    let tracing_overhead = 1.0 - fps("batch-64-traced") / fps("batch-64");
    println!("tracing overhead at batch 64: {:.2}%", tracing_overhead * 100.0);
    let swap_stall = rows
        .iter()
        .find_map(|r| r.swap_stall_ms)
        .expect("the during-swap config records its stall");
    println!(
        "codec hot-swap stall at batch 64: {swap_stall:.3} ms (bar: 2 flush deadlines = {} ms)",
        2 * base.deadline_ms
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", if quick { "quick" } else { "default" });
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(
        json,
        "  \"note\": \"single-core run: the shard-count sweep (batch-64 vs -2shard vs -4shard) \
         measures sharding overhead, not scaling; expect flat numbers on 1-core CI\","
    );
    let _ = writeln!(json, "  \"frames\": {total},");
    let _ = writeln!(json, "  \"batched64_vs_batch1_speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"tracing_overhead_batch64\": {tracing_overhead:.4},");
    let _ = writeln!(json, "  \"swap_stall_ms_batch64\": {swap_stall:.4},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let stall = r.swap_stall_ms.map_or(String::from("null"), |s| format!("{s:.4}"));
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"shards\": {}, \"batch_max\": {}, \"deadline_ms\": {}, \"traced\": {}, \"frames_per_s\": {:.2}, \"swap_stall_ms\": {stall}}}{comma}",
            r.label, r.shards, r.batch_max, r.deadline_ms, r.traced, r.frames_per_s
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let path = std::env::var("ORCO_SERVE_BENCH_JSON").unwrap_or_else(|_| {
        format!("{}/../../BENCH_serve_throughput.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&path, &json).expect("bench JSON is writable");
    println!("wrote {path}");

    // The documented acceptance bar: batched serving must hold >= 2x the
    // batch-size-1 gateway on one core (measured ~4.3x; fail loudly well
    // before the README's claim goes stale).
    assert!(
        speedup >= 2.0,
        "batched gateway fell below the 2x acceptance bar vs batch-size-1 ({speedup:.2}x)"
    );
    // The observability stake: recording spans into the bounded ring must
    // cost at most 5% of batch-64 throughput.
    assert!(
        tracing_overhead <= 0.05,
        "tracing cost {:.2}% of batch-64 throughput (bar: 5%)",
        tracing_overhead * 100.0
    );
}
