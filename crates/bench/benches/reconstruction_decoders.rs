//! Component bench for Figure 2 / the introduction's motivation: per-image
//! decoding cost of a learned decoder vs classical convex (ISTA) and greedy
//! (OMP) compressed-sensing reconstruction. The paper's claim that
//! traditional decoders are "computationally intensive" is this ordering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use orco_baselines::cs::{
    ista_reconstruct, omp_reconstruct, Dct2, GaussianMeasurement, IstaConfig,
};
use orco_datasets::{mnist_like, DatasetKind};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, OrcoConfig};

fn bench_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruction_decoders");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let dataset = mnist_like::generate(8, 0);
    let image = dataset.sample(0);
    let n = image.len();

    // Learned pipeline.
    let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike);
    let mut ae = AsymmetricAutoencoder::new(&cfg).expect("valid config");
    let x = Matrix::from_vec(1, n, image.to_vec()).expect("length checked");
    group.bench_function("learned_decode_1img", |b| {
        b.iter(|| ae.reconstruct(&x));
    });

    // Classical pipeline at m = 128 measurements.
    let dct = Dct2::new(28);
    let psi = dct.synthesis_matrix();
    let mut rng = OrcoRng::from_label("bench-cs", 0);
    let phi = GaussianMeasurement::new(128, n, &mut rng);
    let a = phi.sensing_matrix(&psi);
    let y = phi.measure(image);

    group.bench_function("ista_decode_1img_m128", |b| {
        b.iter(|| {
            ista_reconstruct(&a, &y, &IstaConfig { lambda: 0.01, max_iters: 100, tol: 1e-5 })
        });
    });
    group.bench_function("omp_decode_1img_m128_k32", |b| {
        b.iter(|| omp_reconstruct(&a, &y, 32));
    });

    group.finish();
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
