//! Ablation bench: cost of the reconstruction losses (paper §III-B chooses
//! Huber over plain L2; this reproduction defaults to element-wise Huber
//! and offers the paper's literal vector form). Value + gradient per batch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use orco_nn::Loss;
use orco_tensor::Matrix;

fn bench_losses(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_functions");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    let pred = Matrix::from_fn(32, 784, |r, ci| ((r * 17 + ci) as f32 * 0.01).sin().abs());
    let target = Matrix::from_fn(32, 784, |r, ci| ((r * 13 + ci) as f32 * 0.02).cos().abs());

    for (name, loss) in [
        ("l1", Loss::L1),
        ("l2", Loss::L2),
        ("huber_elementwise", Loss::Huber { delta: 0.5 }),
        ("huber_vector", Loss::VectorHuber { delta: 39.2 }),
    ] {
        group.bench_function(format!("{name}_value"), |b| {
            b.iter(|| loss.value(&pred, &target));
        });
        group.bench_function(format!("{name}_grad"), |b| {
            b.iter(|| loss.grad(&pred, &target));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_losses);
criterion_main!(benches);
