//! Component bench for Figure 3's data plane: host cost of simulating the
//! three WSN traffic primitives (raw tree aggregation, encoder-column
//! broadcast, compressed chain aggregation) at cluster sizes up to the
//! faithful one-device-per-reading deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use orco_wsn::{Network, NetworkConfig};

fn bench_wsn(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsn_primitives");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for devices in [64usize, 256, 784] {
        group.bench_with_input(BenchmarkId::new("build_network", devices), &devices, |b, &d| {
            b.iter(|| {
                Network::new(NetworkConfig { num_devices: d, seed: 0, ..Default::default() })
            });
        });
        let mut net = Network::new(NetworkConfig {
            num_devices: devices,
            seed: 0,
            battery_scale: 1e9,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("raw_round", devices), &devices, |b, _| {
            b.iter(|| net.raw_aggregation_round(4).expect("round runs"));
        });
        group.bench_with_input(BenchmarkId::new("compressed_round", devices), &devices, |b, _| {
            b.iter(|| net.compressed_aggregation_round(512, 256).expect("round runs"));
        });
        group.bench_with_input(BenchmarkId::new("broadcast_columns", devices), &devices, |b, _| {
            b.iter(|| net.broadcast_encoder_columns(512).expect("broadcast runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wsn);
criterion_main!(benches);
