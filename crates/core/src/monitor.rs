//! The model fine-tuning monitor (paper §III-D).
//!
//! "The edge server periodically calculates the reconstruction error … If
//! the reconstruction error exceeds a predefined threshold, the training
//! procedure is relaunched." The monitor smooths errors over a sliding
//! window so a single noisy frame does not trigger an expensive retrain.

use std::collections::VecDeque;

/// Sliding-window reconstruction-error monitor.
///
/// # Examples
///
/// ```
/// use orcodcs::FineTuneMonitor;
///
/// let mut monitor = FineTuneMonitor::new(0.1, 3);
/// monitor.record(0.02);
/// assert!(!monitor.should_retrain());
/// monitor.record(0.5);
/// monitor.record(0.6);
/// monitor.record(0.7);
/// assert!(monitor.should_retrain());
/// monitor.acknowledge();
/// assert!(!monitor.should_retrain());
/// ```
#[derive(Debug, Clone)]
pub struct FineTuneMonitor {
    threshold: f32,
    window: VecDeque<f32>,
    capacity: usize,
    triggers: usize,
}

impl FineTuneMonitor {
    /// Creates a monitor that triggers when the mean of the last `window`
    /// recorded errors exceeds `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive or `window` is zero.
    #[must_use]
    pub fn new(threshold: f32, window: usize) -> Self {
        assert!(threshold > 0.0 && threshold.is_finite(), "threshold must be positive");
        assert!(window > 0, "window must be non-zero");
        Self { threshold, window: VecDeque::with_capacity(window), capacity: window, triggers: 0 }
    }

    /// The trigger threshold.
    #[must_use]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Records one reconstruction-error observation.
    pub fn record(&mut self, error: f32) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(error);
    }

    /// Mean error over the current window (`None` until the window fills).
    #[must_use]
    pub fn windowed_error(&self) -> Option<f32> {
        if self.window.len() < self.capacity {
            None
        } else {
            Some(self.window.iter().sum::<f32>() / self.window.len() as f32)
        }
    }

    /// Whether the windowed error exceeds the threshold.
    #[must_use]
    pub fn should_retrain(&self) -> bool {
        self.windowed_error().is_some_and(|e| e > self.threshold)
    }

    /// Resets the window after a retrain was launched, counting the trigger.
    pub fn acknowledge(&mut self) {
        self.window.clear();
        self.triggers += 1;
    }

    /// Number of acknowledged triggers so far.
    #[must_use]
    pub fn triggers(&self) -> usize {
        self.triggers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn does_not_trigger_before_window_fills() {
        let mut m = FineTuneMonitor::new(0.1, 3);
        m.record(9.0);
        m.record(9.0);
        assert_eq!(m.windowed_error(), None);
        assert!(!m.should_retrain());
        m.record(9.0);
        assert!(m.should_retrain());
    }

    #[test]
    fn low_errors_never_trigger() {
        let mut m = FineTuneMonitor::new(0.1, 2);
        for _ in 0..10 {
            m.record(0.05);
        }
        assert!(!m.should_retrain());
        assert_eq!(m.triggers(), 0);
    }

    #[test]
    fn single_spike_is_smoothed() {
        let mut m = FineTuneMonitor::new(0.5, 4);
        m.record(0.1);
        m.record(0.1);
        m.record(0.1);
        m.record(1.2); // spike; mean = 0.375 < 0.5
        assert!(!m.should_retrain());
    }

    #[test]
    fn acknowledge_resets_and_counts() {
        let mut m = FineTuneMonitor::new(0.1, 2);
        m.record(1.0);
        m.record(1.0);
        assert!(m.should_retrain());
        m.acknowledge();
        assert!(!m.should_retrain());
        assert_eq!(m.triggers(), 1);
        assert_eq!(m.windowed_error(), None);
    }

    #[test]
    fn window_slides() {
        let mut m = FineTuneMonitor::new(0.5, 2);
        m.record(2.0);
        m.record(2.0);
        assert!(m.should_retrain());
        // Fresh low errors push the spikes out.
        m.record(0.0);
        m.record(0.0);
        assert!(!m.should_retrain());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = FineTuneMonitor::new(0.0, 2);
    }
}
