//! The IoT-Edge orchestrated training procedure (paper §III-B) and the
//! data-plane protocol (§III-A, §III-C), executed over the WSN simulator.
//!
//! One training round moves exactly the traffic the paper describes:
//!
//! 1. the **aggregator** encodes the batch and adds latent noise (compute);
//! 2. the noisy latent batch flows **up** to the edge (`batch × M` floats);
//! 3. the **edge** decodes (compute) and sends the reconstructions **down**
//!    (`batch × N` floats — cheap: downlink bandwidth ≫ uplink);
//! 4. the **aggregator** computes the Huber loss and its gradient (compute)
//!    and uplinks the reconstruction gradient (`batch × N` floats);
//! 5. the **edge** backpropagates, updates the decoder, and downlinks the
//!    latent gradient (`batch × M` floats);
//! 6. the **aggregator** updates the encoder.
//!
//! Every arrow lands in the traffic ledger and advances the simulated
//! clock, which is what the paper's Figures 3, 4, 6, 7, 8 measure.

use orco_nn::Loss;
use orco_tensor::{Matrix, OrcoRng};
use orco_wsn::{DeploymentBackend, Network, NetworkConfig, PacketKind};

use crate::autoencoder::AsymmetricAutoencoder;
use crate::config::OrcoConfig;
use crate::distribution::EncoderColumns;
use crate::error::OrcoError;
use crate::online_trainer::{RoundStats, TrainingHistory};
use crate::split::SplitModel;

/// Drives the OrcoDCS protocol over a simulated deployment.
///
/// Generic over both the split model `M` and the deployment backend `D`
/// (the analytic [`Network`] by default; the `orco-sim` event-driven
/// simulator through the experiment pipeline's `deployment` knob) — the
/// protocol itself is backend-agnostic.
///
/// # Examples
///
/// ```
/// use orcodcs::{OrcoConfig, Orchestrator};
/// use orco_datasets::{mnist_like, DatasetKind};
/// use orco_wsn::NetworkConfig;
///
/// let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
///     .with_latent_dim(16)
///     .with_epochs(1)
///     .with_batch_size(8);
/// let net = NetworkConfig { num_devices: 16, ..Default::default() };
/// let mut orch = Orchestrator::new(cfg, net).unwrap();
/// let data = mnist_like::generate(16, 0);
/// let history = orch.train(data.x()).unwrap();
/// assert!(!history.rounds.is_empty());
/// assert!(orch.network().now_s() > 0.0);
/// ```
#[derive(Debug)]
pub struct Orchestrator<M: SplitModel = AsymmetricAutoencoder, D: DeploymentBackend = Network> {
    model: M,
    config: OrcoConfig,
    loss: Loss,
    network: D,
    batch_rng: OrcoRng,
    rounds_run: usize,
}

impl Orchestrator<AsymmetricAutoencoder> {
    /// Builds an orchestrator with a fresh OrcoDCS autoencoder.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] if `config` is invalid.
    pub fn new(config: OrcoConfig, net_config: NetworkConfig) -> Result<Self, OrcoError> {
        let autoencoder = AsymmetricAutoencoder::new(&config)?;
        Ok(Self::with_model(autoencoder, config, net_config))
    }

    /// The autoencoder.
    #[deprecated(since = "0.2.0", note = "use the generic `Orchestrator::model` instead")]
    #[must_use]
    pub fn autoencoder(&self) -> &AsymmetricAutoencoder {
        &self.model
    }

    /// Mutable access to the autoencoder (sweeps adjust noise variance).
    #[deprecated(since = "0.2.0", note = "use the generic `Orchestrator::model_mut` instead")]
    #[must_use]
    pub fn autoencoder_mut(&mut self) -> &mut AsymmetricAutoencoder {
        &mut self.model
    }
}

impl<D: DeploymentBackend> Orchestrator<AsymmetricAutoencoder, D> {
    // ------------------------------------------------------------------
    // §III-C: distribution + compressed aggregation (OrcoDCS-specific:
    // only the one-dense-layer encoder can be distributed column-wise)
    // ------------------------------------------------------------------

    /// Splits the trained encoder into per-device columns and broadcasts
    /// them over the sensor network ("a single round of broadcast").
    ///
    /// Returns the shares and the elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures.
    pub fn distribute_encoder(&mut self) -> Result<(EncoderColumns, f64), OrcoError> {
        let columns = EncoderColumns::split(self.model.encoder_weight(), self.model.encoder_bias());
        let t = self.network.broadcast_encoder_columns(columns.column_bytes())?;
        Ok((columns, t))
    }
}

impl<M: SplitModel> Orchestrator<M, Network> {
    /// Wraps an already-built split model (used for baselines trained
    /// through the same protocol, e.g. DCSNet) over the analytic backend.
    /// `config` supplies the protocol parameters (loss, batch size, epochs,
    /// seed); it is not re-validated, since baseline models may violate
    /// OrcoDCS-specific constraints such as `latent_dim < input_dim`.
    #[must_use]
    pub fn with_model(model: M, config: OrcoConfig, net_config: NetworkConfig) -> Self {
        let loss = config.loss();
        Self::with_parts(model, config, loss, Network::new(net_config))
    }
}

impl<M: SplitModel, D: DeploymentBackend> Orchestrator<M, D> {
    /// Wraps a model with an **explicit training loss** and an
    /// already-built deployment backend. This is the constructor the
    /// experiment pipeline uses: codecs report their native loss directly
    /// (it need not be expressible through [`OrcoConfig`]'s Huber fields),
    /// the deployment may already carry simulated time from earlier
    /// phases, and it may be either simulator (or a boxed one).
    #[must_use]
    pub fn with_parts(model: M, config: OrcoConfig, loss: Loss, network: D) -> Self {
        let batch_rng = OrcoRng::from_label("orcodcs-batching", config.seed);
        Self { model, config, loss, network, batch_rng, rounds_run: 0 }
    }

    /// Consumes the orchestrator, releasing the deployment (with its clock
    /// and traffic ledger intact) for follow-up measurements.
    #[must_use]
    pub fn into_network(self) -> D {
        self.network
    }

    /// One frame of compressed aggregation after distribution: the chain
    /// folds the `M`-element partial sum into the aggregator, which uplinks
    /// the finished latent vector to the edge.
    ///
    /// Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures.
    pub fn compressed_frame(&mut self) -> Result<f64, OrcoError> {
        crate::aggregation::compressed_frame_on(&mut self.network, self.config.latent_dim)
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    #[must_use]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The simulated deployment.
    #[must_use]
    pub fn network(&self) -> &D {
        &self.network
    }

    /// Mutable access to the deployment (failure injection).
    #[must_use]
    pub fn network_mut(&mut self) -> &mut D {
        &mut self.network
    }

    /// The framework configuration.
    #[must_use]
    pub fn config(&self) -> &OrcoConfig {
        &self.config
    }

    /// Total training rounds executed so far.
    #[must_use]
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    // ------------------------------------------------------------------
    // §III-A: intra-cluster raw data aggregation
    // ------------------------------------------------------------------

    /// Aggregates `frames` frames of raw readings over the tree so the
    /// aggregator holds training data. Each alive device contributes one
    /// 4-byte reading per frame.
    ///
    /// Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures.
    pub fn aggregate_raw_frames(&mut self, frames: usize) -> Result<f64, OrcoError> {
        let mut total = 0.0;
        for _ in 0..frames {
            total += self.network.raw_aggregation_round(4)?;
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // §III-B: one orchestrated training round
    // ------------------------------------------------------------------

    /// Runs one training round on a batch, moving all protocol traffic over
    /// the simulated network. Returns the batch loss (before update) and
    /// the elapsed simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Diverged`] on non-finite loss and propagates
    /// network failures.
    pub fn train_round(&mut self, batch: &Matrix) -> Result<(f32, f64), OrcoError> {
        let t0 = self.network.now_s();
        let agg = self.network.aggregator();
        let edge = self.network.edge();
        let b = batch.rows();
        let loss = self.loss;

        // 1. Aggregator: encode + noise.
        self.network.compute(agg, self.model.encoder_flops_forward() * b as u64)?;
        let noisy_latent = self.model.aggregator_encode_train(batch);

        // 2. Uplink latent batch.
        let latent_bytes = (noisy_latent.len() * 4) as u64;
        self.network.transmit(agg, edge, latent_bytes, PacketKind::LatentVector)?;

        // 3. Edge: decode, downlink reconstructions.
        self.network.compute(edge, self.model.decoder_flops_forward() * b as u64)?;
        let reconstruction = self.model.edge_decode_train(&noisy_latent);
        let recon_bytes = (reconstruction.len() * 4) as u64;
        self.network.transmit(edge, agg, recon_bytes, PacketKind::Reconstruction)?;

        // 4. Aggregator: loss + gradient, uplink the gradient.
        self.network.compute(agg, loss.flops(batch.cols()) * b as u64)?;
        let value = loss.value(&reconstruction, batch);
        let grad = loss.grad(&reconstruction, batch);
        if !value.is_finite() {
            return Err(OrcoError::Diverged { round: self.rounds_run });
        }
        // The gradient uplink honours the configured compression policy:
        // the edge trains on exactly what arrived over the wire.
        let (grad_rx, grad_bytes) = self.config.grad_compression.apply(&grad);
        self.network.transmit(agg, edge, grad_bytes, PacketKind::ModelUpdate)?;

        // 5. Edge: decoder backward + update, downlink latent gradient.
        self.network.compute(edge, self.model.decoder_flops_backward() * b as u64)?;
        let grad_latent = self.model.edge_decoder_update(&grad_rx);
        self.network.transmit(edge, agg, latent_bytes, PacketKind::ModelUpdate)?;

        // 6. Aggregator: encoder backward + update.
        self.network.compute(agg, self.model.encoder_flops_backward() * b as u64)?;
        self.model.aggregator_encoder_update(&grad_latent);

        self.rounds_run += 1;
        Ok((value, self.network.now_s() - t0))
    }

    /// Full online training (paper eq. 5): `config.epochs` shuffled passes
    /// over `x` in `config.batch_size` batches.
    ///
    /// # Errors
    ///
    /// Propagates round errors; see [`Orchestrator::train_round`].
    pub fn train(&mut self, x: &Matrix) -> Result<TrainingHistory, OrcoError> {
        self.train_with(x, |_, _| {})
    }

    /// Like [`Orchestrator::train`], with a hook invoked after every
    /// completed epoch (the experiment pipeline records probe
    /// reconstruction errors there). The hook runs on the live
    /// orchestrator, so out-of-band evaluations see the exact mid-training
    /// model without perturbing the batch-shuffle stream.
    ///
    /// # Errors
    ///
    /// Propagates round errors; see [`Orchestrator::train_round`].
    pub fn train_with(
        &mut self,
        x: &Matrix,
        mut on_epoch: impl FnMut(&mut Self, usize),
    ) -> Result<TrainingHistory, OrcoError> {
        let n = x.rows();
        if n == 0 {
            return Err(OrcoError::Config { detail: "training set is empty".into() });
        }
        let bs = self.config.batch_size.min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = TrainingHistory::default();
        let mut round = 0usize;
        for epoch in 0..self.config.epochs {
            self.batch_rng.shuffle(&mut order);
            for chunk in order.chunks(bs) {
                let xb = x.select_rows(chunk);
                let (loss, _) = self.train_round(&xb)?;
                let acct = self.network.accounting();
                history.rounds.push(RoundStats {
                    round,
                    epoch,
                    loss,
                    sim_time_s: self.network.now_s(),
                    uplink_bytes: acct.bytes_by_kind(PacketKind::LatentVector),
                    energy_j: acct.total_tx_energy_j() + acct.total_rx_energy_j(),
                    link: acct.link_stats(),
                });
                round += 1;
            }
            on_epoch(self, epoch);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::{mnist_like, DatasetKind};

    fn tiny_setup(devices: usize) -> Orchestrator {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(2)
            .with_batch_size(8)
            .with_learning_rate(0.1);
        let net = NetworkConfig { num_devices: devices, seed: 1, ..Default::default() };
        Orchestrator::new(cfg, net).unwrap()
    }

    #[test]
    fn train_round_moves_protocol_traffic() {
        let mut orch = tiny_setup(8);
        let ds = mnist_like::generate(8, 0);
        let (loss, dt) = orch.train_round(ds.x()).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert!(dt > 0.0);
        let acct = orch.network().accounting();
        assert!(acct.bytes_by_kind(PacketKind::LatentVector) >= 8 * 16 * 4);
        assert!(acct.bytes_by_kind(PacketKind::Reconstruction) >= 8 * 784 * 4);
        assert!(acct.bytes_by_kind(PacketKind::ModelUpdate) > 0);
        assert_eq!(orch.rounds_run(), 1);
    }

    #[test]
    fn training_reduces_loss_over_rounds() {
        let mut orch = tiny_setup(8);
        let ds = mnist_like::generate(32, 0);
        let loss_fn = orch.config().loss();
        let before = orch.model_mut().evaluate(ds.x(), &loss_fn);
        let history = orch.train(ds.x()).unwrap();
        assert!(history.rounds.len() >= 8);
        let after = orch.model_mut().evaluate(ds.x(), &loss_fn);
        assert!(after < before, "loss {before} -> {after}");
        // Simulated time strictly increases.
        for w in history.rounds.windows(2) {
            assert!(w[1].sim_time_s > w[0].sim_time_s);
        }
    }

    #[test]
    fn split_training_equals_local_training() {
        // The orchestrated rounds must compute exactly what local (joint)
        // training computes: same losses, same final weights.
        let ds = mnist_like::generate(16, 2);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(8)
            .with_epochs(1)
            .with_batch_size(16);
        let mut orch = Orchestrator::new(
            cfg.clone(),
            NetworkConfig { num_devices: 4, seed: 0, ..Default::default() },
        )
        .unwrap();
        let mut local = AsymmetricAutoencoder::new(&cfg).unwrap();
        let loss = cfg.loss();
        for _ in 0..3 {
            let (l_orch, _) = orch.train_round(ds.x()).unwrap();
            let l_local = local.train_batch_local(ds.x(), &loss);
            assert_eq!(l_orch, l_local, "orchestrated and local losses must match");
        }
        assert_eq!(orch.model().encoder_weight(), local.encoder_weight());
    }

    #[test]
    fn raw_aggregation_then_training_accumulates_time() {
        let mut orch = tiny_setup(16);
        let t_agg = orch.aggregate_raw_frames(5).unwrap();
        assert!(t_agg > 0.0);
        let ds = mnist_like::generate(8, 3);
        let (_, t_round) = orch.train_round(ds.x()).unwrap();
        assert!(orch.network().now_s() >= t_agg + t_round);
    }

    #[test]
    fn distribution_and_compressed_frames_work() {
        let mut orch = tiny_setup(8);
        let ds = mnist_like::generate(8, 4);
        let _ = orch.train_round(ds.x()).unwrap();
        let (columns, t_dist) = orch.distribute_encoder().unwrap();
        assert_eq!(columns.num_devices(), 784);
        assert_eq!(columns.latent_dim(), 16);
        assert!(t_dist > 0.0);
        let t_frame = orch.compressed_frame().unwrap();
        assert!(t_frame > 0.0);
    }

    #[test]
    fn byte_grad_compression_shrinks_uplink_and_still_trains() {
        let ds = mnist_like::generate(16, 6);
        let base = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(2)
            .with_batch_size(16);
        let net = NetworkConfig { num_devices: 8, seed: 0, ..Default::default() };
        let mut full = Orchestrator::new(base.clone(), net.clone()).unwrap();
        let mut compressed = Orchestrator::new(
            base.with_grad_compression(crate::compression::GradCompression::Byte),
            net,
        )
        .unwrap();
        let h_full = full.train(ds.x()).unwrap();
        let h_comp = compressed.train(ds.x()).unwrap();
        // 4x smaller feedback uplink → strictly fewer ModelUpdate bytes.
        let full_bytes = full.network().accounting().bytes_by_kind(PacketKind::ModelUpdate);
        let comp_bytes = compressed.network().accounting().bytes_by_kind(PacketKind::ModelUpdate);
        assert!(comp_bytes * 2 < full_bytes, "compressed {comp_bytes} vs full {full_bytes}");
        // And training still converges to a similar loss.
        let lf = h_full.final_loss().unwrap();
        let lc = h_comp.final_loss().unwrap();
        assert!(lc < lf * 1.5 + 0.01, "compressed loss {lc} vs full {lf}");
    }

    #[test]
    fn empty_training_set_is_config_error() {
        let mut orch = tiny_setup(4);
        let empty = orco_tensor::Matrix::zeros(0, 784);
        assert!(matches!(orch.train(&empty), Err(OrcoError::Config { .. })));
    }
}
