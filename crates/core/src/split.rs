//! The split-model abstraction the orchestrated protocol trains.
//!
//! The paper compares OrcoDCS against DCSNet *run through the same online
//! training setting* ("we carry out online training of DCSNet, with the
//! same model structure but only 50% of the training data"). To make that
//! comparison apples-to-apples, the [`crate::Orchestrator`] is generic over
//! [`SplitModel`]: any autoencoder that can split its forward/backward pass
//! between the data aggregator (encoder side) and the edge server (decoder
//! side). [`crate::AsymmetricAutoencoder`] implements it here; the DCSNet
//! baseline implements it in `orco-baselines`.

use orco_tensor::Matrix;

use crate::autoencoder::AsymmetricAutoencoder;

/// An autoencoder trainable by the IoT-Edge orchestrated protocol.
///
/// The six methods correspond to the protocol steps of paper §III-B; FLOP
/// accessors feed the simulated-time model.
pub trait SplitModel: std::fmt::Debug + Send {
    /// Input (reconstruction) dimension `N`.
    fn input_dim(&self) -> usize;

    /// Latent dimension `M` — determines per-round uplink bytes.
    fn latent_dim(&self) -> usize;

    /// Aggregator: encode a batch in training mode, including any latent
    /// perturbation (noise) the model applies.
    fn aggregator_encode_train(&mut self, x: &Matrix) -> Matrix;

    /// Edge: decode the latent batch in training mode.
    fn edge_decode_train(&mut self, latent: &Matrix) -> Matrix;

    /// Edge: backpropagate the reconstruction gradient through the decoder,
    /// apply the decoder update, and return the latent gradient.
    fn edge_decoder_update(&mut self, grad_reconstruction: &Matrix) -> Matrix;

    /// Aggregator: backpropagate the latent gradient through the encoder
    /// and apply the encoder update.
    fn aggregator_encoder_update(&mut self, grad_latent: &Matrix);

    /// Full clean reconstruction (inference mode).
    fn reconstruct_inference(&mut self, x: &Matrix) -> Matrix;

    /// Per-sample forward FLOPs on the aggregator side.
    fn encoder_flops_forward(&self) -> u64;

    /// Per-sample backward FLOPs on the aggregator side.
    fn encoder_flops_backward(&self) -> u64;

    /// Per-sample forward FLOPs on the edge side.
    fn decoder_flops_forward(&self) -> u64;

    /// Per-sample backward FLOPs on the edge side.
    fn decoder_flops_backward(&self) -> u64;
}

/// Mutable references forward to the underlying model, so an
/// [`crate::Orchestrator`] can drive a *borrowed* model — the
/// [`crate::pipeline::Experiment`] trains a [`crate::Codec`]'s split half in
/// place without taking ownership of the codec.
impl<T: SplitModel + ?Sized> SplitModel for &mut T {
    fn input_dim(&self) -> usize {
        (**self).input_dim()
    }

    fn latent_dim(&self) -> usize {
        (**self).latent_dim()
    }

    fn aggregator_encode_train(&mut self, x: &Matrix) -> Matrix {
        (**self).aggregator_encode_train(x)
    }

    fn edge_decode_train(&mut self, latent: &Matrix) -> Matrix {
        (**self).edge_decode_train(latent)
    }

    fn edge_decoder_update(&mut self, grad_reconstruction: &Matrix) -> Matrix {
        (**self).edge_decoder_update(grad_reconstruction)
    }

    fn aggregator_encoder_update(&mut self, grad_latent: &Matrix) {
        (**self).aggregator_encoder_update(grad_latent);
    }

    fn reconstruct_inference(&mut self, x: &Matrix) -> Matrix {
        (**self).reconstruct_inference(x)
    }

    fn encoder_flops_forward(&self) -> u64 {
        (**self).encoder_flops_forward()
    }

    fn encoder_flops_backward(&self) -> u64 {
        (**self).encoder_flops_backward()
    }

    fn decoder_flops_forward(&self) -> u64 {
        (**self).decoder_flops_forward()
    }

    fn decoder_flops_backward(&self) -> u64 {
        (**self).decoder_flops_backward()
    }
}

impl SplitModel for AsymmetricAutoencoder {
    fn input_dim(&self) -> usize {
        AsymmetricAutoencoder::input_dim(self)
    }

    fn latent_dim(&self) -> usize {
        AsymmetricAutoencoder::latent_dim(self)
    }

    fn aggregator_encode_train(&mut self, x: &Matrix) -> Matrix {
        AsymmetricAutoencoder::aggregator_encode_train(self, x)
    }

    fn edge_decode_train(&mut self, latent: &Matrix) -> Matrix {
        AsymmetricAutoencoder::edge_decode_train(self, latent)
    }

    fn edge_decoder_update(&mut self, grad_reconstruction: &Matrix) -> Matrix {
        AsymmetricAutoencoder::edge_decoder_update(self, grad_reconstruction)
    }

    fn aggregator_encoder_update(&mut self, grad_latent: &Matrix) {
        AsymmetricAutoencoder::aggregator_encoder_update(self, grad_latent);
    }

    fn reconstruct_inference(&mut self, x: &Matrix) -> Matrix {
        AsymmetricAutoencoder::reconstruct(self, x)
    }

    fn encoder_flops_forward(&self) -> u64 {
        AsymmetricAutoencoder::encoder_flops_forward(self)
    }

    fn encoder_flops_backward(&self) -> u64 {
        AsymmetricAutoencoder::encoder_flops_backward(self)
    }

    fn decoder_flops_forward(&self) -> u64 {
        AsymmetricAutoencoder::decoder_flops_forward(self)
    }

    fn decoder_flops_backward(&self) -> u64 {
        AsymmetricAutoencoder::decoder_flops_backward(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrcoConfig;
    use orco_datasets::DatasetKind;

    #[test]
    fn autoencoder_implements_split_model() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
        let ae = AsymmetricAutoencoder::new(&cfg).unwrap();
        let boxed: Box<dyn SplitModel> = Box::new(ae);
        assert_eq!(boxed.input_dim(), 784);
        assert_eq!(boxed.latent_dim(), 16);
        assert!(boxed.decoder_flops_forward() > 0);
    }
}
