use orco_datasets::DatasetKind;
use orco_nn::Loss;

use crate::compression::GradCompression;
use crate::error::OrcoError;

/// Complete configuration of one OrcoDCS deployment + training run.
///
/// The defaults reproduce the paper's settings for each dataset: latent
/// dimension `M` = 128 (MNIST) / 512 (GTSRB), a one-layer encoder, a
/// one-layer decoder (deeper via [`OrcoConfig::with_decoder_layers`]),
/// Gaussian latent noise, and a Huber reconstruction loss.
///
/// # Examples
///
/// ```
/// use orcodcs::OrcoConfig;
/// use orco_datasets::DatasetKind;
///
/// let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike);
/// assert_eq!(cfg.latent_dim, 128);
/// assert_eq!(cfg.input_dim, 784);
/// let deeper = cfg.with_decoder_layers(3).with_noise_variance(0.2);
/// assert_eq!(deeper.decoder_layers, 3);
/// ```
#[derive(Debug, Clone)]
pub struct OrcoConfig {
    /// Flattened sample length `N` (the number of IoT readings per frame).
    pub input_dim: usize,
    /// Latent dimension `M` — the paper's task-tunable compression knob.
    pub latent_dim: usize,
    /// Number of dense layers in the edge-side decoder (paper Fig. 8 sweeps
    /// 1/3/5).
    pub decoder_layers: usize,
    /// Variance σ² of the Gaussian latent noise (paper eq. 2, Fig. 7).
    pub noise_variance: f32,
    /// Huber threshold δ (paper eq. 4).
    pub huber_delta: f32,
    /// Whether to use the paper's per-sample vector Huber (true) or
    /// element-wise Huber (false, ablation).
    pub vector_huber: bool,
    /// Learning rate for both encoder and decoder.
    pub learning_rate: f32,
    /// Mini-batch size per training round.
    pub batch_size: usize,
    /// Number of passes over the aggregated training data.
    pub epochs: usize,
    /// Fine-tuning monitor threshold on reconstruction loss (§III-D).
    pub finetune_threshold: f32,
    /// Compression policy for the reconstruction-gradient uplink.
    pub grad_compression: GradCompression,
    /// RNG seed for weights, noise and batching.
    pub seed: u64,
}

impl OrcoConfig {
    /// The paper's configuration for a dataset kind.
    #[must_use]
    pub fn for_dataset(kind: DatasetKind) -> Self {
        Self {
            input_dim: kind.sample_len(),
            latent_dim: kind.paper_latent_dim(),
            decoder_layers: 1,
            noise_variance: 0.1,
            // Element-wise Huber with δ = 0.5: quadratic over the clean
            // pixel-residual range (fast, L2-like convergence), linear for
            // outlier residuals (robustness under drift) — the practical
            // reading of the paper's eq. 4. The literal per-sample
            // vector-norm form is available via `with_vector_huber` for
            // ablation; its sign gradients converge markedly slower.
            huber_delta: 0.5,
            vector_huber: false,
            // Calibrated for the small-corpus regime this reproduction
            // trains in (hundreds of samples, tens of epochs).
            learning_rate: match kind {
                DatasetKind::MnistLike => 1e-2,
                DatasetKind::GtsrbLike => 5e-3,
            },
            batch_size: 32,
            epochs: 10,
            finetune_threshold: 0.05,
            grad_compression: GradCompression::default(),
            seed: 0,
        }
    }

    /// Sets the latent dimension `M`.
    #[must_use]
    pub fn with_latent_dim(mut self, m: usize) -> Self {
        self.latent_dim = m;
        self
    }

    /// Sets the decoder depth.
    #[must_use]
    pub fn with_decoder_layers(mut self, layers: usize) -> Self {
        self.decoder_layers = layers;
        self
    }

    /// Sets the Gaussian latent-noise variance σ².
    #[must_use]
    pub fn with_noise_variance(mut self, variance: f32) -> Self {
        self.noise_variance = variance;
        self
    }

    /// Sets the number of training epochs.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the mini-batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the gradient-compression policy for the feedback uplink.
    #[must_use]
    pub fn with_grad_compression(mut self, policy: GradCompression) -> Self {
        self.grad_compression = policy;
        self
    }

    /// Sets the fine-tuning threshold.
    #[must_use]
    pub fn with_finetune_threshold(mut self, threshold: f32) -> Self {
        self.finetune_threshold = threshold;
        self
    }

    /// Selects element-wise Huber (the default).
    #[must_use]
    pub fn with_elementwise_huber(mut self) -> Self {
        self.vector_huber = false;
        self
    }

    /// Selects the paper's literal per-sample vector-norm Huber (eq. 4).
    ///
    /// δ is rescaled to the per-sample L1-norm scale (`0.05 · N`) so the
    /// quadratic regime is reachable.
    #[must_use]
    pub fn with_vector_huber(mut self) -> Self {
        self.vector_huber = true;
        self.huber_delta = 0.05 * self.input_dim as f32;
        self
    }

    /// The reconstruction loss this configuration trains with.
    #[must_use]
    pub fn loss(&self) -> Loss {
        if self.vector_huber {
            Loss::VectorHuber { delta: self.huber_delta }
        } else {
            Loss::Huber { delta: self.huber_delta }
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), OrcoError> {
        let check = |ok: bool, detail: &str| -> Result<(), OrcoError> {
            if ok {
                Ok(())
            } else {
                Err(OrcoError::Config { detail: detail.to_string() })
            }
        };
        check(self.input_dim > 0, "input_dim must be non-zero")?;
        check(self.latent_dim > 0, "latent_dim must be non-zero")?;
        check(self.decoder_layers > 0, "decoder_layers must be non-zero")?;
        check(
            self.noise_variance.is_finite() && self.noise_variance >= 0.0,
            "noise_variance must be ≥ 0",
        )?;
        check(self.huber_delta > 0.0, "huber_delta must be positive")?;
        check(
            self.learning_rate > 0.0 && self.learning_rate.is_finite(),
            "learning_rate must be positive",
        )?;
        check(self.batch_size > 0, "batch_size must be non-zero")?;
        check(self.epochs > 0, "epochs must be non-zero")?;
        check(self.finetune_threshold > 0.0, "finetune_threshold must be positive")?;
        Ok(())
    }

    /// Bytes of one latent vector on the wire (f32 elements).
    #[must_use]
    pub fn latent_bytes(&self) -> u64 {
        (self.latent_dim * 4) as u64
    }

    /// Bytes of one raw sample on the wire (f32 elements).
    #[must_use]
    pub fn sample_bytes(&self) -> u64 {
        (self.input_dim * 4) as u64
    }

    /// Compression ratio `N / M`.
    #[must_use]
    pub fn compression_ratio(&self) -> f32 {
        self.input_dim as f32 / self.latent_dim as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let m = OrcoConfig::for_dataset(DatasetKind::MnistLike);
        assert_eq!((m.input_dim, m.latent_dim), (784, 128));
        let g = OrcoConfig::for_dataset(DatasetKind::GtsrbLike);
        assert_eq!((g.input_dim, g.latent_dim), (3072, 512));
        assert!(m.validate().is_ok());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(256)
            .with_decoder_layers(5)
            .with_noise_variance(0.3)
            .with_epochs(3)
            .with_batch_size(16)
            .with_learning_rate(0.01)
            .with_seed(9);
        assert_eq!(cfg.latent_dim, 256);
        assert_eq!(cfg.decoder_layers, 5);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_violations() {
        let base = OrcoConfig::for_dataset(DatasetKind::MnistLike);
        assert!(base.clone().with_latent_dim(0).validate().is_err());
        // The paper's Fig. 6 sweeps M up to 1024 > N on MNIST: expansion is
        // allowed (it just compresses nothing).
        assert!(base.clone().with_latent_dim(1024).validate().is_ok());
        assert!(base.clone().with_decoder_layers(0).validate().is_err());
        assert!(base.clone().with_noise_variance(-0.1).validate().is_err());
        assert!(base.clone().with_epochs(0).validate().is_err());
    }

    #[test]
    fn loss_selection() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike);
        assert!(matches!(cfg.loss(), Loss::Huber { .. }));
        assert!(matches!(cfg.clone().with_vector_huber().loss(), Loss::VectorHuber { .. }));
        let vh = cfg.with_vector_huber();
        assert!((vh.huber_delta - 0.05 * 784.0).abs() < 1e-3);
    }

    #[test]
    fn byte_helpers() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike);
        assert_eq!(cfg.latent_bytes(), 512);
        assert_eq!(cfg.sample_bytes(), 3136);
        assert!((cfg.compression_ratio() - 6.125).abs() < 1e-6);
    }
}
