//! Training history bookkeeping and the continual online-operation loop
//! (§III-B training + §III-D monitoring glued together).

use orco_tensor::Matrix;
use orco_wsn::LinkStats;

use crate::error::OrcoError;
use crate::monitor::FineTuneMonitor;
use crate::orchestrator::Orchestrator;

/// Statistics for one orchestrated training round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round index within the run.
    pub round: usize,
    /// Epoch the round belongs to.
    pub epoch: usize,
    /// Batch loss before the update.
    pub loss: f32,
    /// Simulated time at round completion, seconds (cumulative).
    pub sim_time_s: f64,
    /// Cumulative latent-vector uplink bytes at round completion.
    pub uplink_bytes: u64,
    /// Cumulative radio energy (tx + rx) at round completion, joules.
    /// Zero for rounds trained without a simulated deployment.
    pub energy_j: f64,
    /// Cumulative delivery statistics at round completion: packet
    /// outcomes, retransmitted frames, airtime, and delivery-latency
    /// percentiles (p50/p99). All-zero for rounds trained without a
    /// simulated deployment.
    pub link: LinkStats,
}

/// The loss/time trajectory of a training run — the paper's Figures 4 and
/// 6–8 plot exactly this.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    /// One entry per round, in execution order.
    pub rounds: Vec<RoundStats>,
}

impl TrainingHistory {
    /// The final round's loss, if any rounds ran.
    #[must_use]
    pub fn final_loss(&self) -> Option<f32> {
        self.rounds.last().map(|r| r.loss)
    }

    /// Mean loss per epoch: `(epoch, mean_loss)` in epoch order.
    #[must_use]
    pub fn epoch_losses(&self) -> Vec<(usize, f32)> {
        let mut out: Vec<(usize, f32)> = Vec::new();
        let mut current_epoch = None;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for r in &self.rounds {
            if current_epoch != Some(r.epoch) {
                if let Some(e) = current_epoch {
                    out.push((e, (sum / count as f64) as f32));
                }
                current_epoch = Some(r.epoch);
                sum = 0.0;
                count = 0;
            }
            sum += f64::from(r.loss);
            count += 1;
        }
        if let Some(e) = current_epoch {
            out.push((e, (sum / count as f64) as f32));
        }
        out
    }

    /// First simulated time at which the loss dropped to `target` or below
    /// (the paper's time-to-loss metric). `None` if never reached.
    #[must_use]
    pub fn time_to_loss(&self, target: f32) -> Option<f64> {
        self.rounds.iter().find(|r| r.loss <= target).map(|r| r.sim_time_s)
    }

    /// Appends another history (used when the monitor relaunches training).
    pub fn extend(&mut self, other: TrainingHistory) {
        self.rounds.extend(other.rounds);
    }
}

/// Outcome of feeding one batch of fresh sensing data to the online loop.
#[derive(Debug)]
pub struct OnlineStepOutcome {
    /// Reconstruction loss measured on the fresh batch.
    pub reconstruction_loss: f32,
    /// Training history of the relaunched run, if the monitor triggered.
    pub retraining: Option<TrainingHistory>,
}

/// Continual operation: reconstruct fresh data, watch the error, relaunch
/// training when the environment drifts (paper §III-D).
///
/// # Examples
///
/// ```
/// use orcodcs::{OnlineTrainer, OrcoConfig, Orchestrator};
/// use orco_datasets::{mnist_like, DatasetKind};
/// use orco_wsn::NetworkConfig;
///
/// let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
///     .with_latent_dim(16).with_epochs(1).with_batch_size(8)
///     .with_finetune_threshold(0.02);
/// let orch = Orchestrator::new(cfg, NetworkConfig { num_devices: 8, ..Default::default() }).unwrap();
/// let mut online = OnlineTrainer::new(orch);
/// let data = mnist_like::generate(16, 0);
/// let _history = online.initial_training(data.x()).unwrap();
/// let outcome = online.process_batch(data.x()).unwrap();
/// assert!(outcome.reconstruction_loss.is_finite());
/// ```
#[derive(Debug)]
pub struct OnlineTrainer {
    orchestrator: Orchestrator,
    monitor: FineTuneMonitor,
    retrain_count: usize,
}

impl OnlineTrainer {
    /// Wraps an orchestrator; the monitor threshold comes from the
    /// orchestrator's [`crate::OrcoConfig::finetune_threshold`].
    #[must_use]
    pub fn new(orchestrator: Orchestrator) -> Self {
        let monitor = FineTuneMonitor::new(orchestrator.config().finetune_threshold, 4);
        Self { orchestrator, monitor, retrain_count: 0 }
    }

    /// The wrapped orchestrator.
    #[must_use]
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// Mutable access to the wrapped orchestrator.
    #[must_use]
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orchestrator
    }

    /// Number of times the monitor relaunched training.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Initial online training on aggregated data.
    ///
    /// # Errors
    ///
    /// Propagates orchestration errors.
    pub fn initial_training(&mut self, x: &Matrix) -> Result<TrainingHistory, OrcoError> {
        self.orchestrator.train(x)
    }

    /// Feeds one batch of fresh sensing data: measures reconstruction
    /// error on the edge, records it with the monitor, and — if the
    /// threshold is breached — relaunches the §III-B training procedure on
    /// that batch ("the training procedure is relaunched").
    ///
    /// # Errors
    ///
    /// Propagates orchestration errors from relaunched training.
    pub fn process_batch(&mut self, x: &Matrix) -> Result<OnlineStepOutcome, OrcoError> {
        let loss = self.orchestrator.config().loss();
        let err = self.orchestrator.model_mut().evaluate(x, &loss);
        self.monitor.record(err);
        let retraining = if self.monitor.should_retrain() {
            self.monitor.acknowledge();
            self.retrain_count += 1;
            Some(self.orchestrator.train(x)?)
        } else {
            None
        };
        Ok(OnlineStepOutcome { reconstruction_loss: err, retraining })
    }

    /// Like [`OnlineTrainer::process_batch`], but snapshots the model
    /// before any relaunched training and **rolls back** if the adaptation
    /// made the reconstruction error on `x` worse — a retrain on a
    /// pathological batch (e.g. a transient noise burst) must never leave
    /// the deployment worse off than doing nothing.
    ///
    /// Returns the outcome plus whether a rollback happened.
    ///
    /// # Errors
    ///
    /// Propagates orchestration errors from relaunched training.
    pub fn process_batch_with_rollback(
        &mut self,
        x: &Matrix,
    ) -> Result<(OnlineStepOutcome, bool), OrcoError> {
        let loss = self.orchestrator.config().loss();
        let err = self.orchestrator.model_mut().evaluate(x, &loss);
        self.monitor.record(err);
        if !self.monitor.should_retrain() {
            return Ok((OnlineStepOutcome { reconstruction_loss: err, retraining: None }, false));
        }
        self.monitor.acknowledge();
        self.retrain_count += 1;
        let snapshot = self.orchestrator.model_mut().snapshot();
        let history = self.orchestrator.train(x)?;
        let after = self.orchestrator.model_mut().evaluate(x, &loss);
        let rolled_back = if after > err {
            self.orchestrator.model_mut().restore_snapshot(&snapshot);
            true
        } else {
            false
        };
        Ok((OnlineStepOutcome { reconstruction_loss: err, retraining: Some(history) }, rolled_back))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrcoConfig;
    use orco_datasets::{drift, mnist_like, DatasetKind};
    use orco_tensor::OrcoRng;
    use orco_wsn::NetworkConfig;

    fn history_from(losses: &[f32]) -> TrainingHistory {
        TrainingHistory {
            rounds: losses
                .iter()
                .enumerate()
                .map(|(i, &loss)| RoundStats {
                    round: i,
                    epoch: i / 2,
                    loss,
                    sim_time_s: (i + 1) as f64,
                    uplink_bytes: (i as u64 + 1) * 100,
                    energy_j: 0.0,
                    link: LinkStats::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn epoch_losses_average_rounds() {
        let h = history_from(&[1.0, 0.8, 0.6, 0.4]);
        let e = h.epoch_losses();
        assert_eq!(e.len(), 2);
        assert!((e[0].1 - 0.9).abs() < 1e-6);
        assert!((e[1].1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let h = history_from(&[1.0, 0.5, 0.3, 0.35]);
        assert_eq!(h.time_to_loss(0.5), Some(2.0));
        assert_eq!(h.time_to_loss(0.1), None);
        assert_eq!(h.final_loss(), Some(0.35));
    }

    #[test]
    fn monitor_triggers_retraining_on_drift() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(2)
            .with_batch_size(16)
            .with_learning_rate(0.1)
            .with_finetune_threshold(0.012);
        let orch =
            Orchestrator::new(cfg, NetworkConfig { num_devices: 8, seed: 2, ..Default::default() })
                .unwrap();
        let mut online = OnlineTrainer::new(orch);
        let ds = mnist_like::generate(32, 5);
        let _ = online.initial_training(ds.x()).unwrap();

        // In-distribution batches: error should settle under control.
        for _ in 0..4 {
            let _ = online.process_batch(ds.x()).unwrap();
        }
        let before = online.retrain_count();

        // Severe drift: brightness inversion-like bias shift.
        let mut rng = OrcoRng::from_label("online-drift", 0);
        let drifted = drift::apply(&ds, drift::Drift::Bias, 0.9, &mut rng);
        let mut triggered = false;
        for _ in 0..6 {
            let outcome = online.process_batch(drifted.x()).unwrap();
            if outcome.retraining.is_some() {
                triggered = true;
                break;
            }
        }
        assert!(triggered, "drift must trigger the fine-tuning monitor");
        assert!(online.retrain_count() > before);
    }

    #[test]
    fn rollback_restores_model_when_retrain_hurts() {
        // Retraining genuinely helps on bias drift, so to exercise the
        // rollback branch we retrain with a destructively high learning
        // rate: the adaptation diverges and must be rolled back.
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(1)
            .with_batch_size(32)
            .with_learning_rate(0.9) // destructive
            .with_finetune_threshold(0.0001);
        let orch =
            Orchestrator::new(cfg, NetworkConfig { num_devices: 8, seed: 4, ..Default::default() })
                .unwrap();
        let mut online = OnlineTrainer::new(orch);
        let ds = mnist_like::generate(32, 9);
        // Fill the monitor window so the first processed batch triggers.
        for _ in 0..4 {
            let _ = online.process_batch(ds.x()).unwrap();
        }
        let mut saw_rollback = false;
        for _ in 0..4 {
            let (outcome, rolled_back) = online.process_batch_with_rollback(ds.x()).unwrap();
            if outcome.retraining.is_some() && rolled_back {
                saw_rollback = true;
                break;
            }
        }
        assert!(saw_rollback, "destructive retrain must be rolled back");
    }

    #[test]
    fn extend_appends() {
        let mut a = history_from(&[1.0]);
        a.extend(history_from(&[0.5, 0.25]));
        assert_eq!(a.rounds.len(), 3);
        assert_eq!(a.final_loss(), Some(0.25));
    }
}
