//! Gaussian latent-noise injection (paper eq. 2).
//!
//! `Ŷ = Y + N(0, σ²)` — zero-mean so the latent vectors stay unbiased. The
//! orchestrator applies this on the data aggregator before the latent batch
//! is uplinked, so the decoder never sees clean latents during training and
//! learns a wider, more robust mapping (the paper's Fig. 7 sensitivity).

use orco_tensor::{Matrix, OrcoRng};

/// Adds zero-mean Gaussian noise of the given **variance** to a latent
/// batch, returning a new matrix.
///
/// A variance of 0 returns the input unchanged.
///
/// # Panics
///
/// Panics if `variance` is negative or not finite.
#[must_use]
pub fn add_gaussian(latent: &Matrix, variance: f32, rng: &mut OrcoRng) -> Matrix {
    assert!(variance.is_finite() && variance >= 0.0, "noise variance must be ≥ 0");
    if variance == 0.0 {
        return latent.clone();
    }
    let std = variance.sqrt();
    let mut out = latent.clone();
    for v in out.as_mut_slice() {
        *v += rng.normal(0.0, std);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variance_is_identity() {
        let mut rng = OrcoRng::from_label("noise-core", 0);
        let y = Matrix::from_fn(4, 8, |r, c| (r + c) as f32);
        assert_eq!(add_gaussian(&y, 0.0, &mut rng), y);
    }

    #[test]
    fn noise_is_zero_mean_with_requested_variance() {
        let mut rng = OrcoRng::from_label("noise-core", 1);
        let y = Matrix::zeros(50, 200);
        let noisy = add_gaussian(&y, 0.36, &mut rng);
        let mean = noisy.mean();
        let var =
            noisy.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / noisy.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.36).abs() < 0.03, "var {var}");
    }

    #[test]
    fn input_is_not_mutated() {
        let mut rng = OrcoRng::from_label("noise-core", 2);
        let y = Matrix::ones(2, 4);
        let _ = add_gaussian(&y, 0.5, &mut rng);
        assert_eq!(y, Matrix::ones(2, 4));
    }

    #[test]
    #[should_panic(expected = "variance")]
    fn rejects_negative_variance() {
        let mut rng = OrcoRng::from_label("noise-core", 3);
        let _ = add_gaussian(&Matrix::zeros(1, 1), -1.0, &mut rng);
    }
}
