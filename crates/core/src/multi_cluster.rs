//! Multi-cluster (IoT-Edge-Cloud) orchestration — the paper's stated
//! future work.
//!
//! > "A potential avenue for future work is the optimization of training
//! > overhead on edge servers when a large number of data aggregators need
//! > to perform training procedures of OrcoDCS."
//!
//! This module scales OrcoDCS to many clusters sharing **one** edge server:
//! each cluster has its own aggregator, deployment and task-specific
//! autoencoder, but decoder training contends for the edge's serial compute
//! capacity. The coordinator interleaves cluster rounds under a pluggable
//! [`EdgeSchedule`]; clusters whose turn has not come *wait*, and the wait
//! shows up on their simulated clock — exactly the overhead the paper says
//! needs optimizing.
//!
//! Three schedules are provided: FIFO (clusters queue in id order each
//! sweep), round-robin (one round each, rotating the start), and
//! loss-priority (the cluster with the worst recent loss trains first —
//! a simple "help the laggard" policy that improves worst-cluster loss at
//! equal edge budget).

use orco_datasets::Dataset;
use orco_wsn::NetworkConfig;

use crate::config::OrcoConfig;
use crate::error::OrcoError;
use crate::orchestrator::Orchestrator;

/// How the shared edge serves competing clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSchedule {
    /// Clusters are served in id order within every sweep.
    Fifo,
    /// Rotating order: sweep `s` starts at cluster `s mod K`.
    RoundRobin,
    /// The cluster with the highest last-seen loss is served first.
    LossPriority,
}

/// Per-cluster summary after a coordinated run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Cluster index.
    pub cluster: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Final training loss.
    pub final_loss: f32,
    /// The cluster's simulated completion time, seconds.
    pub sim_time_s: f64,
    /// Of which: time spent waiting for the busy edge, seconds.
    pub edge_wait_s: f64,
}

/// Outcome of a coordinated multi-cluster run.
#[derive(Debug, Clone)]
pub struct MultiClusterOutcome {
    /// One report per cluster.
    pub reports: Vec<ClusterReport>,
    /// Time at which the last cluster finished (the makespan).
    pub makespan_s: f64,
    /// Total edge busy time, seconds.
    pub edge_busy_s: f64,
}

impl MultiClusterOutcome {
    /// Worst final loss across clusters (the fairness metric
    /// loss-priority scheduling optimizes).
    #[must_use]
    pub fn worst_loss(&self) -> f32 {
        self.reports.iter().map(|r| r.final_loss).fold(f32::NEG_INFINITY, f32::max)
    }

    /// Mean edge-wait across clusters, seconds.
    #[must_use]
    pub fn mean_wait_s(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.edge_wait_s).sum::<f64>() / self.reports.len() as f64
    }
}

/// Coordinates K independent OrcoDCS clusters sharing one edge server.
#[derive(Debug)]
pub struct MultiClusterCoordinator {
    clusters: Vec<Orchestrator>,
    schedule: EdgeSchedule,
    edge_free_at_s: f64,
    edge_busy_s: f64,
    waits_s: Vec<f64>,
    last_loss: Vec<f32>,
}

impl MultiClusterCoordinator {
    /// Builds K clusters from per-cluster configurations. Every cluster
    /// gets its own deployment (`net_config` re-seeded per cluster).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(
        configs: &[OrcoConfig],
        net_config: &NetworkConfig,
        schedule: EdgeSchedule,
    ) -> Result<Self, OrcoError> {
        assert!(!configs.is_empty(), "MultiClusterCoordinator: need at least one cluster");
        let mut clusters = Vec::with_capacity(configs.len());
        for (i, cfg) in configs.iter().enumerate() {
            let mut net = net_config.clone();
            net.seed = net_config.seed.wrapping_add(i as u64);
            clusters.push(Orchestrator::new(cfg.clone().with_seed(cfg.seed + i as u64), net)?);
        }
        let k = clusters.len();
        Ok(Self {
            clusters,
            schedule,
            edge_free_at_s: 0.0,
            edge_busy_s: 0.0,
            waits_s: vec![0.0; k],
            last_loss: vec![f32::MAX; k],
        })
    }

    /// Number of clusters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the coordinator has no clusters (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Access a cluster's orchestrator.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cluster(&self, i: usize) -> &Orchestrator {
        &self.clusters[i]
    }

    /// The edge-side seconds one round of cluster `i` occupies (decoder
    /// forward + backward at the edge rate for one batch).
    fn edge_time_per_round(&self, i: usize, batch: usize) -> f64 {
        let model = self.clusters[i].model();
        let flops = (model.decoder_flops_forward() + model.decoder_flops_backward()) * batch as u64;
        self.clusters[i]
            .network()
            .config()
            .compute
            .time_for_flops(orco_wsn::DeviceClass::EdgeServer, flops)
    }

    fn sweep_order(&self, sweep: usize) -> Vec<usize> {
        let k = self.clusters.len();
        match self.schedule {
            EdgeSchedule::Fifo => (0..k).collect(),
            EdgeSchedule::RoundRobin => (0..k).map(|i| (i + sweep) % k).collect(),
            EdgeSchedule::LossPriority => {
                let mut order: Vec<usize> = (0..k).collect();
                order.sort_by(|&a, &b| {
                    self.last_loss[b]
                        .partial_cmp(&self.last_loss[a])
                        .expect("losses are ordered")
                        .then(a.cmp(&b))
                });
                order
            }
        }
    }

    /// Runs `sweeps` scheduling sweeps; in each sweep every cluster gets one
    /// training round on its own batch (here: the full per-cluster dataset,
    /// which keeps the contention model in focus).
    ///
    /// Within a sweep the expensive per-cluster training rounds execute
    /// **concurrently** on scoped threads: the edge-contention bookkeeping
    /// (who waits how long for the busy edge) depends only on each
    /// cluster's pre-round clock and its decoder's FLOP count, both known
    /// before any training starts, so the waits are resolved serially in
    /// schedule order first and the rounds themselves — whose mathematics
    /// never reads the shared edge state — then run in parallel. Results
    /// are bit-identical to fully serial execution at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates per-round errors. Coordinator bookkeeping (edge
    /// accounting, per-cluster losses, waits, round counts) is committed in
    /// schedule order only up to the first failing cluster, exactly as
    /// serial execution would leave it. Because the sweep's rounds run
    /// concurrently, clusters scheduled *after* a failure may already have
    /// advanced their own clocks and models even though nothing about them
    /// is recorded — after an error the coordinator should be inspected or
    /// discarded, not trained further.
    ///
    /// # Panics
    ///
    /// Panics if `datasets.len()` differs from the cluster count.
    pub fn train(
        &mut self,
        datasets: &[Dataset],
        sweeps: usize,
    ) -> Result<MultiClusterOutcome, OrcoError> {
        assert_eq!(datasets.len(), self.clusters.len(), "one dataset per cluster");
        let mut rounds = vec![0usize; self.clusters.len()];

        for sweep in 0..sweeps {
            let order = self.sweep_order(sweep);

            // Phase 1 (serial, cheap): resolve edge contention in schedule
            // order. The edge serves one decoder round at a time; a round
            // occupies it from the moment its cluster reaches it. Nothing
            // is committed to coordinator state yet.
            let mut waits = vec![0.0f64; self.clusters.len()];
            let mut edge_times = vec![0.0f64; self.clusters.len()];
            let mut edge_free_after = vec![0.0f64; self.clusters.len()];
            let mut edge_free = self.edge_free_at_s;
            for &i in &order {
                edge_times[i] = self.edge_time_per_round(i, datasets[i].x().rows());
                let cluster_now = self.clusters[i].network().now_s();
                waits[i] = (edge_free - cluster_now).max(0.0);
                let start = (cluster_now + waits[i]).max(edge_free);
                edge_free = start + edge_times[i];
                edge_free_after[i] = edge_free;
            }

            // Phase 2 (parallel): every cluster waits out its contention
            // delay and trains independently on its own deployment.
            let mut results = run_cluster_rounds(&mut self.clusters, datasets, &waits);

            // Phase 3 (serial commit): record outcomes in schedule order,
            // stopping at the first failure so recorded state matches what
            // a serial run would have recorded when it hit that error.
            for &i in &order {
                let (loss, _dt) = results[i].take().expect("each cluster trains once per sweep")?;
                self.edge_free_at_s = edge_free_after[i];
                self.edge_busy_s += edge_times[i];
                self.waits_s[i] += waits[i];
                self.last_loss[i] = loss;
                rounds[i] += 1;
            }
        }

        let reports: Vec<ClusterReport> = (0..self.clusters.len())
            .map(|i| ClusterReport {
                cluster: i,
                rounds: rounds[i],
                final_loss: self.last_loss[i],
                sim_time_s: self.clusters[i].network().now_s(),
                edge_wait_s: self.waits_s[i],
            })
            .collect();
        let makespan_s = reports.iter().map(|r| r.sim_time_s).fold(0.0f64, f64::max);
        Ok(MultiClusterOutcome { reports, makespan_s, edge_busy_s: self.edge_busy_s })
    }
}

/// Runs one training round per cluster concurrently on scoped threads,
/// after advancing each cluster's clock by its edge-contention wait.
///
/// Each thread owns a disjoint `&mut Orchestrator`, and a cluster's round
/// reads nothing outside its own state, so execution order across threads
/// cannot influence any result; the returned vector is indexed by cluster.
/// The thread budget follows [`orco_tensor::parallel::threads`], and each
/// worker runs under [`orco_tensor::parallel::with_thread_budget`] with its
/// fair slice of that budget so the GEMMs inside `train_round` cannot
/// multiply worker counts into `budget × budget` threads.
#[allow(clippy::type_complexity)]
fn run_cluster_rounds(
    clusters: &mut [Orchestrator],
    datasets: &[Dataset],
    waits: &[f64],
) -> Vec<Option<Result<(f32, f64), OrcoError>>> {
    let total_budget = orco_tensor::parallel::threads();
    let budget = total_budget.min(clusters.len()).max(1);
    let run_one = |i: usize, cluster: &mut Orchestrator| {
        if waits[i] > 0.0 {
            cluster.network_mut().wait(waits[i]);
        }
        Some(cluster.train_round(datasets[i].x()))
    };
    if budget == 1 {
        return clusters.iter_mut().enumerate().map(|(i, c)| run_one(i, c)).collect();
    }
    let inner_budget = (total_budget / budget).max(1);
    let chunk = clusters.len().div_ceil(budget);
    let mut results: Vec<Option<Result<(f32, f64), OrcoError>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(budget);
        for (block_idx, block) in clusters.chunks_mut(chunk).enumerate() {
            let run_one = &run_one;
            handles.push(scope.spawn(move || {
                orco_tensor::parallel::with_thread_budget(inner_budget, || {
                    block
                        .iter_mut()
                        .enumerate()
                        .map(|(off, c)| run_one(block_idx * chunk + off, c))
                        .collect::<Vec<_>>()
                })
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("cluster round thread panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::{mnist_like, DatasetKind};

    fn configs(k: usize) -> Vec<OrcoConfig> {
        (0..k)
            .map(|_| {
                OrcoConfig::for_dataset(DatasetKind::MnistLike)
                    .with_latent_dim(16)
                    .with_epochs(1)
                    .with_batch_size(8)
            })
            .collect()
    }

    fn datasets(k: usize) -> Vec<Dataset> {
        (0..k).map(|i| mnist_like::generate(8, i as u64)).collect()
    }

    fn net() -> NetworkConfig {
        NetworkConfig { num_devices: 8, seed: 0, ..Default::default() }
    }

    #[test]
    fn all_clusters_train_and_losses_drop() {
        let mut coord =
            MultiClusterCoordinator::new(&configs(3), &net(), EdgeSchedule::Fifo).unwrap();
        let ds = datasets(3);
        let first = coord.train(&ds, 1).unwrap();
        let later = coord.train(&ds, 6).unwrap();
        assert_eq!(later.reports.len(), 3);
        for (a, b) in first.reports.iter().zip(&later.reports) {
            assert!(b.final_loss < a.final_loss, "cluster {} did not improve", a.cluster);
            assert_eq!(b.rounds, 6);
        }
        assert!(later.makespan_s > 0.0);
        assert!(later.edge_busy_s > 0.0);
    }

    #[test]
    fn contention_grows_with_cluster_count() {
        let ds2 = datasets(2);
        let ds8 = datasets(8);
        let mut small =
            MultiClusterCoordinator::new(&configs(2), &net(), EdgeSchedule::Fifo).unwrap();
        let mut large =
            MultiClusterCoordinator::new(&configs(8), &net(), EdgeSchedule::Fifo).unwrap();
        let o2 = small.train(&ds2, 4).unwrap();
        let o8 = large.train(&ds8, 4).unwrap();
        // More clusters → strictly more total edge busy time and more
        // waiting per cluster on average.
        assert!(o8.edge_busy_s > o2.edge_busy_s * 3.0);
        assert!(o8.mean_wait_s() >= o2.mean_wait_s());
    }

    #[test]
    fn round_robin_rotates_priority() {
        let coord =
            MultiClusterCoordinator::new(&configs(3), &net(), EdgeSchedule::RoundRobin).unwrap();
        assert_eq!(coord.sweep_order(0), vec![0, 1, 2]);
        assert_eq!(coord.sweep_order(1), vec![1, 2, 0]);
        assert_eq!(coord.sweep_order(2), vec![2, 0, 1]);
    }

    #[test]
    fn loss_priority_serves_worst_cluster_first() {
        let mut coord =
            MultiClusterCoordinator::new(&configs(2), &net(), EdgeSchedule::LossPriority).unwrap();
        coord.last_loss = vec![0.1, 0.9];
        assert_eq!(coord.sweep_order(0), vec![1, 0]);
        coord.last_loss = vec![0.9, 0.1];
        assert_eq!(coord.sweep_order(0), vec![0, 1]);
    }

    #[test]
    fn schedules_preserve_total_work() {
        // Different schedules reorder but never change rounds per cluster.
        for schedule in [EdgeSchedule::Fifo, EdgeSchedule::RoundRobin, EdgeSchedule::LossPriority] {
            let mut coord = MultiClusterCoordinator::new(&configs(3), &net(), schedule).unwrap();
            let out = coord.train(&datasets(3), 3).unwrap();
            for r in &out.reports {
                assert_eq!(r.rounds, 3, "{schedule:?}");
            }
        }
    }

    #[test]
    fn task_specific_latent_dims_coexist() {
        // The paper's flexibility claim at fleet scale: clusters with
        // different M train side by side against one edge.
        let mut cfgs = configs(2);
        cfgs[1] = cfgs[1].clone().with_latent_dim(64);
        let mut coord = MultiClusterCoordinator::new(&cfgs, &net(), EdgeSchedule::Fifo).unwrap();
        let out = coord.train(&datasets(2), 2).unwrap();
        assert_eq!(coord.cluster(0).model().latent_dim(), 16);
        assert_eq!(coord.cluster(1).model().latent_dim(), 64);
        assert!(out.reports.iter().all(|r| r.final_loss.is_finite()));
    }
}
