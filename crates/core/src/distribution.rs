//! Encoder distribution and in-network encoding (paper §III-C).
//!
//! After training, compressed aggregation needs the encoder *at the
//! devices*: device `i` holds raw reading `xᵢ` and must contribute to the
//! latent vector `y = σ(Wₑ·X + b)`. Since `(Wₑ·X)ⱼ = Σᵢ Wₑ[j,i]·xᵢ`, device
//! `i` only needs **column `i` of `Wₑ`** (`M` values). The aggregator keeps
//! the bias and applies the activation after the partial sums arrive.
//!
//! [`EncoderColumns`] slices a trained encoder into per-device shares,
//! computes per-device contributions, folds partial sums along the chain,
//! and can reassemble the full matrix (used to verify the broadcast).

use orco_tensor::Matrix;

use crate::error::OrcoError;

/// A trained encoder split into per-device column shares.
///
/// # Examples
///
/// ```
/// use orcodcs::EncoderColumns;
/// use orco_tensor::Matrix;
///
/// // M=2 latent, N=3 devices.
/// let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.5, 1.5, -1.0])?;
/// let b = Matrix::from_vec(1, 2, vec![0.1, -0.2])?;
/// let columns = EncoderColumns::split(&w, &b);
/// assert_eq!(columns.num_devices(), 3);
/// assert_eq!(columns.column(2), &[2.0, -1.0]);
/// # Ok::<(), orco_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderColumns {
    latent_dim: usize,
    columns: Vec<Vec<f32>>, // columns[i] = We[:, i], length M
    bias: Vec<f32>,         // length M, stays at the aggregator
}

impl EncoderColumns {
    /// Splits an `(M, N)` encoder weight and `(1, M)` bias into `N` device
    /// shares.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a row vector of length `weight.rows()`.
    #[must_use]
    pub fn split(weight: &Matrix, bias: &Matrix) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.rows(), "bias length must equal latent dim");
        let m = weight.rows();
        let n = weight.cols();
        let columns = (0..n).map(|i| weight.col(i)).collect();
        Self { latent_dim: m, columns, bias: bias.row(0).to_vec() }
    }

    /// Latent dimension `M`.
    #[must_use]
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Number of device shares `N`.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.columns.len()
    }

    /// Device `i`'s column share (`M` values).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn column(&self, i: usize) -> &[f32] {
        &self.columns[i]
    }

    /// Bytes one device share occupies on the wire (f32 elements).
    #[must_use]
    pub fn column_bytes(&self) -> u64 {
        (self.latent_dim * 4) as u64
    }

    /// Device `i`'s contribution `Wₑ[:,i]·xᵢ` to the pre-activation latent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn contribution(&self, i: usize, reading: f32) -> Vec<f32> {
        self.columns[i].iter().map(|w| w * reading).collect()
    }

    /// Folds device contributions for one frame of readings in the given
    /// chain order, returning the pre-activation partial-sum vector that
    /// arrives at the aggregator.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] if `readings.len()` differs from the
    /// number of devices or the order references an invalid device.
    pub fn chain_partial_sum(
        &self,
        readings: &[f32],
        order: &[usize],
    ) -> Result<Vec<f32>, OrcoError> {
        if readings.len() != self.num_devices() {
            return Err(OrcoError::Config {
                detail: format!("expected {} readings, got {}", self.num_devices(), readings.len()),
            });
        }
        let mut acc = vec![0.0f32; self.latent_dim];
        for &i in order {
            if i >= self.num_devices() {
                return Err(OrcoError::Config { detail: format!("device index {i} out of range") });
            }
            for (a, c) in acc.iter_mut().zip(self.contribution(i, readings[i])) {
                *a += c;
            }
        }
        Ok(acc)
    }

    /// Finishes encoding at the aggregator: adds the bias and applies the
    /// sigmoid (the σ of eq. 6).
    #[must_use]
    pub fn finish_at_aggregator(&self, partial_sum: &[f32]) -> Vec<f32> {
        assert_eq!(partial_sum.len(), self.latent_dim, "partial sum length mismatch");
        partial_sum.iter().zip(&self.bias).map(|(s, b)| 1.0 / (1.0 + (-(s + b)).exp())).collect()
    }

    /// Reassembles the full `(M, N)` weight matrix and `(1, M)` bias —
    /// verification that a broadcast distributed every coefficient.
    #[must_use]
    pub fn reassemble(&self) -> (Matrix, Matrix) {
        let m = self.latent_dim;
        let n = self.num_devices();
        let mut w = Matrix::zeros(m, n);
        for (i, col) in self.columns.iter().enumerate() {
            for (j, &v) in col.iter().enumerate() {
                w.set(j, i, v);
            }
        }
        (w, Matrix::row_vector(&self.bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_nn::Activation;

    fn sample_encoder() -> (Matrix, Matrix) {
        let w = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.1).sin());
        let b = Matrix::from_fn(1, 4, |_, c| c as f32 * 0.05);
        (w, b)
    }

    #[test]
    fn split_reassemble_roundtrip() {
        let (w, b) = sample_encoder();
        let cols = EncoderColumns::split(&w, &b);
        let (w2, b2) = cols.reassemble();
        assert_eq!(w, w2);
        assert_eq!(b, b2);
    }

    #[test]
    fn distributed_encoding_matches_centralized() {
        let (w, b) = sample_encoder();
        let cols = EncoderColumns::split(&w, &b);
        let readings: Vec<f32> = (0..6).map(|i| (i as f32 * 0.3).cos()).collect();
        // Any chain order must give the same result (up to f32 rounding).
        for order in [vec![0, 1, 2, 3, 4, 5], vec![5, 3, 1, 0, 2, 4]] {
            let partial = cols.chain_partial_sum(&readings, &order).unwrap();
            let latent = cols.finish_at_aggregator(&partial);
            // Centralized: σ(W·x + b).
            let central: Vec<f32> = w
                .matvec(&readings)
                .iter()
                .zip(b.row(0))
                .map(|(s, bb)| Activation::Sigmoid.apply(s + bb))
                .collect();
            for (d, c) in latent.iter().zip(&central) {
                assert!((d - c).abs() < 1e-5, "distributed {d} vs centralized {c}");
            }
        }
    }

    #[test]
    fn contribution_is_column_scaled() {
        let (w, b) = sample_encoder();
        let cols = EncoderColumns::split(&w, &b);
        let c = cols.contribution(2, 2.0);
        for (j, v) in c.iter().enumerate() {
            assert!((v - 2.0 * w[(j, 2)]).abs() < 1e-7);
        }
    }

    #[test]
    fn wrong_reading_count_is_error() {
        let (w, b) = sample_encoder();
        let cols = EncoderColumns::split(&w, &b);
        assert!(cols.chain_partial_sum(&[1.0, 2.0], &[0, 1]).is_err());
        assert!(cols.chain_partial_sum(&[0.0; 6], &[0, 1, 2, 3, 4, 99]).is_err());
    }

    #[test]
    fn column_bytes() {
        let (w, b) = sample_encoder();
        let cols = EncoderColumns::split(&w, &b);
        assert_eq!(cols.column_bytes(), 16);
    }
}
