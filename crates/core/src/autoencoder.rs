//! The asymmetric autoencoder (paper §III-B).
//!
//! *Asymmetric* is the load split, not just the shape: the encoder is a
//! single dense layer (eq. 1) sized for a gateway-class data aggregator,
//! while the decoder (eq. 3) can be arbitrarily deep because it runs on the
//! edge server. [`AsymmetricAutoencoder`] keeps the two halves as separate
//! models with separate optimizers, exposing exactly the split-training
//! primitives the [`crate::Orchestrator`] drives over the network — and a
//! local joint-training path built from the *same* primitives, so
//! distributed and centralized training are bit-identical given the same
//! random streams.

use orco_nn::{Activation, Dense, Layer, Loss, Optimizer, Sequential};

use orco_tensor::{MatView, Matrix, OrcoRng};

use crate::config::OrcoConfig;
use crate::decoder::build_decoder;
use crate::error::OrcoError;
use crate::noise;

/// The OrcoDCS asymmetric autoencoder: one-dense-layer encoder +
/// configurable-depth decoder, each with its own optimizer.
///
/// # Examples
///
/// ```
/// use orcodcs::{AsymmetricAutoencoder, OrcoConfig};
/// use orco_datasets::DatasetKind;
/// use orco_tensor::Matrix;
///
/// let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
/// let mut ae = AsymmetricAutoencoder::new(&cfg).unwrap();
/// let x = Matrix::zeros(4, 784);
/// let latent = ae.encode(&x);
/// assert_eq!(latent.shape(), (4, 16));
/// let xr = ae.decode(&latent);
/// assert_eq!(xr.shape(), (4, 784));
/// ```
#[derive(Debug, Clone)]
pub struct AsymmetricAutoencoder {
    encoder: Dense,
    decoder: Sequential,
    encoder_opt: Optimizer,
    decoder_opt: Optimizer,
    noise_variance: f32,
    noise_rng: OrcoRng,
    latent_dim: usize,
    input_dim: usize,
    loss: Loss,
    /// Reusable transposed-weight workspace for the batched encode path
    /// (not a parameter; excluded from snapshots and checkpoints).
    wt_scratch: Matrix,
}

impl AsymmetricAutoencoder {
    /// Builds the autoencoder described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] if the configuration is invalid.
    pub fn new(config: &OrcoConfig) -> Result<Self, OrcoError> {
        config.validate()?;
        let mut rng = OrcoRng::from_label("orcodcs-autoencoder", config.seed);
        let encoder =
            Dense::new(config.input_dim, config.latent_dim, Activation::Sigmoid, &mut rng);
        let decoder =
            build_decoder(config.latent_dim, config.input_dim, config.decoder_layers, &mut rng);
        let noise_rng = rng.derive("latent-noise");
        Ok(Self {
            encoder,
            decoder,
            encoder_opt: Optimizer::adam(config.learning_rate).with_grad_clip(10.0),
            decoder_opt: Optimizer::adam(config.learning_rate).with_grad_clip(10.0),
            noise_variance: config.noise_variance,
            noise_rng,
            latent_dim: config.latent_dim,
            input_dim: config.input_dim,
            loss: config.loss(),
            wt_scratch: Matrix::zeros(0, 0),
        })
    }

    /// Latent dimension `M`.
    #[must_use]
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Input dimension `N`.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The configured latent-noise variance σ².
    #[must_use]
    pub fn noise_variance(&self) -> f32 {
        self.noise_variance
    }

    /// The reconstruction loss this model was configured to train with
    /// ([`OrcoConfig::loss`] at construction time).
    #[must_use]
    pub fn training_loss(&self) -> Loss {
        self.loss
    }

    /// Changes the latent-noise variance (sensitivity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or not finite.
    pub fn set_noise_variance(&mut self, variance: f32) {
        assert!(variance.is_finite() && variance >= 0.0, "variance must be ≥ 0");
        self.noise_variance = variance;
    }

    /// The encoder's weight matrix, shaped `(M, N)` — the object distributed
    /// column-wise to IoT devices (§III-C).
    ///
    #[must_use]
    pub fn encoder_weight(&self) -> &Matrix {
        self.encoder.weight()
    }

    /// The encoder's bias row vector, shaped `(1, M)`.
    #[must_use]
    pub fn encoder_bias(&self) -> &Matrix {
        self.encoder.bias()
    }

    /// Overwrites the encoder's parameters (applying a reassembled or
    /// remotely updated encoder).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match `(M, N)` / `(1, M)`.
    pub fn set_encoder_parts(&mut self, weight: Matrix, bias: Matrix) {
        self.encoder.set_parts(weight, bias);
    }

    /// Number of decoder layers.
    #[must_use]
    pub fn decoder_depth(&self) -> usize {
        self.decoder.len()
    }

    /// Per-sample forward FLOPs of the encoder (aggregator-side cost).
    #[must_use]
    pub fn encoder_flops_forward(&self) -> u64 {
        Layer::flops_forward(&self.encoder)
    }

    /// Per-sample backward FLOPs of the encoder.
    #[must_use]
    pub fn encoder_flops_backward(&self) -> u64 {
        Layer::flops_backward(&self.encoder)
    }

    /// Per-sample forward FLOPs of the decoder (edge-side cost).
    #[must_use]
    pub fn decoder_flops_forward(&self) -> u64 {
        self.decoder.flops_forward()
    }

    /// Per-sample backward FLOPs of the decoder.
    #[must_use]
    pub fn decoder_flops_backward(&self) -> u64 {
        self.decoder.flops_backward()
    }

    /// Total parameter count (encoder + decoder).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.encoder.param_count() + self.decoder.param_count()
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// Encodes a batch (inference mode — eq. 1).
    pub fn encode(&mut self, x: &Matrix) -> Matrix {
        self.encoder.forward(x, false)
    }

    /// Decodes a latent batch (inference mode — eq. 3).
    pub fn decode(&mut self, latent: &Matrix) -> Matrix {
        self.decoder.forward(latent, false)
    }

    /// Full reconstruction without noise (inference).
    pub fn reconstruct(&mut self, x: &Matrix) -> Matrix {
        let latent = self.encode(x);
        self.decode(&latent)
    }

    /// Batched inference encode into a caller-owned buffer — the native
    /// `Codec::encode_batch` path: one blocked GEMM against the
    /// transposed encoder weight, a bias broadcast, and the sigmoid in
    /// place. Bit-identical to encoding each row through
    /// [`AsymmetricAutoencoder::encode`], without the per-frame
    /// allocations and activation caching.
    // orco-lint: region(no-alloc)
    pub fn encode_batch_into(&mut self, frames: MatView<'_>, out: &mut Matrix) {
        self.encoder.forward_into(frames, &mut self.wt_scratch, out);
    }
    // orco-lint: endregion

    /// Batched inference decode into a caller-owned slot: one forward
    /// pass of the decoder stack over the whole batch. The forward pass
    /// allocates its result regardless, so the buffer is **moved** into
    /// `out` (replacing its previous allocation) rather than copied.
    pub fn decode_batch_into(&mut self, codes: MatView<'_>, out: &mut Matrix) {
        let y = codes.to_matrix();
        *out = self.decoder.forward(&y, false);
    }

    /// Mean reconstruction loss on a batch (inference).
    pub fn evaluate(&mut self, x: &Matrix, loss: &Loss) -> f32 {
        let xr = self.reconstruct(x);
        loss.value(&xr, x)
    }

    // ------------------------------------------------------------------
    // Split-training primitives (driven by the orchestrator)
    // ------------------------------------------------------------------

    /// **Aggregator step 1**: encode a batch in training mode and add the
    /// Gaussian latent noise (eqs. 1–2). Returns the noisy latent `Ŷ`.
    pub fn aggregator_encode_train(&mut self, x: &Matrix) -> Matrix {
        let latent = self.encoder.forward(x, true);
        noise::add_gaussian(&latent, self.noise_variance, &mut self.noise_rng)
    }

    /// **Edge step**: decode the noisy latent in training mode (eq. 3).
    pub fn edge_decode_train(&mut self, noisy_latent: &Matrix) -> Matrix {
        self.decoder.forward(noisy_latent, true)
    }

    /// **Aggregator step 2**: compute the reconstruction loss and its
    /// gradient (eq. 4) against the original batch.
    #[must_use]
    pub fn reconstruction_grad(x: &Matrix, xr: &Matrix, loss: &Loss) -> (f32, Matrix) {
        (loss.value(xr, x), loss.grad(xr, x))
    }

    /// **Edge step**: backpropagate the reconstruction gradient through the
    /// decoder, apply the decoder optimizer, and return `∂L/∂Ŷ` (the latent
    /// gradient sent back down to the aggregator).
    pub fn edge_decoder_update(&mut self, grad_reconstruction: &Matrix) -> Matrix {
        self.decoder.zero_grad();
        let grad_latent = self.decoder.backward(grad_reconstruction);
        self.decoder_opt.step(self.decoder.params());
        grad_latent
    }

    /// **Aggregator step 3**: backpropagate the latent gradient through the
    /// encoder and apply the encoder optimizer. (Additive noise has unit
    /// Jacobian, so `∂L/∂Y = ∂L/∂Ŷ`.)
    pub fn aggregator_encoder_update(&mut self, grad_latent: &Matrix) {
        self.encoder.zero_grad();
        let _ = self.encoder.backward(grad_latent);
        self.encoder_opt.step(self.encoder.params());
    }

    // ------------------------------------------------------------------
    // Snapshots (rollback support for the fine-tuning monitor)
    // ------------------------------------------------------------------

    /// Captures every parameter tensor (encoder + decoder) by value.
    ///
    /// Pairs with [`AsymmetricAutoencoder::restore_snapshot`] to roll back
    /// an adaptation that made reconstructions worse.
    pub fn snapshot(&mut self) -> Vec<Matrix> {
        let mut tensors: Vec<Matrix> =
            self.encoder.params().iter().map(|p| p.value.clone()).collect();
        tensors.extend(self.decoder.params().iter().map(|p| p.value.clone()));
        tensors
    }

    /// Restores a snapshot taken from this (or an identically-shaped)
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's tensor count or shapes do not match.
    pub fn restore_snapshot(&mut self, snapshot: &[Matrix]) {
        let mut params = self.encoder.params();
        params.extend(self.decoder.params());
        assert_eq!(params.len(), snapshot.len(), "snapshot tensor count mismatch");
        for (param, saved) in params.iter_mut().zip(snapshot) {
            assert_eq!(param.value.shape(), saved.shape(), "snapshot shape mismatch");
            *param.value = saved.clone();
        }
    }

    /// One complete training round executed locally (no network): the same
    /// primitives the orchestrator calls, in the same order. Returns the
    /// batch loss before the update.
    pub fn train_batch_local(&mut self, x: &Matrix, loss: &Loss) -> f32 {
        let noisy_latent = self.aggregator_encode_train(x);
        let xr = self.edge_decode_train(&noisy_latent);
        let (value, grad) = Self::reconstruction_grad(x, &xr, loss);
        let grad_latent = self.edge_decoder_update(&grad);
        self.aggregator_encoder_update(&grad_latent);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::DatasetKind;

    fn tiny_config() -> OrcoConfig {
        OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16).with_learning_rate(0.1)
    }

    #[test]
    fn shapes_are_consistent() {
        let mut ae = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let x = Matrix::from_fn(3, 784, |r, c| ((r * 7 + c) as f32 * 0.01).sin().abs());
        let y = ae.encode(&x);
        assert_eq!(y.shape(), (3, 16));
        let xr = ae.decode(&y);
        assert_eq!(xr.shape(), (3, 784));
        assert_eq!(ae.reconstruct(&x).shape(), (3, 784));
    }

    #[test]
    fn training_reduces_loss() {
        let mut ae = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let ds = orco_datasets::mnist_like::generate(32, 0);
        let loss = Loss::VectorHuber { delta: 1.0 };
        let before = ae.evaluate(ds.x(), &loss);
        for _ in 0..30 {
            let _ = ae.train_batch_local(ds.x(), &loss);
        }
        let after = ae.evaluate(ds.x(), &loss);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn sigmoid_outputs_stay_in_unit_range() {
        let mut ae = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let x = Matrix::from_fn(2, 784, |_, c| (c % 7) as f32 / 7.0);
        let xr = ae.reconstruct(&x);
        assert!(xr.min() >= 0.0 && xr.max() <= 1.0);
    }

    #[test]
    fn noise_applied_only_in_training_path() {
        let cfg = tiny_config().with_noise_variance(0.5);
        let mut ae = AsymmetricAutoencoder::new(&cfg).unwrap();
        let x = Matrix::from_fn(2, 784, |_, c| (c % 5) as f32 / 5.0);
        let clean = ae.encode(&x);
        let noisy = ae.aggregator_encode_train(&x);
        assert!(clean.max_abs_diff(&noisy) > 0.01, "training path must add noise");
        // Inference path is deterministic.
        assert_eq!(ae.encode(&x), clean);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let mut b = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let ds = orco_datasets::mnist_like::generate(8, 1);
        let loss = Loss::L2;
        for _ in 0..3 {
            let la = a.train_batch_local(ds.x(), &loss);
            let lb = b.train_batch_local(ds.x(), &loss);
            assert_eq!(la, lb);
        }
        assert_eq!(a.encoder_weight(), b.encoder_weight());
    }

    #[test]
    fn flops_reflect_asymmetry() {
        let cfg = tiny_config().with_decoder_layers(3);
        let ae = AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(ae.decoder_flops_forward() > ae.encoder_flops_forward());
        assert_eq!(ae.decoder_depth(), 3);
        assert!(ae.param_count() > 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ae = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        let ds = orco_datasets::mnist_like::generate(8, 4);
        let loss = Loss::L2;
        let snap = ae.snapshot();
        let before = ae.reconstruct(ds.x());
        for _ in 0..5 {
            let _ = ae.train_batch_local(ds.x(), &loss);
        }
        assert_ne!(ae.reconstruct(ds.x()), before);
        ae.restore_snapshot(&snap);
        assert_eq!(ae.reconstruct(ds.x()), before);
    }

    #[test]
    fn encoder_weight_shape_matches_distribution_needs() {
        let ae = AsymmetricAutoencoder::new(&tiny_config()).unwrap();
        assert_eq!(ae.encoder_weight().shape(), (16, 784));
        assert_eq!(ae.encoder_bias().shape(), (1, 16));
    }
}
